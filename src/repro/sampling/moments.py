"""Exact moments of the sample frequency random variables.

The paper's generic analysis (Props 1–2 and 9–12) expresses every variance
in terms of moments ``E[f′ᵢ]``, ``E[f′ᵢ f′ⱼ]``, ``E[f′ᵢ² f′ⱼ²]``, … of the
sample frequencies, which "can be derived from the moment generating
function corresponding to the sampling process" (Section III-A).  This
module is that machinery, in a form that makes all three schemes uniform.

**The product-form factorial-moment identity.**  For all three sampling
schemes, the joint *falling-factorial* moments of the sample frequencies at
distinct domain points factorize::

    E[(f′ᵢ)₍ₐ₎ · (f′ⱼ)₍ᵦ₎]  =  κ_{a+b} · u_a(fᵢ) · u_b(fⱼ)       (i ≠ j)
    E[(f′ᵢ)₍ₐ₎]             =  κ_a · u_a(fᵢ)

where ``(x)₍ₖ₎ = x(x−1)…(x−k+1)`` is the falling factorial and the pair
``(κ, u)`` characterizes the scheme:

=====================  =======================  ======================
scheme                 κ_k                      u_a(f)
=====================  =======================  ======================
Bernoulli(p)           p^k                      (f)₍ₐ₎
with replacement       (m)₍ₖ₎ / N^k             f^a
without replacement    (m)₍ₖ₎ / (N)₍ₖ₎          (f)₍ₐ₎
=====================  =======================  ======================

(``m`` = sample size, ``N`` = population size.)  Raw moments follow by the
Stirling expansion ``x^r = Σ_k S(r,k) (x)₍ₖ₎``.  Every formula in
:mod:`repro.variance` is evaluated through this one identity, which is why
a single generic evaluator covers all three schemes — and why the closed
forms printed in the paper can be cross-checked *exactly* (the κ are
rational, the u integral, so every moment is a :class:`~fractions.Fraction`).

All array-returning methods support two numeric modes:

* ``exact=True`` — object arrays of Python ints / Fractions, zero rounding
  (used by tests and the analytic figures at exactness-critical points);
* ``exact=False`` — float64 arrays (fast path for large domains).
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Union

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "STIRLING_SECOND",
    "falling_factorial",
    "falling_factorial_array",
    "power_array",
    "SamplingMomentModel",
    "BernoulliMoments",
    "WithReplacementMoments",
    "WithoutReplacementMoments",
]

#: Stirling numbers of the second kind S(r, k) for r up to 4:
#: x^r = Σ_k S(r, k) · (x)₍ₖ₎.
STIRLING_SECOND: dict[int, dict[int, int]] = {
    0: {0: 1},
    1: {1: 1},
    2: {1: 1, 2: 1},
    3: {1: 1, 2: 3, 3: 1},
    4: {1: 1, 2: 7, 3: 6, 4: 1},
}

Number = Union[Fraction, float]


def falling_factorial(x: int, k: int) -> int:
    """``(x)₍ₖ₎ = x (x−1) … (x−k+1)`` for integer ``x`` (0 for k > x ≥ 0)."""
    if k < 0:
        raise ConfigurationError(f"falling-factorial order must be >= 0, got {k}")
    result = 1
    for j in range(k):
        result *= x - j
    return result


def falling_factorial_array(counts: np.ndarray, a: int, exact: bool) -> np.ndarray:
    """Vectorized ``(fᵢ)₍ₐ₎`` over an integer count array."""
    if a == 0:
        dtype = object if exact else np.float64
        return np.ones(counts.shape, dtype=dtype)
    base = counts.astype(object) if exact else counts.astype(np.float64)
    result = base.copy()
    for j in range(1, a):
        result = result * (base - j)
    return result


def power_array(counts: np.ndarray, a: int, exact: bool) -> np.ndarray:
    """Vectorized ``fᵢᵃ`` over an integer count array."""
    if a == 0:
        dtype = object if exact else np.float64
        return np.ones(counts.shape, dtype=dtype)
    base = counts.astype(object) if exact else counts.astype(np.float64)
    return base**a


class SamplingMomentModel(abc.ABC):
    """Product-form factorial moments of one sampling scheme.

    Instances are bound to the scheme *parameters* (``p`` or ``m, N``) but
    not to a particular frequency vector; all array methods take the base
    frequency counts as an argument.
    """

    #: Scheme name (matches :class:`repro.sampling.base.SampleInfo.scheme`).
    scheme: str

    #: Highest factorial-moment order any variance formula needs.
    MAX_ORDER = 4

    @abc.abstractmethod
    def kappa(self, k: int) -> Fraction:
        """The scheme coefficient ``κ_k`` (exact rational)."""

    @abc.abstractmethod
    def u_array(self, counts: np.ndarray, a: int, *, exact: bool = False) -> np.ndarray:
        """The scheme's ``u_a(fᵢ)`` array (falling factorial or power)."""

    # ------------------------------------------------------------------
    # Raw moments via the Stirling expansion
    # ------------------------------------------------------------------

    def kappa_number(self, k: int, *, exact: bool = False) -> Number:
        """``κ_k`` as Fraction (exact) or float."""
        value = self.kappa(k)
        return value if exact else float(value)

    def raw_moment_array(
        self, counts: np.ndarray, r: int, *, exact: bool = False
    ) -> np.ndarray:
        """Array of ``E[f′ᵢ^r]`` for ``r ∈ {1, …, 4}``.

        ``E[f′ᵢ^r] = Σ_k S(r, k) κ_k u_k(fᵢ)`` by the Stirling expansion.
        """
        if r not in STIRLING_SECOND or r == 0:
            raise ConfigurationError(f"raw moment order must be in 1..4, got {r}")
        total = None
        for k, stirling in STIRLING_SECOND[r].items():
            term = self.u_array(counts, k, exact=exact) * (
                stirling * self.kappa_number(k, exact=exact)
            )
            total = term if total is None else total + term
        return total

    def sum_raw_moment(self, counts: np.ndarray, r: int, *, exact: bool = False) -> Number:
        """``Σᵢ E[f′ᵢ^r]`` over the whole domain."""
        values = self.raw_moment_array(counts, r, exact=exact)
        total = values.sum()
        return total if exact else float(total)

    def expectation_scale(self, *, exact: bool = False) -> Number:
        """``κ₁`` — the factor with ``E[f′ᵢ] = κ₁ fᵢ`` (p, α, or α)."""
        return self.kappa_number(1, exact=exact)

    # ------------------------------------------------------------------
    # Joint raw moments at distinct indices
    # ------------------------------------------------------------------

    def joint_raw_moment_terms(
        self, a: int, b: int
    ) -> list[tuple[Fraction, int, int]]:
        """Decompose ``E[f′ᵢᵃ f′ⱼᵇ]`` (i ≠ j) into ``Σ coeff · u_k(fᵢ) u_l(fⱼ)``.

        Returns ``[(coeff, k, l), …]`` with
        ``coeff = S(a, k) · S(b, l) · κ_{k+l}``.  The off-diagonal double
        sums in the variance formulas reduce to power sums through this
        decomposition.
        """
        if a not in STIRLING_SECOND or b not in STIRLING_SECOND:
            raise ConfigurationError(f"joint moment orders must be in 0..4: ({a},{b})")
        terms: list[tuple[Fraction, int, int]] = []
        for k, sa in STIRLING_SECOND[a].items():
            for l, sb in STIRLING_SECOND[b].items():
                terms.append((Fraction(sa * sb) * self.kappa(k + l), k, l))
        return terms

    def offdiag_joint_sum(
        self, counts: np.ndarray, a: int, b: int, *, exact: bool = False
    ) -> Number:
        """``Σ_{i ≠ j} E[f′ᵢᵃ f′ⱼᵇ]`` over one relation's base counts.

        Uses ``Σ_{i≠j} u_k(fᵢ) u_l(fⱼ) = (Σ u_k)(Σ u_l) − Σ u_k u_l`` so
        the double sum costs ``O(domain)``.
        """
        total: Number = Fraction(0) if exact else 0.0
        cache: dict[int, np.ndarray] = {}

        def u(order: int) -> np.ndarray:
            if order not in cache:
                cache[order] = self.u_array(counts, order, exact=exact)
            return cache[order]

        for coeff, k, l in self.joint_raw_moment_terms(a, b):
            coeff_n: Number = coeff if exact else float(coeff)
            uk, ul = u(k), u(l)
            pair_sum = uk.sum() * ul.sum() - (uk * ul).sum()
            total = total + coeff_n * pair_sum
        return total if exact else float(total)


class BernoulliMoments(SamplingMomentModel):
    """Moments of ``f′ᵢ ~ Binomial(fᵢ, p)`` (independent across values)."""

    scheme = "bernoulli"

    __slots__ = ("p",)

    def __init__(self, p: Union[float, Fraction]) -> None:
        p = Fraction(p)
        if not 0 < p <= 1:
            raise ConfigurationError(f"Bernoulli p must be in (0, 1], got {p}")
        self.p = p

    def kappa(self, k: int) -> Fraction:
        return self.p**k

    def u_array(self, counts: np.ndarray, a: int, *, exact: bool = False) -> np.ndarray:
        return falling_factorial_array(counts, a, exact)

    def __repr__(self) -> str:
        return f"BernoulliMoments(p={self.p})"


class _FixedSizeMoments(SamplingMomentModel):
    """Shared parameter handling for the two fixed-size schemes."""

    __slots__ = ("sample_size", "population_size")

    def __init__(self, sample_size: int, population_size: int) -> None:
        if population_size < 1:
            raise ConfigurationError(
                f"population_size must be >= 1, got {population_size}"
            )
        if sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {sample_size}")
        self.sample_size = int(sample_size)
        self.population_size = int(population_size)


class WithReplacementMoments(_FixedSizeMoments):
    """Moments of the multinomial sample frequencies (WR sampling).

    ``κ_k = (m)₍ₖ₎ / N^k`` and ``u_a(f) = f^a``.
    """

    scheme = "with_replacement"

    def kappa(self, k: int) -> Fraction:
        return Fraction(
            falling_factorial(self.sample_size, k), self.population_size**k
        )

    def u_array(self, counts: np.ndarray, a: int, *, exact: bool = False) -> np.ndarray:
        return power_array(counts, a, exact)

    def __repr__(self) -> str:
        return (
            f"WithReplacementMoments(sample_size={self.sample_size}, "
            f"population_size={self.population_size})"
        )


class WithoutReplacementMoments(_FixedSizeMoments):
    """Moments of the multivariate-hypergeometric frequencies (WOR sampling).

    ``κ_k = (m)₍ₖ₎ / (N)₍ₖ₎`` and ``u_a(f) = (f)₍ₐ₎``.  Requires
    ``m ≤ N``; moments of order ``k > m`` or ``k > N`` vanish naturally via
    the falling factorials.
    """

    scheme = "without_replacement"

    def __init__(self, sample_size: int, population_size: int) -> None:
        super().__init__(sample_size, population_size)
        if sample_size > population_size:
            raise ConfigurationError(
                f"WOR sample size {sample_size} exceeds population "
                f"{population_size}"
            )

    def kappa(self, k: int) -> Fraction:
        denominator = falling_factorial(self.population_size, k)
        if denominator == 0:
            # Population smaller than the moment order: the factorial moment
            # E[(f'_i)_(k)] is 0 anyway because u_k vanishes; κ is arbitrary.
            return Fraction(0)
        return Fraction(falling_factorial(self.sample_size, k), denominator)

    def u_array(self, counts: np.ndarray, a: int, *, exact: bool = False) -> np.ndarray:
        return falling_factorial_array(counts, a, exact)

    def __repr__(self) -> str:
        return (
            f"WithoutReplacementMoments(sample_size={self.sample_size}, "
            f"population_size={self.population_size})"
        )
