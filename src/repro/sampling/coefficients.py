"""The sampling-fraction coefficients of Eq. 8.

The paper's variance formulas for fixed-size sampling are written in terms
of small variations of the sampling fraction::

    α  = |F′| / |F|          β  = |G′| / |G|
    α₁ = (|F′| − 1)/(|F| − 1)   β₁ = (|G′| − 1)/(|G| − 1)
    α₂ = (|F′| − 1)/|F|         β₂ = (|G′| − 1)/|G|

:class:`SamplingCoefficients` bundles them as exact
:class:`fractions.Fraction` values so closed-form variance formulas can be
evaluated with zero rounding error (and compared *exactly* against the
generic moment-based evaluator in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import ConfigurationError

__all__ = ["SamplingCoefficients"]


@dataclass(frozen=True)
class SamplingCoefficients:
    """Exact α-coefficients for a fixed-size sample of a population.

    Parameters
    ----------
    sample_size:
        ``|F′|`` — number of tuples drawn (with or without replacement).
    population_size:
        ``|F|`` — number of tuples in the base relation.
    """

    sample_size: int
    population_size: int

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ConfigurationError(
                f"population_size must be >= 1, got {self.population_size}"
            )
        if self.sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1, got {self.sample_size}"
            )

    @property
    def alpha(self) -> Fraction:
        """``α = |F′|/|F|`` — the sampling fraction."""
        return Fraction(self.sample_size, self.population_size)

    @property
    def alpha1(self) -> Fraction:
        """``α₁ = (|F′|−1)/(|F|−1)`` (WOR pair-inclusion ratio).

        Undefined for a population of a single tuple; that degenerate case
        is rejected with :class:`ConfigurationError`.
        """
        if self.population_size == 1:
            raise ConfigurationError(
                "alpha1 is undefined for a population of size 1"
            )
        return Fraction(self.sample_size - 1, self.population_size - 1)

    @property
    def alpha2(self) -> Fraction:
        """``α₂ = (|F′|−1)/|F|`` (WR pair-draw ratio)."""
        return Fraction(self.sample_size - 1, self.population_size)

    def as_floats(self) -> tuple[float, float, float]:
        """``(α, α₁, α₂)`` as floats, for numeric pipelines."""
        return float(self.alpha), float(self.alpha1), float(self.alpha2)

    def __repr__(self) -> str:
        return (
            f"SamplingCoefficients(sample_size={self.sample_size}, "
            f"population_size={self.population_size})"
        )
