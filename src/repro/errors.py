"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` from misuse of the
Python API, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DomainError",
    "EstimationError",
    "InsufficientDataError",
    "IncompatibleSketchError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid parameters.

    Examples: a Bernoulli sampler with ``p`` outside ``(0, 1]``, a sketch
    with a non-positive number of buckets, a Zipf generator with a negative
    skew coefficient.
    """


class DomainError(ReproError, ValueError):
    """A stream item or frequency vector lies outside the configured domain.

    Sketches and frequency vectors are defined over a finite integer domain
    ``[0, domain_size)``; feeding a key outside that range is a caller bug
    that would silently corrupt estimates if allowed through.
    """


class EstimationError(ReproError, RuntimeError):
    """An estimate could not be produced from the current state."""


class InsufficientDataError(EstimationError):
    """Not enough data has been observed to produce the requested estimate.

    Raised, for example, when asking a without-replacement estimator for an
    unbiased self-join size with a sample of fewer than two tuples (the
    unbiasing correction divides by ``|F'| - 1``).
    """


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be combined.

    Sketches may only be merged or multiplied (for size-of-join estimation)
    when they share the same shape *and* the same random seeds, i.e. the same
    underlying hash/ξ families.
    """
