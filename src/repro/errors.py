"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` from misuse of the
Python API, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DomainError",
    "EstimationError",
    "InsufficientDataError",
    "IncompatibleSketchError",
    "MergeError",
    "SerializationError",
    "CheckpointError",
    "StreamIntegrityError",
    "BadRecordError",
    "RetryExhaustedError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid parameters.

    Examples: a Bernoulli sampler with ``p`` outside ``(0, 1]``, a sketch
    with a non-positive number of buckets, a Zipf generator with a negative
    skew coefficient.
    """


class DomainError(ReproError, ValueError):
    """A stream item or frequency vector lies outside the configured domain.

    Sketches and frequency vectors are defined over a finite integer domain
    ``[0, domain_size)``; feeding a key outside that range is a caller bug
    that would silently corrupt estimates if allowed through.
    """


class EstimationError(ReproError, RuntimeError):
    """An estimate could not be produced from the current state."""


class InsufficientDataError(EstimationError):
    """Not enough data has been observed to produce the requested estimate.

    Raised, for example, when asking a without-replacement estimator for an
    unbiased self-join size with a sample of fewer than two tuples (the
    unbiasing correction divides by ``|F'| - 1``).
    """


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be combined.

    Sketches may only be merged or multiplied (for size-of-join estimation)
    when they share the same shape *and* the same random seeds, i.e. the same
    underlying hash/ξ families.
    """


class MergeError(IncompatibleSketchError):
    """Two sketches cannot be *merged* (added counter-wise).

    Merging requires strictly more than joint estimation does: beyond the
    type/shape/seed checks of :class:`IncompatibleSketchError`, the two
    sketches must have been built from the *same* hash-family construction
    (identical seed entropy, spawn key, and sign-family kind) — otherwise
    the counter addition silently produces garbage that no later check can
    detect.  Subclasses :class:`IncompatibleSketchError` so existing
    callers that guard merges with the broader class keep working.
    """


class SerializationError(ConfigurationError):
    """A persisted artifact (sketch file, checkpoint) is unreadable.

    Raised for truncated archives, undecodable or incomplete headers, and
    counter payloads whose shape/dtype disagree with the header — instead
    of letting an opaque ``KeyError``/``zipfile.BadZipFile``/numpy error
    escape.  Subclasses :class:`ConfigurationError` so existing callers
    that guard loads with ``except ConfigurationError`` keep working.
    """


class CheckpointError(SerializationError):
    """A checkpoint failed its integrity or schema validation.

    A corrupted checkpoint must *never* be silently loaded; every CRC or
    manifest mismatch surfaces as this error so recovery logic can fall
    back to an older snapshot or fail loudly.
    """


class StreamIntegrityError(ReproError, ValueError):
    """A delivered stream chunk violated its framing contract.

    Raised when a chunk arrives truncated (payload shorter than its
    declared count), fails its checksum, or skips ahead of the expected
    sequence number (a lost chunk).  Duplicated chunks are *not* an error —
    the runtime drops them idempotently.
    """


class BadRecordError(DomainError):
    """A stream record was rejected by the configured bad-record policy.

    Raised only under the ``"fail"`` policy; the ``"skip_and_count"`` and
    ``"quarantine"`` policies count/divert bad records instead of raising.
    """


class RetryExhaustedError(ReproError, RuntimeError):
    """A transient-failure retry loop ran out of attempts.

    Carries the final underlying exception as ``__cause__``.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A supervised shard made no progress within its deadline.

    Raised by the coordinator's :class:`~repro.resilience.distributed.
    ShardSupervisor` when a worker's heartbeat stalls (hang) or, absent a
    heartbeat channel, when the dispatch exceeds its wall-clock budget.
    A deadline failure consumes a retry attempt like any other shard
    failure; with retries exhausted it becomes the ``__cause__`` of the
    final :class:`RetryExhaustedError` (or of the shard's recorded
    :class:`~repro.resilience.distributed.ShardFailure` in degraded mode).
    """
