"""Runtime plug-in variance bounds for serving prefix estimates.

The exact variances of the sketch-over-samples estimators (Props 9–16)
are functions of frequency moments — ``F₁..F₄``, cross moments like
``Σ f g²`` — that a live service does not know.  These helpers bound the
variance of a *prefix* estimate (a WOR sample of ``scanned`` of ``total``
tuples) using only quantities the snapshot itself provides: the estimate,
the relation cardinalities, and the sketch shape.

The substitutions follow the precedent of
:func:`repro.resilience.distributed.widened_self_join_variance`:

* ``F₂`` — the (non-negative part of the) estimate itself;
* ``F₄ ≤ F₂²`` and ``F₃ ≤ F₂^1.5`` — power-mean/norm monotonicity for
  non-negative frequencies;
* ``F₁`` — the declared relation cardinality (exact, from the catalog);
* every negative-signed exact-variance term is dropped and every
  coefficient is absolute-valued.

Each substitution only enlarges the bound, so Chebyshev/CLT intervals
built from these values *over-cover* — the honest direction for a bound
served to a tenant who cannot see the data.  The conservativeness (and
the over-coverage) is checked against the empirical estimator variance
by ``tests/test_variance_runtime.py``.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = [
    "prefix_join_variance",
    "prefix_point_frequency_variance",
    "prefix_self_join_variance",
]


def _check_prefix(scanned: int, total: int, label: str = "") -> float:
    tag = f" ({label})" if label else ""
    if total < 1:
        raise ConfigurationError(f"total must be >= 1{tag}, got {total}")
    if not 1 <= scanned <= total:
        raise ConfigurationError(
            f"scanned must be in [1, total]{tag}, got {scanned}/{total}"
        )
    return scanned / total


def _sampling_surrogate(f2: float, f1: float, alpha: float) -> float:
    """Widened Eq. 7 sampling variance at inclusion probability ``alpha``.

    WOR inclusion of each tuple happens with marginal probability
    ``alpha``; the Bernoulli(``alpha``) form with dropped negative terms
    upper-bounds the WOR sampling variance (WOR's negative inclusion
    covariances only shrink it).  ``F₃`` is plugged in as ``F₂^1.5``.
    """
    if alpha >= 1.0:
        return 0.0
    f3 = f2**1.5
    return (1.0 - alpha) / alpha**3 * (
        4.0 * alpha * alpha * f3
        + 2.0 * alpha * abs(1.0 - 3.0 * alpha) * f2
        + alpha * abs(2.0 - 3.0 * alpha) * f1
    )


def prefix_self_join_variance(
    estimate: float,
    *,
    scanned: int,
    total: int,
    averaged: int = 1,
) -> float:
    """Conservative variance bound for a prefix self-join (``F₂``) estimate.

    Combines the widened sampling surrogate with the sketch term of the
    combined estimator — ``(2/n)·(F₂² + V_sampling)`` with ``n`` averaged
    basic estimators (buckets for F-AGMS), the same composition as
    :meth:`repro.resilience.schedule.RateSchedule.variance_bound` —
    evaluated with the estimate standing in for ``F₂``.
    """
    alpha = _check_prefix(scanned, total)
    if averaged < 1:
        raise ConfigurationError(f"averaged must be >= 1, got {averaged}")
    f2 = max(float(estimate), 0.0)
    sampling = _sampling_surrogate(f2, float(total), alpha)
    return sampling + (2.0 / averaged) * (f2 * f2 + sampling)


def prefix_join_variance(
    estimate: float,
    f2_f: float,
    f2_g: float,
    *,
    scanned_f: int,
    total_f: int,
    scanned_g: int,
    total_g: int,
    averaged: int = 1,
) -> float:
    """Conservative variance bound for a prefix join-size estimate.

    ``f2_f`` / ``f2_g`` are the relations' (estimated) second moments —
    the per-stream plug-ins the snapshot can compute.  Sampling terms use
    the widened Eq. 6 substitutions of
    :func:`repro.resilience.distributed.widened_join_variance`
    (``Σ f g² ≤ J·G₁``, ``Σ f² g ≤ J·F₁``); the sketch term is the Prop 7
    bound ``(F₂·G₂ + J²)/n``; the interaction term crosses the sampling
    inflations with the sketch moments.
    """
    alpha_f = _check_prefix(scanned_f, total_f, "f")
    alpha_g = _check_prefix(scanned_g, total_g, "g")
    if averaged < 1:
        raise ConfigurationError(f"averaged must be >= 1, got {averaged}")
    j = max(float(estimate), 0.0)
    f2_hat = max(float(f2_f), 0.0)
    g2_hat = max(float(f2_g), 0.0)
    f1 = float(total_f)
    g1 = float(total_g)
    a = (1.0 - alpha_f) / alpha_f
    b = (1.0 - alpha_g) / alpha_g
    sampling = a * j * g1 + b * j * f1 + a * b * j
    sketch = (f2_hat * g2_hat + j * j) / averaged
    interaction = (a * f1 * g2_hat + b * f2_hat * g1 + a * b * f1 * g1) / averaged
    return sampling + sketch + interaction


def prefix_point_frequency_variance(
    estimate: float,
    prefix_second_moment: float,
    *,
    scanned: int,
    total: int,
    buckets: int,
) -> float:
    """Conservative variance bound for a prefix point-frequency estimate.

    The ``1/α``-scaled Count-Sketch point estimate has two error sources:

    * collision noise — bounded by the prefix's second moment spread over
      ``buckets`` counters, inflated by the ``1/α²`` scaling;
    * sampling noise — the HT-scaled frequency of the key itself; with
      the unknown true frequency plugged in as the estimate, bounded by
      ``|f̂|·(1-α)/α``.
    """
    alpha = _check_prefix(scanned, total)
    if buckets < 1:
        raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
    collision = max(float(prefix_second_moment), 0.0) / buckets / (alpha * alpha)
    sampling = abs(float(estimate)) * (1.0 - alpha) / alpha
    return collision + sampling
