"""Covariance between basic estimators sharing one sample (Eq. 22).

Section V-A: when ``n`` basic sketch estimators are averaged over the
*same* sample, they are correlated — each pair shares the sampling noise —
so the averaging law is

    Var[(1/n) Σ Xₖ] = (1/n) [ Var[Xₖ] + (n−1)·Cov[Xₖ, Xₗ] ]      (Eq. 22)

Comparing with Props 11–12 identifies the pairwise covariance exactly: it
is the *sampling-only* variance of the scaled estimator (the part of the
noise all ξ families see identically)::

    Cov[Xₖ, Xₗ] = Var_sampling              (k ≠ l)

This module exposes that identity as first-class API — both directions of
Eq. 22 — so users can reason about how much averaging can possibly help:
the averaged variance converges to the covariance floor, never below it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Union

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..sampling.moments import SamplingMomentModel
from .generic import (
    combined_join_variance,
    combined_self_join_variance,
    sampling_join_variance,
    sampling_self_join_variance,
)

__all__ = [
    "averaged_variance",
    "basic_join_covariance",
    "basic_self_join_covariance",
    "averaging_floor_ratio",
]

Number = Union[Fraction, float]
NumberLike = Union[int, float, Fraction]


def averaged_variance(basic_variance: Number, covariance: Number, n: int) -> Number:
    """Eq. 22: variance of the average of ``n`` correlated basic estimators."""
    if n < 1:
        raise ConfigurationError(f"averaged estimator count must be >= 1, got {n}")
    return (basic_variance + (n - 1) * covariance) / n


def basic_join_covariance(
    model_f: SamplingMomentModel,
    f: FrequencyVector,
    model_g: SamplingMomentModel,
    g: FrequencyVector,
    scale: NumberLike,
    *,
    exact: bool = False,
) -> Number:
    """``Cov[Xₖ, Xₗ]`` for two basic join estimators over a shared sample.

    Equals the sampling-only variance (Prop 1): conditional on the sample,
    distinct ξ families are independent, so all shared noise is sampling
    noise.
    """
    return sampling_join_variance(model_f, f, model_g, g, scale, exact=exact)


def basic_self_join_covariance(
    model: SamplingMomentModel,
    f: FrequencyVector,
    scale: NumberLike,
    *,
    correction: NumberLike = 0,
    exact: bool = False,
) -> Number:
    """``Cov[Xₖ, Xₗ]`` for two basic self-join estimators over one sample.

    The (possibly random) additive correction is shared by all basic
    estimators, so it contributes to every pairwise covariance exactly as
    it does to the sampling-only variance.
    """
    return sampling_self_join_variance(
        model, f, scale, correction=correction, exact=exact
    )


def averaging_floor_ratio(
    model_f: SamplingMomentModel,
    f: FrequencyVector,
    scale: NumberLike,
    n: int,
    *,
    model_g: Optional[SamplingMomentModel] = None,
    g: Optional[FrequencyVector] = None,
    correction: NumberLike = 0,
) -> float:
    """How close ``n`` averages already are to the covariance floor.

    Returns ``Var_avg(n) / Cov`` — the factor by which the averaged
    variance still exceeds its ``n → ∞`` limit.  A value near 1 means
    more averaging (more buckets) is wasted: the sampling noise dominates
    and only a larger sample can help.  Returns ``inf`` when the floor is
    zero (e.g. a full WOR scan, where averaging keeps helping
    indefinitely).
    """
    if (model_g is None) != (g is None):
        raise ConfigurationError("provide both model_g and g, or neither")
    if g is not None:
        variance = combined_join_variance(model_f, f, model_g, g, scale, n)
        floor = basic_join_covariance(model_f, f, model_g, g, scale)
    else:
        variance = combined_self_join_variance(
            model_f, f, scale, n, correction=correction
        )
        floor = basic_self_join_covariance(
            model_f, f, scale, correction=correction
        )
    # Exact zero is meaningful here: floor is float(Fraction) and a zero
    # covariance floor must map to an infinite ratio, not a fuzzy band.
    if float(floor) == 0.0:  # repro: noqa(REP004)
        return float("inf")
    return float(variance) / float(floor)
