"""Generic moment-based evaluation of the paper's estimator moments.

This module implements the *generic* analysis of the paper — Props 1–2
(sampling only) and Props 9–12 (sketches over samples) — by plugging the
exact factorial moments of :mod:`repro.sampling.moments` into the generic
formulas.  It therefore works uniformly for all three sampling schemes and
produces, among others, the formulas the paper *omits* for space (the WR
and WOR self-join variances).

Notation used below (one relation; the join case doubles it):

* ``scale`` — the multiplicative unbiasing constant ``C``;
* ``n`` — number of averaged basic sketch estimators; ``n=None`` means *no
  sketch at all* (the exact sample aggregate), which coincides with the
  ``n → ∞`` limit of Props 11–12 — averaging infinitely many sketch
  estimators leaves exactly the sampling uncertainty;
* ``correction`` — the coefficient ``c`` of the additive unbiasing term for
  self-join estimators of the form ``Y = C·X − c·Σᵢ f′ᵢ``.  For Bernoulli
  sampling ``c = (1−p)/p²`` and ``Σᵢ f′ᵢ`` is *random*, so it contributes
  variance and covariance terms the printed Prop 14 includes; for WR/WOR
  the additive correction is a constant (the sample size is fixed) and
  ``c = 0`` should be passed.

With ``exact=True`` every input is converted to exact rational arithmetic
and the returned value is a :class:`fractions.Fraction` — this is how the
test-suite proves the printed closed forms (Props 13–16) and this generic
evaluator agree *exactly*.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Union

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..sampling.base import SampleInfo
from ..sampling.moments import (
    BernoulliMoments,
    SamplingMomentModel,
    WithReplacementMoments,
    WithoutReplacementMoments,
)

__all__ = [
    "moment_model_for",
    "sampling_join_variance",
    "sampling_self_join_variance",
    "combined_join_expectation",
    "combined_join_variance",
    "combined_self_join_expectation",
    "combined_self_join_variance",
]

Number = Union[Fraction, float]
NumberLike = Union[int, float, Fraction]


def moment_model_for(info: SampleInfo) -> SamplingMomentModel:
    """The factorial-moment model matching an executed sampling draw."""
    if info.scheme == "bernoulli":
        from ..sampling.unbiasing import _probability_fraction

        return BernoulliMoments(_probability_fraction(info.probability))
    if info.scheme == "with_replacement":
        return WithReplacementMoments(info.sample_size, info.population_size)
    if info.scheme == "without_replacement":
        return WithoutReplacementMoments(info.sample_size, info.population_size)
    raise ConfigurationError(f"unknown sampling scheme {info.scheme!r}")


def _as_number(value: NumberLike, exact: bool) -> Number:
    return Fraction(value) if exact else float(value)


def _check_n(n: Optional[int]) -> None:
    if n is not None and n < 1:
        raise ConfigurationError(f"averaged estimator count must be >= 1, got {n}")


# ----------------------------------------------------------------------
# Size of join
# ----------------------------------------------------------------------


def _join_building_blocks(
    model_f: SamplingMomentModel,
    f: FrequencyVector,
    model_g: SamplingMomentModel,
    g: FrequencyVector,
    exact: bool,
):
    """The four sums every join-variance formula is made of.

    Returns ``(a_tilde, big_b, prod_e2, diag_d)`` where::

        a_tilde = Σᵢ E[f′ᵢ] E[g′ᵢ]                      (the expectation core)
        big_b   = Σᵢ Σⱼ E[f′ᵢf′ⱼ] E[g′ᵢg′ⱼ]
        prod_e2 = (Σᵢ E[f′ᵢ²]) · (Σⱼ E[g′ⱼ²])
        diag_d  = Σᵢ E[f′ᵢ²] E[g′ᵢ²]
    """
    fg = f.join_size(g)
    f2g2 = f.cross_power_sum(g, 2, 2)
    kappa1 = model_f.kappa_number(1, exact=exact) * model_g.kappa_number(
        1, exact=exact
    )
    a_tilde = kappa1 * fg

    e2_f = model_f.raw_moment_array(f.counts, 2, exact=exact)
    e2_g = model_g.raw_moment_array(g.counts, 2, exact=exact)
    diag_d = (e2_f * e2_g).sum()
    sum_e2_f = e2_f.sum()
    sum_e2_g = e2_g.sum()
    if not exact:
        diag_d = float(diag_d)
        sum_e2_f = float(sum_e2_f)
        sum_e2_g = float(sum_e2_g)
    kappa2 = model_f.kappa_number(2, exact=exact) * model_g.kappa_number(
        2, exact=exact
    )
    big_b = diag_d + kappa2 * (fg * fg - f2g2)
    return a_tilde, big_b, sum_e2_f * sum_e2_g, diag_d


def combined_join_expectation(
    model_f: SamplingMomentModel,
    f: FrequencyVector,
    model_g: SamplingMomentModel,
    g: FrequencyVector,
    scale: NumberLike,
    *,
    exact: bool = False,
) -> Number:
    """``E[X]`` of the (sketched or not) scaled join estimator (Props 1, 9).

    ``E[X] = C Σᵢ E[f′ᵢ]E[g′ᵢ] = C κ₁(f) κ₁(g) Σᵢ fᵢgᵢ`` — unbiased exactly
    when ``C = 1/(κ₁(f)κ₁(g))``.
    """
    scale_n = _as_number(scale, exact)
    kappa1 = model_f.kappa_number(1, exact=exact) * model_g.kappa_number(
        1, exact=exact
    )
    return scale_n * kappa1 * f.join_size(g)


def combined_join_variance(
    model_f: SamplingMomentModel,
    f: FrequencyVector,
    model_g: SamplingMomentModel,
    g: FrequencyVector,
    scale: NumberLike,
    n: Optional[int],
    *,
    exact: bool = False,
) -> Number:
    """Variance of the sketch-over-samples join estimator (Props 9 & 11).

    ``n`` is the number of averaged basic sketch estimators (``n=1`` gives
    Prop 9 exactly); ``n=None`` drops the sketch entirely and returns the
    sampling-only variance of Prop 1.
    """
    _check_n(n)
    scale_n = _as_number(scale, exact)
    a_tilde, big_b, prod_e2, diag_d = _join_building_blocks(
        model_f, f, model_g, g, exact
    )
    sampling_part = big_b - a_tilde * a_tilde
    if n is None:
        return scale_n * scale_n * sampling_part
    inv_n = Fraction(1, n) if exact else 1.0 / n
    sketch_part = inv_n * (prod_e2 + big_b - 2 * diag_d)
    return scale_n * scale_n * (sampling_part + sketch_part)


def sampling_join_variance(
    model_f: SamplingMomentModel,
    f: FrequencyVector,
    model_g: SamplingMomentModel,
    g: FrequencyVector,
    scale: NumberLike,
    *,
    exact: bool = False,
) -> Number:
    """Variance of the sampling-only join estimator (Prop 1)."""
    return combined_join_variance(model_f, f, model_g, g, scale, None, exact=exact)


# ----------------------------------------------------------------------
# Self-join size
# ----------------------------------------------------------------------


def _self_join_building_blocks(
    model: SamplingMomentModel, f: FrequencyVector, exact: bool
):
    """Returns ``(a2, big_q, e4)``::

        a2    = Σᵢ E[f′ᵢ²]
        big_q = Σᵢ Σⱼ E[f′ᵢ² f′ⱼ²]
        e4    = Σᵢ E[f′ᵢ⁴]
    """
    a2 = model.sum_raw_moment(f.counts, 2, exact=exact)
    e4 = model.sum_raw_moment(f.counts, 4, exact=exact)
    big_q = e4 + model.offdiag_joint_sum(f.counts, 2, 2, exact=exact)
    return a2, big_q, e4


def _correction_terms(
    model: SamplingMomentModel, f: FrequencyVector, exact: bool
):
    """Moments of the random correction ``L = Σᵢ f′ᵢ`` (Bernoulli only).

    Returns ``(var_l, cross)`` where ``cross = E[(Σᵢ f′ᵢ²)·L]``.
    """
    kappa1 = model.kappa_number(1, exact=exact)
    e_l = kappa1 * f.total
    e_l2 = model.sum_raw_moment(f.counts, 2, exact=exact) + model.offdiag_joint_sum(
        f.counts, 1, 1, exact=exact
    )
    var_l = e_l2 - e_l * e_l
    cross = model.sum_raw_moment(f.counts, 3, exact=exact) + model.offdiag_joint_sum(
        f.counts, 2, 1, exact=exact
    )
    return var_l, cross


def combined_self_join_expectation(
    model: SamplingMomentModel,
    f: FrequencyVector,
    scale: NumberLike,
    *,
    correction: NumberLike = 0,
    constant: NumberLike = 0,
    exact: bool = False,
) -> Number:
    """``E[Y]`` of ``Y = C·X − c·Σᵢf′ᵢ − constant`` (Props 2, 10).

    ``X`` is the (sketched or exact) sample self-join aggregate with
    ``E[X] = Σᵢ E[f′ᵢ²]``; ``c`` (*correction*) multiplies the random term
    ``Σᵢ f′ᵢ``; *constant* is a deterministic subtraction (the WR/WOR
    corrections).
    """
    scale_n = _as_number(scale, exact)
    a2 = model.sum_raw_moment(f.counts, 2, exact=exact)
    value = scale_n * a2
    c = _as_number(correction, exact)
    if c:
        value = value - c * model.kappa_number(1, exact=exact) * f.total
    const = _as_number(constant, exact)
    return value - const


def combined_self_join_variance(
    model: SamplingMomentModel,
    f: FrequencyVector,
    scale: NumberLike,
    n: Optional[int],
    *,
    correction: NumberLike = 0,
    exact: bool = False,
) -> Number:
    """Variance of the self-join estimator ``Y = C·X̄ − c·Σᵢf′ᵢ`` (Props 10, 12).

    ``X̄`` is the average of ``n`` basic sketch estimators over one shared
    sample (``n=1`` gives Prop 10; ``n=None`` gives the sampling-only
    Prop 2).  The random-correction variance/covariance contributions are
    included whenever ``correction != 0``::

        Var[Y] = Var[C·X̄] + c²·Var[L] − 2·C·c·Cov[X̄/C·C, L]

    with ``Cov[X̄, L] = E[(Σf′ᵢ²)·L] − E[Σf′ᵢ²]·E[L]`` — identical for every
    averaged count ``n`` because each basic sketch estimator has
    ``E_ξ[Sₖ²] = Σᵢ f′ᵢ²`` conditionally on the sample.
    """
    _check_n(n)
    scale_n = _as_number(scale, exact)
    a2, big_q, e4 = _self_join_building_blocks(model, f, exact)
    sampling_part = big_q - a2 * a2
    if n is None:
        variance = scale_n * scale_n * sampling_part
    else:
        inv_n = Fraction(2, n) if exact else 2.0 / n
        variance = scale_n * scale_n * (sampling_part + inv_n * (big_q - e4))
    c = _as_number(correction, exact)
    if c:
        var_l, cross = _correction_terms(model, f, exact)
        e_l = model.kappa_number(1, exact=exact) * f.total
        covariance = scale_n * (cross - a2 * e_l)
        variance = variance + c * c * var_l - 2 * c * covariance
    return variance


def sampling_self_join_variance(
    model: SamplingMomentModel,
    f: FrequencyVector,
    scale: NumberLike,
    *,
    correction: NumberLike = 0,
    exact: bool = False,
) -> Number:
    """Variance of the sampling-only self-join estimator (Prop 2).

    Covers the WR and WOR self-join variances the paper omits: pass the
    scheme's moment model with ``scale = 1/(αα₂)`` or ``1/(αα₁)`` and
    ``correction = 0`` (their additive corrections are deterministic), or
    the Bernoulli model with ``scale = 1/p²``, ``correction = (1−p)/p²``
    to recover Prop 4 / Eq. 7 exactly.
    """
    return combined_self_join_variance(
        model, f, scale, None, correction=correction, exact=exact
    )
