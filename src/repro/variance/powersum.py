"""O(1) variance evaluation from frequency power sums.

The paper omits the self-join variance closed forms for WR and WOR
sampling "due to lack of space".  Deriving them through the product-form
factorial-moment identity (see :mod:`repro.sampling.moments`) shows that
— like every other formula in the paper — they are polynomials in the
*power sums* ``Pₖ = Σᵢ fᵢᵏ`` for ``k ≤ 4``.  For example, the sampling-only
WR self-join variance of ``X = (1/αα₂) Σf′ᵢ² − N/α₂`` works out to::

    Var[X]·(αα₂)² = α P₁ − α P₁²/N + 6 αα₂ P₂ − 4 αα₂ P₁P₂/N
                    + 4 αα₂α₃ P₃ − (αα₂)² (4m−6)/(m−1) P₂²/…      (etc.)

Rather than hard-coding each expanded polynomial, this module evaluates
the moment sums from a four-number :class:`FrequencyProfile` — so the cost
is O(1) given the profile instead of O(domain) for the array-based
evaluator in :mod:`repro.variance.generic`.  That matters operationally:
a stream processor can maintain (or a catalog can store) just ``P₁…P₄``
and still plan shedding rates or compute confidence intervals for any
scheme, without ever materializing a frequency vector.

Exactness contract: given an exact profile, results here are *identical
rationals* to the generic evaluator's (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..sampling.base import SampleInfo
from ..sampling.moments import (
    STIRLING_SECOND,
    SamplingMomentModel,
)
from ..sampling.unbiasing import self_join_correction
from ..variance.generic import moment_model_for

__all__ = [
    "FrequencyProfile",
    "JoinProfile",
    "self_join_variance_from_profile",
    "join_variance_from_profile",
]

NumberLike = Union[int, float, Fraction]

#: Signed expansion of falling factorials into powers:
#: (f)_a = Σ_j _FALLING_IN_POWERS[a][j] · f^j.
_FALLING_IN_POWERS = {
    0: {0: 1},
    1: {1: 1},
    2: {2: 1, 1: -1},
    3: {3: 1, 2: -3, 1: 2},
    4: {4: 1, 3: -6, 2: 11, 1: -6},
}


@dataclass(frozen=True)
class FrequencyProfile:
    """The first four power sums of a frequency vector.

    ``p1`` is the stream length ``|F|``; ``p2`` the self-join size; ``p3``
    and ``p4`` the higher moments the variance formulas need.
    """

    p1: int
    p2: int
    p3: int
    p4: int

    def __post_init__(self) -> None:
        if min(self.p1, self.p2, self.p3, self.p4) < 0:
            raise ConfigurationError("power sums must be non-negative")
        # Power sums of non-negative integers are non-decreasing in order
        # whenever all counts are 0/1+; p2 >= p1 requires counts >= 1 only
        # on support, which always holds.
        if self.p2 < 0 or (self.p1 and self.p2 < 1):
            raise ConfigurationError("inconsistent power sums")

    @classmethod
    def from_vector(cls, f: FrequencyVector) -> "FrequencyProfile":
        """Extract the profile from an exact frequency vector."""
        return cls(p1=f.f1, p2=f.f2, p3=f.f3, p4=f.f4)

    def power(self, k: int) -> int:
        """``Pₖ`` for ``k ∈ {1, …, 4}`` (all any formula here needs)."""
        try:
            return (self.p1, self.p2, self.p3, self.p4)[k - 1]
        except IndexError:
            raise ConfigurationError(
                f"power sum of order {k} not available in a FrequencyProfile"
            ) from None


class _ProfileSums:
    """U/V moment sums of one scheme evaluated from a profile."""

    def __init__(self, model: SamplingMomentModel, profile: FrequencyProfile):
        self.model = model
        self.profile = profile
        # Power-sums or falling-factorial sums depending on the scheme's u.
        self._falling = model.scheme != "with_replacement"

    def u_sum(self, a: int) -> int:
        """``Σᵢ u_a(fᵢ)``."""
        if not self._falling:
            return self.profile.power(a)
        return sum(
            coefficient * self.profile.power(j)
            for j, coefficient in _FALLING_IN_POWERS[a].items()
        )

    def uv_sum(self, a: int, b: int) -> int:
        """``Σᵢ u_a(fᵢ) u_b(fᵢ)`` for ``a + b ≤ 4``."""
        if a + b > 4:
            raise ConfigurationError(
                f"uv_sum needs order {a + b} > 4 power sums"
            )
        if not self._falling:
            return self.profile.power(a + b)
        total = 0
        for i, ci in _FALLING_IN_POWERS[a].items():
            for j, cj in _FALLING_IN_POWERS[b].items():
                total += ci * cj * self.profile.power(i + j)
        return total

    # Raw-moment sums via the Stirling expansion --------------------------

    def sum_raw(self, r: int) -> Fraction:
        """``Σᵢ E[f′ᵢ^r]``."""
        return sum(
            Fraction(stirling) * self.model.kappa(k) * self.u_sum(k)
            for k, stirling in STIRLING_SECOND[r].items()
        )

    def offdiag(self, a: int, b: int) -> Fraction:
        """``Σ_{i≠j} E[f′ᵢ^a f′ⱼ^b]``."""
        total = Fraction(0)
        for k, sa in STIRLING_SECOND[a].items():
            for l, sb in STIRLING_SECOND[b].items():
                pair = self.u_sum(k) * self.u_sum(l) - self.uv_sum(k, l)
                total += Fraction(sa * sb) * self.model.kappa(k + l) * pair
        return total


def self_join_variance_from_profile(
    profile: FrequencyProfile,
    info: SampleInfo,
    n: Optional[int] = None,
) -> Fraction:
    """Variance of the unbiased self-join estimator, from power sums only.

    *info* selects the sampling scheme/parameters (as for the estimators);
    ``n`` is the averaged-estimator count (``None`` = exact sample
    aggregate / sampling-only, i.e. Props 2/4 and the paper-omitted WR/WOR
    formulas).  Exactly equal to
    :func:`repro.variance.generic.combined_self_join_variance` called with
    the full frequency vector — but O(1) given the profile.
    """
    if n is not None and n < 1:
        raise ConfigurationError(f"averaged estimator count must be >= 1, got {n}")
    model = moment_model_for(info)
    correction = self_join_correction(info)
    sums = _ProfileSums(model, profile)

    a2 = sums.sum_raw(2)
    e4 = sums.sum_raw(4)
    big_q = e4 + sums.offdiag(2, 2)
    scale = correction.scale
    variance = scale * scale * (big_q - a2 * a2)
    if n is not None:
        variance += scale * scale * Fraction(2, n) * (big_q - e4)

    c = correction.random_coefficient
    if c:
        kappa1 = model.kappa(1)
        e_l = kappa1 * profile.p1
        e_l2 = sums.sum_raw(2) + sums.offdiag(1, 1)
        var_l = e_l2 - e_l * e_l
        cross = sums.sum_raw(3) + sums.offdiag(2, 1)
        covariance = scale * (cross - a2 * e_l)
        variance = variance + c * c * var_l - 2 * c * covariance
    return variance


# ----------------------------------------------------------------------
# Size of join from a cross-moment profile
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JoinProfile:
    """The eight numbers every join-variance formula is built from.

    Marginal power sums of each relation up to order 2 plus the four
    cross power sums ``Σ fᵢᵃgᵢᵇ`` with ``a, b ∈ {1, 2}``.
    """

    f_p1: int
    f_p2: int
    g_p1: int
    g_p2: int
    fg: int
    f2g: int
    fg2: int
    f2g2: int

    def __post_init__(self) -> None:
        values = (
            self.f_p1,
            self.f_p2,
            self.g_p1,
            self.g_p2,
            self.fg,
            self.f2g,
            self.fg2,
            self.f2g2,
        )
        if min(values) < 0:
            raise ConfigurationError("profile sums must be non-negative")

    @classmethod
    def from_vectors(
        cls, f: FrequencyVector, g: FrequencyVector
    ) -> "JoinProfile":
        """Extract the join profile from two exact frequency vectors."""
        return cls(
            f_p1=f.f1,
            f_p2=f.f2,
            g_p1=g.f1,
            g_p2=g.f2,
            fg=f.join_size(g),
            f2g=f.cross_power_sum(g, 2, 1),
            fg2=f.cross_power_sum(g, 1, 2),
            f2g2=f.cross_power_sum(g, 2, 2),
        )


def join_variance_from_profile(
    profile: JoinProfile,
    info_f: SampleInfo,
    info_g: SampleInfo,
    n: Optional[int] = None,
) -> Fraction:
    """Variance of the unbiased join estimator, from cross moments only.

    Implements Props 9/11 for any mix of the three schemes in O(1) given
    the :class:`JoinProfile`; ``n=None`` gives the sampling-only Prop 1
    variance.  Exactly equal to the generic array evaluator (tested).
    """
    if n is not None and n < 1:
        raise ConfigurationError(f"averaged estimator count must be >= 1, got {n}")
    model_f = moment_model_for(info_f)
    model_g = moment_model_for(info_g)

    def raw2_coefficients(model: SamplingMomentModel) -> tuple[Fraction, Fraction]:
        """E[f'²] = c₂·f² + c₁·f (all schemes; falling-factorial schemes
        fold their −κ₂f term into c₁)."""
        kappa1, kappa2 = model.kappa(1), model.kappa(2)
        if model.scheme == "with_replacement":
            return kappa2, kappa1
        return kappa2, kappa1 - kappa2

    cf2, cf1 = raw2_coefficients(model_f)
    cg2, cg1 = raw2_coefficients(model_g)

    # Building blocks (mirrors variance.generic._join_building_blocks).
    kappa1 = model_f.kappa(1) * model_g.kappa(1)
    a_tilde = kappa1 * profile.fg
    diag_d = (
        cf2 * cg2 * profile.f2g2
        + cf2 * cg1 * profile.f2g
        + cf1 * cg2 * profile.fg2
        + cf1 * cg1 * profile.fg
    )
    sum_e2_f = cf2 * profile.f_p2 + cf1 * profile.f_p1
    sum_e2_g = cg2 * profile.g_p2 + cg1 * profile.g_p1
    kappa2 = model_f.kappa(2) * model_g.kappa(2)
    big_b = diag_d + kappa2 * (profile.fg * profile.fg - profile.f2g2)

    from ..sampling.unbiasing import join_scale

    scale = join_scale(info_f, info_g)
    variance = scale * scale * (big_b - a_tilde * a_tilde)
    if n is not None:
        variance += (
            scale
            * scale
            * Fraction(1, n)
            * (sum_e2_f * sum_e2_g + big_b - 2 * diag_d)
        )
    return variance
