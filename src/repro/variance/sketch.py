"""Variance of the plain AGMS sketch estimators (Props 7–8).

For sketches computed over the *entire* stream:

* size of join (Eq. 14)::

      Var[S_F · S_G] = F₂(f) · F₂(g) + (Σᵢ fᵢgᵢ)² − 2 Σᵢ fᵢ²gᵢ²

* self-join size (Eq. 16)::

      Var[S²] = 2 [ F₂(f)² − F₄(f) ]

Averaging ``n`` independent basic estimators divides the variance by ``n``
(Section IV) — for full-stream sketches only; over samples the covariance
term of Props 11–12 applies instead.

All inputs are exact integer frequency vectors, so the results are exact
Python ints.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..frequency import FrequencyVector

__all__ = [
    "agms_join_variance",
    "agms_self_join_variance",
    "averaged_agms_join_variance",
    "averaged_agms_self_join_variance",
]


def agms_join_variance(f: FrequencyVector, g: FrequencyVector) -> int:
    """Variance of one basic AGMS size-of-join estimator (Eq. 14)."""
    join = f.join_size(g)
    return f.f2 * g.f2 + join * join - 2 * f.cross_power_sum(g, 2, 2)


def agms_self_join_variance(f: FrequencyVector) -> int:
    """Variance of one basic AGMS self-join estimator (Eq. 16)."""
    f2 = f.f2
    return 2 * (f2 * f2 - f.f4)


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"number of averaged estimators must be >= 1, got {n}")


def averaged_agms_join_variance(
    f: FrequencyVector, g: FrequencyVector, n: int
) -> float:
    """Variance of the average of *n* independent basic join estimators."""
    _check_n(n)
    return agms_join_variance(f, g) / n


def averaged_agms_self_join_variance(f: FrequencyVector, n: int) -> float:
    """Variance of the average of *n* independent basic self-join estimators."""
    _check_n(n)
    return agms_self_join_variance(f) / n
