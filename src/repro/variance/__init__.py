"""Variance theory: exact first and second moments of every estimator.

This package is the analytical core of the reproduction.  It evaluates —
exactly, as rationals when asked — the expectation and variance of

* the sampling-only estimators (Props 1–6; :mod:`~repro.variance.sampling`),
* the sketch-only estimators (Props 7–8; :mod:`~repro.variance.sketch`),
* the sketch-over-samples estimators, both via the *generic* moment-based
  formulas (Props 9–12; :mod:`~repro.variance.generic`) and via the
  *closed-form* per-scheme formulas printed in the paper (Props 13–16;
  :mod:`~repro.variance.closed_form`).

The generic and closed-form paths are independent implementations that must
agree exactly — that identity is tested and is the strongest correctness
check in the library.  :mod:`~repro.variance.decomposition` splits the
combined variance into the paper's three components (sampling + sketch +
interaction, Figs 1–2), and :mod:`~repro.variance.bounds` turns variances
into confidence intervals (Section II).
"""

from .bounds import ConfidenceInterval, chebyshev_interval, clt_interval, normal_quantile
from .covariance import (
    averaged_variance,
    averaging_floor_ratio,
    basic_join_covariance,
    basic_self_join_covariance,
)
from .closed_form import (
    bernoulli_combined_join_variance,
    bernoulli_combined_self_join_variance,
    wor_combined_join_variance,
    wr_combined_join_variance,
)
from .decomposition import VarianceDecomposition, decompose_combined_variance
from .generic import (
    combined_join_expectation,
    combined_join_variance,
    combined_self_join_expectation,
    combined_self_join_variance,
    moment_model_for,
    sampling_join_variance,
    sampling_self_join_variance,
)
from .sampling import (
    bernoulli_join_variance,
    bernoulli_self_join_variance,
    degraded_bernoulli_join_variance,
    degraded_bernoulli_self_join_variance,
    sharded_bernoulli_self_join_variance,
    wor_join_variance,
    wr_join_variance,
)
from .sketch import (
    agms_join_variance,
    agms_self_join_variance,
    averaged_agms_join_variance,
    averaged_agms_self_join_variance,
)
from .powersum import FrequencyProfile, self_join_variance_from_profile
from .tail import SketchSizing, mean_rows_needed, median_of_means_sizing

__all__ = [
    "ConfidenceInterval",
    "chebyshev_interval",
    "clt_interval",
    "normal_quantile",
    "agms_join_variance",
    "agms_self_join_variance",
    "averaged_agms_join_variance",
    "averaged_agms_self_join_variance",
    "bernoulli_join_variance",
    "bernoulli_self_join_variance",
    "degraded_bernoulli_join_variance",
    "degraded_bernoulli_self_join_variance",
    "sharded_bernoulli_self_join_variance",
    "wr_join_variance",
    "wor_join_variance",
    "sampling_join_variance",
    "sampling_self_join_variance",
    "combined_join_expectation",
    "combined_join_variance",
    "combined_self_join_expectation",
    "combined_self_join_variance",
    "moment_model_for",
    "bernoulli_combined_join_variance",
    "bernoulli_combined_self_join_variance",
    "wr_combined_join_variance",
    "wor_combined_join_variance",
    "VarianceDecomposition",
    "decompose_combined_variance",
    "averaged_variance",
    "basic_join_covariance",
    "basic_self_join_covariance",
    "averaging_floor_ratio",
    "SketchSizing",
    "mean_rows_needed",
    "median_of_means_sizing",
    "FrequencyProfile",
    "self_join_variance_from_profile",
]
