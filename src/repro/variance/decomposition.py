"""Decomposition of the combined variance into its three components.

The paper's key structural result (Section V-E): the variance of the
averaged sketch-over-samples estimator always splits as::

    Var = Var_sampling  +  (1/n)·Var_sketch  +  (1/n)·Var_interaction

where ``Var_sampling`` is the variance of the sampling-only estimator
(Props 3–6), ``Var_sketch`` the variance of one basic sketch estimator over
the *full* data (Props 7–8), and the interaction term is what makes the
combined analysis necessary — "the error of the sketch over samples
estimator is not simply the sum of the errors of the two individual
estimators".

Figures 1 and 2 plot the *relative contribution* of the three terms as a
function of data skew; :func:`decompose_combined_variance` computes exactly
that, for any scheme, by combining the generic evaluator (total and
sampling parts) with the closed-form sketch variance — so the interaction
term is obtained by exact subtraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import join_scale, self_join_correction
from .generic import (
    combined_join_variance,
    combined_self_join_variance,
    moment_model_for,
)
from .sketch import agms_join_variance, agms_self_join_variance

__all__ = ["VarianceDecomposition", "decompose_combined_variance"]


@dataclass(frozen=True)
class VarianceDecomposition:
    """The three additive components of a combined-estimator variance.

    ``sketch`` and ``interaction`` are stored *after* division by the
    averaged-estimator count ``n``, i.e. the three attributes sum to the
    total variance of the averaged estimator.
    """

    sampling: float
    sketch: float
    interaction: float

    @property
    def total(self) -> float:
        """Total variance of the averaged combined estimator."""
        return self.sampling + self.sketch + self.interaction

    def shares(self) -> tuple[float, float, float]:
        """Relative contributions ``(sampling, sketch, interaction)``.

        Figures 1–2 plot exactly these.  Returns zeros for a zero total
        (e.g. an empty relation).
        """
        total = self.total
        if total == 0:
            return (0.0, 0.0, 0.0)
        return (
            self.sampling / total,
            self.sketch / total,
            self.interaction / total,
        )

    @property
    def dominant(self) -> str:
        """Name of the largest component."""
        values = {
            "sampling": self.sampling,
            "sketch": self.sketch,
            "interaction": self.interaction,
        }
        return max(values, key=values.get)

    def __repr__(self) -> str:
        s1, s2, s3 = self.shares()
        return (
            f"VarianceDecomposition(sampling={self.sampling:.4g} [{s1:.1%}], "
            f"sketch={self.sketch:.4g} [{s2:.1%}], "
            f"interaction={self.interaction:.4g} [{s3:.1%}])"
        )


def decompose_combined_variance(
    f: FrequencyVector,
    info_f: SampleInfo,
    n: int,
    *,
    g: Optional[FrequencyVector] = None,
    info_g: Optional[SampleInfo] = None,
) -> VarianceDecomposition:
    """Split the averaged combined-estimator variance into its three terms.

    With only ``f``/``info_f`` given this is the self-join decomposition
    (Fig 2); providing ``g``/``info_g`` switches to size of join (Fig 1).
    ``n`` is the number of averaged basic sketch estimators.

    The sampling and total parts come from the exact generic evaluator; the
    sketch part is the closed-form full-data AGMS variance divided by
    ``n``; the interaction term is the exact remainder.
    """
    if n < 1:
        raise ConfigurationError(f"averaged estimator count must be >= 1, got {n}")
    if (g is None) != (info_g is None):
        raise ConfigurationError("provide both g and info_g, or neither")

    if g is not None:
        model_f = moment_model_for(info_f)
        model_g = moment_model_for(info_g)
        scale = join_scale(info_f, info_g)
        total = combined_join_variance(model_f, f, model_g, g, scale, n)
        sampling = combined_join_variance(model_f, f, model_g, g, scale, None)
        sketch = agms_join_variance(f, g) / n
    else:
        model_f = moment_model_for(info_f)
        correction = self_join_correction(info_f)
        total = combined_self_join_variance(
            model_f,
            f,
            correction.scale,
            n,
            correction=correction.random_coefficient,
        )
        sampling = combined_self_join_variance(
            model_f,
            f,
            correction.scale,
            None,
            correction=correction.random_coefficient,
        )
        sketch = agms_self_join_variance(f) / n
    interaction = float(total) - float(sampling) - float(sketch)
    return VarianceDecomposition(
        sampling=float(sampling), sketch=float(sketch), interaction=interaction
    )
