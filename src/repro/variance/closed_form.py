"""Literal transcriptions of the paper's combined-variance closed forms.

Props 13–16 (Eqs. 25–28) give, per sampling scheme, the variance of the
*average* of ``n`` sketch-over-samples basic estimators.  This module
transcribes them symbol for symbol, with the double sums
``Σᵢ Σ_{j≠i} fᵢᵃ gⱼᵇ`` reduced to power sums via
``Σ_{i≠j} fᵢᵃgⱼᵇ = (Σᵢfᵢᵃ)(Σⱼgⱼᵇ) − Σᵢfᵢᵃgᵢᵇ``.

The same quantities are computed by the independent generic evaluator in
:mod:`repro.variance.generic`; the test-suite asserts exact (rational)
agreement between the two, which validates both the transcription and the
generic machinery.  All functions return :class:`fractions.Fraction`.

**Errata.**  Two of the printed formulas contain typos, detected by exact
enumeration of the sampling distribution (see
``tests/test_variance_identities.py``) and confirmed by Monte Carlo:

* Eq. 26 (Prop 14): the interaction bracket is printed with a ``1/n``
  prefactor; the correct prefactor is ``2/n`` (matching the sketch term's
  ``2/n``).
* Eq. 10 (Prop 5) and Eq. 27 (Prop 15): the printed coefficients
  ``|F|αβ₂`` and ``|G|α₂β`` of the ``Σ fᵢgᵢ²`` / ``Σ fᵢ²gᵢ`` terms carry
  spurious size factors; dimensional analysis against the Bernoulli/WOR
  formulas and the exact checks give ``β₂`` and ``α₂``.

This module implements the *corrected* formulas (each function's docstring
restates its erratum); the experiments are unaffected because they use the
generic evaluator, but the corrected closed forms document the actual
structure of the result.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..sampling.coefficients import SamplingCoefficients

__all__ = [
    "bernoulli_combined_join_variance",
    "bernoulli_combined_self_join_variance",
    "wr_combined_join_variance",
    "wor_combined_join_variance",
]

NumberLike = Union[int, float, Fraction]


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"averaged estimator count must be >= 1, got {n}")


def bernoulli_combined_join_variance(
    f: FrequencyVector,
    g: FrequencyVector,
    p: NumberLike,
    q: NumberLike,
    n: int,
) -> Fraction:
    """Prop 13 / Eq. 25: size-of-join over Bernoulli samples, ``n`` averages.

    Estimator: ``X = (1/pq) Σᵢ f′ᵢξᵢ · Σⱼ g′ⱼξⱼ``, averaged over ``n``
    independent ξ families sharing one sample of each relation.
    """
    _check_n(n)
    p = Fraction(p)
    q = Fraction(q)
    fg = f.join_size(g)
    fg2 = f.cross_power_sum(g, 1, 2)
    f2g = f.cross_power_sum(g, 2, 1)
    f2g2 = f.cross_power_sum(g, 2, 2)
    f1, g1 = f.f1, g.f1
    f2, g2 = f.f2, g.f2

    cp = (1 - p) / p
    cq = (1 - q) / q
    cpq = (1 - p) * (1 - q) / (p * q)

    sampling = cp * fg2 + cq * f2g + cpq * fg
    sketch = Fraction(f2 * g2 + fg * fg - 2 * f2g2, n)
    interaction = (
        cp * (f1 * g2 - fg2)
        + cq * (f2 * g1 - f2g)
        + cpq * (f1 * g1 - fg)
    ) / n
    return sampling + sketch + interaction


def bernoulli_combined_self_join_variance(
    f: FrequencyVector, p: NumberLike, n: int
) -> Fraction:
    """Prop 14 / Eq. 26: self-join size over a Bernoulli sample, ``n`` averages.

    Estimator: ``X = (1/p²)(Σᵢ f′ᵢξᵢ)² − ((1−p)/p²) Σᵢ f′ᵢ`` (sketch part
    averaged over ``n`` ξ families; the additive correction is computed
    once from the shared sample).

    **Erratum:** the paper prints the interaction bracket with a ``1/n``
    prefactor; exact enumeration of the binomial sampling distribution
    shows it must be ``2/n`` (see the module docstring).  The corrected
    prefactor is used here.
    """
    _check_n(n)
    p = Fraction(p)
    f1, f2, f3, f4 = f.f1, f.f2, f.f3, f.f4

    sampling = (1 - p) / p**3 * (
        4 * p**2 * f3 + 2 * p * (1 - 3 * p) * f2 - p * (2 - 3 * p) * f1
    )
    sketch = Fraction(2 * (f2 * f2 - f4), n)
    off_ff = f1 * f1 - f2  # Σ_{i≠j} fᵢfⱼ
    off_f2f = f2 * f1 - f3  # Σ_{i≠j} fᵢ²fⱼ
    interaction = (
        Fraction(2, n)
        * ((1 - p) ** 2 / p**2 * off_ff + 2 * (1 - p) / p * off_f2f)
    )
    return sampling + sketch + interaction


def wr_combined_join_variance(
    f: FrequencyVector,
    g: FrequencyVector,
    coeff_f: SamplingCoefficients,
    coeff_g: SamplingCoefficients,
    n: int,
) -> Fraction:
    """Prop 15 / Eq. 27: size-of-join over WR samples, ``n`` averages.

    **Erratum:** the paper prints the ``Σfᵢgᵢ²`` and ``Σfᵢ²gᵢ``
    coefficients as ``|F|αβ₂`` and ``|G|α₂β`` (in both the sampling and
    interaction brackets); the exact checks give ``β₂`` and ``α₂`` — which
    also restores dimensional consistency with the Bernoulli (Eq. 25) and
    WOR (Eq. 28) formulas.  The corrected coefficients are used here (and
    in :func:`repro.variance.sampling.wr_join_variance` for Eq. 10, which
    shares the typo).
    """
    _check_n(n)
    alpha, beta = coeff_f.alpha, coeff_g.alpha
    alpha2, beta2 = coeff_f.alpha2, coeff_g.alpha2
    fg = f.join_size(g)
    fg2 = f.cross_power_sum(g, 1, 2)
    f2g = f.cross_power_sum(g, 2, 1)
    f2g2 = f.cross_power_sum(g, 2, 2)
    f1, g1 = f.f1, g.f1
    f2, g2 = f.f2, g.f2

    sampling = (
        1
        / (alpha * beta)
        * (
            fg
            + beta2 * fg2
            + alpha2 * f2g
            + (alpha2 * beta2 - alpha * beta) * fg * fg
        )
    )
    sketch = (
        Fraction(1, n)
        * (alpha2 / alpha)
        * (beta2 / beta)
        * (f2 * g2 + fg * fg - 2 * f2g2)
    )
    interaction = (
        Fraction(1, n)
        / (alpha * beta)
        * (
            (f1 * g1 - fg)
            + beta2 * (f1 * g2 - fg2)
            + alpha2 * (f2 * g1 - f2g)
        )
    )
    return sampling + sketch + interaction


def wor_combined_join_variance(
    f: FrequencyVector,
    g: FrequencyVector,
    coeff_f: SamplingCoefficients,
    coeff_g: SamplingCoefficients,
    n: int,
) -> Fraction:
    """Prop 16 / Eq. 28: size-of-join over WOR samples, ``n`` averages."""
    _check_n(n)
    alpha, beta = coeff_f.alpha, coeff_g.alpha
    alpha1, beta1 = coeff_f.alpha1, coeff_g.alpha1
    fg = f.join_size(g)
    fg2 = f.cross_power_sum(g, 1, 2)
    f2g = f.cross_power_sum(g, 2, 1)
    f2g2 = f.cross_power_sum(g, 2, 2)
    f1, g1 = f.f1, g.f1
    f2, g2 = f.f2, g.f2

    sampling = (
        1
        / (alpha * beta)
        * (
            (1 - alpha1) * (1 - beta1) * fg
            + (1 - alpha1) * beta1 * fg2
            + alpha1 * (1 - beta1) * f2g
            + (alpha1 * beta1 - alpha * beta) * fg * fg
        )
    )
    sketch = (
        Fraction(1, n)
        * (alpha1 / alpha)
        * (beta1 / beta)
        * (f2 * g2 + fg * fg - 2 * f2g2)
    )
    interaction = (
        Fraction(1, n)
        / (alpha * beta)
        * (
            (1 - alpha1) * (1 - beta1) * (f1 * g1 - fg)
            + (1 - alpha1) * beta1 * (f1 * g2 - fg2)
            + alpha1 * (1 - beta1) * (f2 * g1 - f2g)
        )
    )
    return sampling + sketch + interaction
