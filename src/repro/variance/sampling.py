"""Closed-form variances of the sampling-only estimators (Props 3–6).

These are the paper's Section III results: the variance of the *scaled
sample aggregate* (no sketch involved) for each sampling scheme.  They are
both baselines in their own right and the first component of the combined
variance decomposition (Figs 1–2).

All formulas are transcribed literally from the paper and evaluated with
exact rational arithmetic (:class:`fractions.Fraction`); pass the result
through ``float()`` for numeric pipelines.  The self-join variances for WR
and WOR sampling are not printed in the paper ("omitted due to lack of
space"); obtain them from :func:`repro.variance.generic.
sampling_self_join_variance`, which evaluates the generic Prop 2 with the
exact distribution moments.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence, Union

from ..frequency import FrequencyVector
from ..sampling.coefficients import SamplingCoefficients

__all__ = [
    "bernoulli_join_variance",
    "bernoulli_self_join_variance",
    "sharded_bernoulli_self_join_variance",
    "degraded_bernoulli_self_join_variance",
    "degraded_bernoulli_join_variance",
    "wr_join_variance",
    "wor_join_variance",
]

NumberLike = Union[int, float, Fraction]


def bernoulli_join_variance(
    f: FrequencyVector, g: FrequencyVector, p: NumberLike, q: NumberLike
) -> Fraction:
    """Variance of ``X = (1/pq) Σ f′ᵢg′ᵢ`` over Bernoulli samples (Eq. 6).

    ``p`` and ``q`` are the Bernoulli inclusion probabilities of the F- and
    G-samples.
    """
    p = Fraction(p)
    q = Fraction(q)
    fg2 = f.cross_power_sum(g, 1, 2)
    f2g = f.cross_power_sum(g, 2, 1)
    fg = f.join_size(g)
    return (
        (1 - p) / p * fg2
        + (1 - q) / q * f2g
        + (1 - p) * (1 - q) / (p * q) * fg
    )


def bernoulli_self_join_variance(f: FrequencyVector, p: NumberLike) -> Fraction:
    """Variance of the unbiased Bernoulli self-join estimator (Eq. 7).

    The estimator is ``X = (1/p²) Σ f′ᵢ² − ((1−p)/p²) Σ f′ᵢ``.
    """
    p = Fraction(p)
    return (1 - p) / p**3 * (
        4 * p**2 * f.f3
        + 2 * p * (1 - 3 * p) * f.f2
        - p * (2 - 3 * p) * f.f1
    )


def sharded_bernoulli_self_join_variance(
    shard_frequencies: Sequence[FrequencyVector], p: NumberLike
) -> Fraction:
    """Variance of the sharded Bernoulli self-join estimator (Eq. 7, summed).

    The parallel engine's hash mode partitions the key *domain*: shard
    frequency vectors have disjoint supports, and each shard sheds its
    tuples with an independent Bernoulli(p) substream.  The combined
    estimator is the sum of the per-shard unbiased estimators, so its
    variance is the sum of the per-shard Eq. 7 variances — and because
    Eq. 7 is *linear* in the power sums ``F₁``, ``F₂``, ``F₃``, which
    themselves add across disjoint supports, that sum telescopes to
    exactly :func:`bernoulli_self_join_variance` of the whole stream.
    This function computes the per-shard sum directly; the telescoping
    identity is enforced in ``tests/parallel/test_partition.py``.
    """
    if not shard_frequencies:
        raise ValueError("sharded variance needs at least one shard")
    return sum(
        (bernoulli_self_join_variance(f, p) for f in shard_frequencies),
        start=Fraction(0),
    )


def degraded_bernoulli_self_join_variance(
    f: FrequencyVector, q: NumberLike, p: NumberLike = 1
) -> Fraction:
    """Variance of the degraded (shard-loss) Bernoulli self-join estimator.

    Models the parallel engine's graceful degradation: hash partitioning
    assigns each key to one shard, so losing shards Bernoulli-samples the
    *key space* with survival probability ``q``; each surviving key's
    tuples are additionally Bernoulli(p)-thinned by load shedding.  The
    estimator is ``X = Y/q`` with ``Y`` the Eq. 7 unbiased estimator of
    the survivor sub-stream.  Conditioning on the key-survival indicators
    ``b`` (law of total variance, with Eq. 7 linear in the power sums):

    ``Var[X] = (1-q)/q · F₄ + V_p(f)/q``

    where ``V_p`` is :func:`bernoulli_self_join_variance`.  At ``q = 1``
    this reduces to Eq. 7 exactly; at ``p = 1`` only the key-loss term
    ``(1-q)/q·F₄`` remains.  Exact under independent per-key survival —
    the fixed-shard-count mechanism is validated against it by Monte
    Carlo in ``tests/test_variance_degraded.py``.
    """
    q = Fraction(q)
    if not 0 < q <= 1:
        raise ValueError(f"survival probability q must be in (0, 1], got {q}")
    return (1 - q) / q * f.f4 + bernoulli_self_join_variance(f, p) / q


def degraded_bernoulli_join_variance(
    f: FrequencyVector,
    g: FrequencyVector,
    q: NumberLike,
    p: NumberLike = 1,
    p2: NumberLike = 1,
) -> Fraction:
    """Variance of the degraded Bernoulli join-size estimator.

    Both relations were hash-partitioned by the *same* key mapping, so a
    lost shard removes the same key slice from both sides: one shared
    survival indicator per key, survival probability ``q`` = common
    surviving fraction.  With per-side shedding rates ``p``/``p2``:

    ``Var[X] = (1-q)/q · Σᵢ(fᵢgᵢ)² + V_{p,p2}(f,g)/q``

    where ``V`` is :func:`bernoulli_join_variance` (Eq. 6).  Reduces to
    Eq. 6 at ``q = 1``.
    """
    q = Fraction(q)
    if not 0 < q <= 1:
        raise ValueError(f"survival probability q must be in (0, 1], got {q}")
    key_loss = (1 - q) / q * f.cross_power_sum(g, 2, 2)
    return key_loss + bernoulli_join_variance(f, g, p, p2) / q


def wr_join_variance(
    f: FrequencyVector,
    g: FrequencyVector,
    coeff_f: SamplingCoefficients,
    coeff_g: SamplingCoefficients,
) -> Fraction:
    """Variance of ``X = (1/αβ) Σ f′ᵢg′ᵢ`` over WR samples (Eq. 10).

    **Erratum:** the paper prints the ``Σfᵢgᵢ²``/``Σfᵢ²gᵢ`` coefficients
    as ``|F|αβ₂``/``|G|α₂β``; exact enumeration and Monte Carlo give
    ``β₂``/``α₂`` (see :mod:`repro.variance.closed_form`).  The corrected
    coefficients are used here.
    """
    alpha, beta = coeff_f.alpha, coeff_g.alpha
    alpha2, beta2 = coeff_f.alpha2, coeff_g.alpha2
    fg = f.join_size(g)
    fg2 = f.cross_power_sum(g, 1, 2)
    f2g = f.cross_power_sum(g, 2, 1)
    return (
        1
        / (alpha * beta)
        * (
            fg
            + beta2 * fg2
            + alpha2 * f2g
            + (alpha2 * beta2 - alpha * beta) * fg * fg
        )
    )


def wor_join_variance(
    f: FrequencyVector,
    g: FrequencyVector,
    coeff_f: SamplingCoefficients,
    coeff_g: SamplingCoefficients,
) -> Fraction:
    """Variance of ``X = (1/αβ) Σ f′ᵢg′ᵢ`` over WOR samples (Eq. 11)."""
    alpha, beta = coeff_f.alpha, coeff_g.alpha
    alpha1, beta1 = coeff_f.alpha1, coeff_g.alpha1
    fg = f.join_size(g)
    fg2 = f.cross_power_sum(g, 1, 2)
    f2g = f.cross_power_sum(g, 2, 1)
    return (
        1
        / (alpha * beta)
        * (
            (1 - alpha1) * (1 - beta1) * fg
            + (1 - alpha1) * beta1 * fg2
            + alpha1 * (1 - beta1) * f2g
            + (alpha1 * beta1 - alpha * beta) * fg * fg
        )
    )
