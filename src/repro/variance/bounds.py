"""Confidence intervals from estimator variances (Section II).

The paper reports results as expected values and variances and notes that
"actual error guarantees can be obtained straightforwardly" via either

* **distribution-independent** bounds — Chebyshev's inequality:
  ``P(|X − E[X]| ≥ t) ≤ Var[X]/t²``, giving a half-width of
  ``sqrt(Var / (1 − confidence))``; or
* **distribution-dependent** bounds — a CLT/normal approximation, giving
  the familiar ``z · sqrt(Var)`` half-width.

:func:`normal_quantile` implements the standard-normal inverse CDF with
Acklam's rational approximation (relative error below 1.15·10⁻⁹) so the
library keeps numpy as its only dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "ConfidenceInterval",
    "chebyshev_interval",
    "clt_interval",
    "normal_quantile",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float
    method: str

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.high - self.low) / 2

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval (inclusive)."""
        return self.low <= value <= self.high

    def __repr__(self) -> str:
        return (
            f"ConfidenceInterval({self.estimate:.6g} ∈ [{self.low:.6g}, "
            f"{self.high:.6g}] @ {self.confidence:.0%} {self.method})"
        )


def _validate(variance: float, confidence: float) -> None:
    if variance < 0:
        raise ConfigurationError(f"variance must be >= 0, got {variance}")
    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def chebyshev_interval(
    estimate: float, variance: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """Distribution-independent interval via Chebyshev's inequality.

    Valid for *any* estimator distribution with the given variance; wider
    than the CLT interval (at 95%: ~4.47σ vs 1.96σ).
    """
    _validate(variance, confidence)
    half = math.sqrt(variance / (1 - confidence))
    return ConfidenceInterval(
        estimate=float(estimate),
        low=float(estimate) - half,
        high=float(estimate) + half,
        confidence=confidence,
        method="chebyshev",
    )


def clt_interval(
    estimate: float, variance: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation interval (Central Limit Theorem).

    Appropriate for averaged estimators (many rows / buckets); the paper's
    standard choice for reporting.
    """
    _validate(variance, confidence)
    z = normal_quantile(0.5 + confidence / 2)
    half = z * math.sqrt(variance)
    return ConfidenceInterval(
        estimate=float(estimate),
        low=float(estimate) - half,
        high=float(estimate) + half,
        confidence=confidence,
        method="clt",
    )


# Coefficients of Acklam's inverse-normal-CDF approximation.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1 - _P_LOW


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF ``Φ⁻¹(p)`` (Acklam's approximation)."""
    if not 0 < p < 1:
        raise ConfigurationError(f"quantile argument must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1)
    if p <= _P_HIGH:
        q = p - 0.5
        r = q * q
        return (
            (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
            * q
            / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1)
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(
        ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
    ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1)
