"""(ε, δ) sizing for sketch estimators — the classic AGMS guarantees.

The paper reports variances; turning a variance into a probabilistic
guarantee is standard (Section II).  This module packages the classic
sizing rules so users can dimension sketches from accuracy targets:

* **mean combining** (Chebyshev): averaging ``n`` basic estimators gives
  ``P(|X − µ| ≥ ε·µ) ≤ Var_basic / (n ε² µ²)`` — solve for ``n``;
* **median-of-means** (Chernoff): groups of size ``8·Var_basic/(ε²µ²)``
  and ``O(log 1/δ)`` groups give failure probability ``δ`` with
  exponentially better dependence on ``δ``.

These are *a-priori* sizing rules using the worst-case AGMS variance
bounds ``Var[S²] ≤ 2·F₂²`` and ``Var[S_F·S_G] ≤ 2·F₂(f)·F₂(g)``; real
(especially F-AGMS) behaviour is typically much better — the sizing is a
safe upper bound, not a prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["SketchSizing", "mean_rows_needed", "median_of_means_sizing"]


def _validate(epsilon: float, delta: float) -> None:
    if not 0 < epsilon:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")


def mean_rows_needed(epsilon: float, delta: float) -> int:
    """Rows for a mean-combined AGMS sketch meeting ``(ε, δ)`` on F₂.

    Uses ``Var[S²] ≤ 2·F₂²`` and Chebyshev:
    ``n ≥ 2 / (ε² δ)``.  The ``1/δ`` dependence is the price of plain
    averaging — compare :func:`median_of_means_sizing`.
    """
    _validate(epsilon, delta)
    return math.ceil(2.0 / (epsilon**2 * delta))


@dataclass(frozen=True)
class SketchSizing:
    """A concrete (rows, groups) configuration meeting an (ε, δ) target."""

    rows: int
    groups: int
    epsilon: float
    delta: float

    @property
    def rows_per_group(self) -> int:
        """Basic estimators averaged inside each group."""
        return self.rows // self.groups


def median_of_means_sizing(epsilon: float, delta: float) -> SketchSizing:
    """Median-of-means configuration meeting ``(ε, δ)`` on F₂.

    Standard analysis: group averages of ``s = ⌈16/ε²⌉`` basic estimators
    land within ``ε·µ`` of the mean with probability ≥ 3/4 (Chebyshev with
    ``Var ≤ 2F₂²``); the median of ``g = ⌈8·ln(1/δ)⌉`` groups then fails
    with probability at most ``δ`` (Chernoff).  Total rows: ``s·g``.
    """
    _validate(epsilon, delta)
    per_group = math.ceil(16.0 / epsilon**2)
    groups = max(1, math.ceil(8.0 * math.log(1.0 / delta)))
    if groups % 2 == 0:
        groups += 1  # an odd group count makes the median unambiguous
    return SketchSizing(
        rows=per_group * groups,
        groups=groups,
        epsilon=epsilon,
        delta=delta,
    )
