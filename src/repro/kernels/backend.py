"""The kernel-backend dispatch seam.

A :class:`KernelBackend` bundles the accumulation primitives every sketch
update path routes through.  Exactly one backend is *active* at a time;
sketches fetch it per call with :func:`get_backend` (cheap — a module
attribute read), so switching backends affects all sketches immediately
and needs no per-sketch plumbing.

Selection, in priority order:

1. an explicit :func:`set_backend` / :func:`use_backend` call;
2. the ``REPRO_KERNEL_BACKEND`` environment variable, read once on the
   first :func:`get_backend` call;
3. the ``"numpy"`` default.

New backends (e.g. a numba- or C-compiled one) call
:func:`register_backend` at import time and become selectable by name.
"""

from __future__ import annotations

import abc
import os
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "available_backends",
    "backend_name",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable naming the backend to activate on first use.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"


class KernelBackend(abc.ABC):
    """Accumulation primitives shared by every sketch update path.

    Shape conventions (one row per basic estimator):

    * ``counters`` — ``(rows, buckets)`` float64, mutated in place;
    * ``indices`` — ``(rows, n)`` int64 bucket index per row and tuple;
    * ``signs`` — ``(rows, n)`` int8 of ±1;
    * ``weights`` — ``(n,)`` float64 per-tuple weights, or ``None`` for
      the unweighted (+1 per tuple) fast path.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Add ``weights`` (or +1 per tuple) into ``counters[row, indices[row]]``."""

    @abc.abstractmethod
    def signed_scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Add ``signs * weights`` (or just ``signs``) into the indexed counters."""

    @abc.abstractmethod
    def gather(self, counters: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Read ``counters[row, indices[row]]``; returns ``(rows, n)`` float64."""

    @abc.abstractmethod
    def sign_sum(self, signs: np.ndarray) -> np.ndarray:
        """Per-row sum of a ±1 matrix as float64 — the unweighted AGMS delta."""

    @abc.abstractmethod
    def sign_dot(
        self,
        signs: np.ndarray,
        weights: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-row ``signs @ weights`` as float64 — the weighted AGMS delta.

        ``out``, when given, is a preallocated ``(rows,)`` float64 buffer
        the product is written into (and returned), so steady-state
        updates allocate nothing but the float view of ``signs``.
        """

    # ------------------------------------------------------------------
    # Hashing stage.  The polynomial families in :mod:`repro.hashing`
    # route their row-batched evaluation through these hooks, so a
    # compiled backend can fuse the whole Horner loop into one pass.
    # The base implementations delegate to the vectorized numpy helpers
    # (lazy imports: hashing imports this module at load time).
    # ------------------------------------------------------------------

    def polynomial_mod_p(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Evaluate each row's polynomial mod ``2³¹ − 1`` on *keys*.

        ``coefficients`` is the ``(rows, k)`` uint64 matrix of a
        :class:`~repro.hashing.families.PolynomialHashFamily`; ``keys``
        is a checked ``(n,)`` uint64 array.  Returns the canonical
        ``(rows, n)`` uint64 residues — every backend must produce
        bit-identical values here.
        """
        from ..hashing.families import _horner_all

        return _horner_all(coefficients, keys)

    def bucket_indices(
        self, coefficients: np.ndarray, keys: np.ndarray, buckets: int
    ) -> np.ndarray:
        """Bucket index per row and key: ``(rows, n)`` int64 in ``[0, buckets)``."""
        from ..hashing.families import _bucket_all

        return _bucket_all(coefficients, keys, buckets)

    def parity_signs(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """±1 parity of each row's polynomial hash: ``(rows, n)`` int8."""
        from ..hashing.families import _horner_all
        from ..hashing.signs import _parity_signs

        return _parity_signs(_horner_all(coefficients, keys))

    # ------------------------------------------------------------------
    # Fused multi-sketch stage (see :mod:`repro.kernels.fused`).
    # ------------------------------------------------------------------

    #: Backends that can stream ``int32``/``uint32`` keys without a
    #: Python-side widening copy set this to True (the native backend).
    fused_accepts_int32: bool = False

    def fused_update(self, plan, keys: np.ndarray, weights=None) -> None:
        """Update every sketch in *plan* with one prepared key batch.

        *keys* arrive validated (range-checked against the plan's key
        bound) and — unless :attr:`fused_accepts_int32` — widened to the
        canonical ``uint64`` the hash families use; *weights* is a
        ``(n,)`` float64 array or ``None``.  The base implementation
        replays each entry through the separate-path primitives
        (``bucket_indices`` / ``parity_signs`` / the scatter and sign
        reductions), so any backend is bit-identical to per-sketch
        ``update()`` calls by construction; subclasses override to share
        work across entries.
        """
        if keys.dtype != np.uint64:
            # Hash-key API dtype, not an accumulator.
            keys = keys.astype(np.uint64)  # repro: noqa(REP002)
        for entry in plan.entries:
            entry.replay(self, keys, weights)


_REGISTRY: dict = {}
_active: Optional[KernelBackend] = None


def register_backend(backend: KernelBackend) -> None:
    """Make *backend* selectable by its :attr:`~KernelBackend.name`."""
    _REGISTRY[backend.name] = backend


def available_backends() -> tuple:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def set_backend(name) -> KernelBackend:
    """Activate a backend and return it.

    *name* is either a registry key (the common case) or a
    :class:`KernelBackend` *instance* — the latter activates the instance
    directly without registering it, which is how transient wrappers like
    :class:`repro.observability.profiling.ProfilingKernelBackend` splice
    into the seam without polluting :func:`available_backends`.
    """
    global _active
    if isinstance(name, KernelBackend):
        _active = name
        return _active
    try:
        _active = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; "
            f"available: {available_backends()}"
        ) from None
    return _active


def get_backend() -> KernelBackend:
    """The active backend (resolving ``REPRO_KERNEL_BACKEND`` on first use)."""
    if _active is None:
        return set_backend(os.environ.get(BACKEND_ENV_VAR, "numpy"))
    return _active


def backend_name() -> str:
    """Name of the active backend."""
    return get_backend().name


@contextmanager
def use_backend(name) -> Iterator[KernelBackend]:
    """Context manager activating *name*, restoring the previous backend after.

    Like :func:`set_backend`, *name* may be a registry key or a
    :class:`KernelBackend` instance.  The previously active backend
    object is restored on exit even when it was never registered.
    """
    previous = get_backend()
    backend = set_backend(name)
    try:
        yield backend
    finally:
        set_backend(previous)
