"""The default numpy kernel backend: fused ``bincount`` scatter-adds.

``np.add.at`` applies its updates one element at a time through the ufunc
inner loop; ``np.bincount`` walks the index array once in C and needs no
per-element dispatch.  Both accumulate per-bucket partial sums in stream
order, so replacing the per-row ``add.at`` loop with a single bincount
over flattened ``row · buckets + bucket`` indices changes *only* where
the partial sum meets the counter (one add per bucket per call instead
of one per tuple) — exact for integer-valued deltas, which covers every
unweighted and frequency-vector workload.

Two scatter tricks on top of the flattening:

* unweighted ±1 updates append the sign bit to the flat index
  (``flat·2 + (sign > 0)``) and run one *integer* bincount over the
  doubled range; even slots count −1s, odd slots +1s, and the fold
  ``counts[1::2] − counts[0::2]`` is exact int64 arithmetic — no float
  weights and no int8→float64 conversion at all;
* weighted updates fold the signs into the deltas in a single
  ``signs * weights`` broadcast over the whole ``(rows, n)`` matrix
  instead of one ``astype(float64)`` + multiply per row.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backend import KernelBackend, register_backend

__all__ = ["NumpyKernelBackend"]


def _power_mod_p_k4(coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
    """All rows' degree-3 polynomials mod ``p = 2³¹ − 1`` via the power basis.

    The fused path evaluates many stacked fourwise rows over one key
    batch, so the powers ``x² mod p`` and ``x³ mod p`` are computed once
    on the ``(n,)`` vector and every row costs three broadcast
    multiplies plus one final reduction — fewer full ``(rows, n)``
    passes than the lazily-folded Horner schedule (no per-step folds).
    Exactness: with canonical residues ``< p`` every product is
    ``≤ (p−1)² < 2⁶²`` and the four-term sum is
    ``≤ 3(p−1)² + (p−1) < 2⁶⁴``, so nothing wraps before
    :func:`~repro.hashing.families._reduce31` restores the canonical
    residue — bit-identical to ``_horner_all`` (canonical residues are
    unique).
    """
    from ..hashing.families import MERSENNE_P31, _reduce31

    r = MERSENNE_P31 - 1
    x2 = x * x
    vec_scratch = np.empty_like(x2)
    _reduce31(x2, vec_scratch, r * r)
    x3 = x2 * x
    _reduce31(x3, vec_scratch, r * r)
    acc = coefficients[:, 0:1] * x3
    scratch = np.empty_like(acc)
    np.multiply(coefficients[:, 1:2], x2, out=scratch)
    acc += scratch
    np.multiply(coefficients[:, 2:3], x, out=scratch)
    acc += scratch
    acc += coefficients[:, 3:4]
    _reduce31(acc, scratch, 3 * r * r + r)
    return acc


class _FusedPlanCache:
    """Stacking layout for :meth:`NumpyKernelBackend.fused_update`.

    Built once per :class:`~repro.kernels.fused.FusedPlan` (and stored on
    it) from the immutable hash-family coefficients.  Rows are regrouped
    so each stage is one stacked numpy pass: all fourwise sign rows
    (AGMS first, then F-AGMS) concatenate into a single polynomial
    stack, all bucket rows (F-AGMS first, then Count-Min) into a single
    pairwise stack, and every bucketed counter array is assigned a
    disjoint slot range so one bincount scatters the whole plan.
    Entries whose families have no stacked fast path (EH3 signs) are
    replayed through the separate-path primitives instead.
    """

    __slots__ = (
        "fallback",
        "agms_entries",
        "agms_rows",
        "poly_coefficients",
        "bucket_coefficients",
        "bucket_segments",
        "fagms_rows",
        "slot_offsets",
        "total_slots",
        "scatter_entries",
        "block",
    )


def _build_fused_cache(plan) -> _FusedPlanCache:
    agms, fagms, cms, fallback = [], [], [], []
    for entry in plan.entries:
        poly = (
            entry.sign_kind == "poly"
            and entry.sign_coefficients is not None
            and entry.sign_coefficients.shape[1] == 4
        )
        if entry.kind == "agms" and poly:
            agms.append(entry)
        elif entry.kind == "fagms" and poly:
            fagms.append(entry)
        elif entry.kind == "countmin":
            cms.append(entry)
        else:
            fallback.append(entry)
    cache = _FusedPlanCache()
    cache.fallback = tuple(fallback)

    agms_entries = []
    row = 0
    for entry in agms:
        agms_entries.append((entry, row, row + entry.rows))
        row += entry.rows
    cache.agms_entries = tuple(agms_entries)
    cache.agms_rows = row
    sign_stack = [entry.sign_coefficients for entry in agms + fagms]
    cache.poly_coefficients = (
        np.concatenate(sign_stack, axis=0) if sign_stack else None
    )

    bucketed = fagms + cms
    bucket_stack = [entry.bucket_coefficients for entry in bucketed]
    cache.bucket_coefficients = (
        np.concatenate(bucket_stack, axis=0) if bucket_stack else None
    )
    cache.fagms_rows = sum(entry.rows for entry in fagms)
    segments, offsets, scatter_entries = [], [], []
    row = 0
    slot = 0
    for entry in bucketed:
        if segments and segments[-1][2] == entry.buckets:
            segments[-1] = (segments[-1][0], row + entry.rows, entry.buckets)
        else:
            segments.append((row, row + entry.rows, entry.buckets))
        offsets.extend(
            slot + r * entry.buckets for r in range(entry.rows)
        )
        scatter_entries.append((entry, slot, slot + entry.rows * entry.buckets))
        row += entry.rows
        slot += entry.rows * entry.buckets
    cache.bucket_segments = tuple(segments)
    cache.slot_offsets = np.asarray(offsets, dtype=np.int64)
    cache.total_slots = slot
    cache.scatter_entries = tuple(scatter_entries)
    # Key-block size for the unweighted path: cap the stacked working
    # set (a handful of ``(rows, block)`` uint64 temporaries) around the
    # L2 size so huge chunks do not spill cache right where the
    # per-sketch path, with its narrower ``(rows_i, n)`` temporaries,
    # would not.  Small blocks pay numpy dispatch per pass, so the floor
    # matters as much as the cap.
    rows_max = max(
        0 if cache.poly_coefficients is None else cache.poly_coefficients.shape[0],
        0 if cache.bucket_coefficients is None else cache.bucket_coefficients.shape[0],
        1,
    )
    cache.block = max(2048, 32768 // rows_max)
    return cache


def _flat_indices(indices: np.ndarray, buckets: int) -> np.ndarray:
    """Flatten per-row bucket indices into the ``rows·buckets`` range."""
    rows = indices.shape[0]
    if rows == 1:
        return indices.reshape(-1)
    offsets = np.arange(rows, dtype=np.int64) * np.int64(buckets)
    return (indices + offsets[:, None]).reshape(-1)


class NumpyKernelBackend(KernelBackend):
    """Fused-bincount accumulation (the default backend)."""

    name = "numpy"

    def scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """One bincount pass; unweighted updates use pure integer counts."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        flat = _flat_indices(indices, buckets)
        if weights is None:
            counts = np.bincount(flat, minlength=rows * buckets)
        else:
            tiled = (
                weights
                if rows == 1
                else np.broadcast_to(weights, (rows, n)).reshape(-1)
            )
            counts = np.bincount(flat, weights=tiled, minlength=rows * buckets)
        counters += counts.reshape(rows, buckets)

    def signed_scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Sign-split integer bincount (unweighted) or sign-folded weights."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        flat = _flat_indices(indices, buckets)
        if weights is None:
            # Even slot: this bucket's −1s; odd slot: its +1s.  The fold is
            # exact int64 arithmetic — float64 never enters the hot loop.
            slots = (flat << 1) + (signs.reshape(-1) > 0)
            counts = np.bincount(slots, minlength=2 * rows * buckets)
            deltas = counts[1::2] - counts[0::2]
        else:
            folded = (signs * weights).reshape(-1)
            deltas = np.bincount(flat, weights=folded, minlength=rows * buckets)
        counters += deltas.reshape(rows, buckets)

    def gather(self, counters: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Single ``take`` on the flattened counter matrix."""
        rows, buckets = counters.shape
        flat = _flat_indices(indices, buckets)
        return counters.reshape(-1).take(flat).reshape(rows, indices.shape[1])

    def sign_sum(self, signs: np.ndarray) -> np.ndarray:
        """Row sums of the ±1 matrix with an explicit float64 accumulator."""
        return signs.sum(axis=1, dtype=np.float64)

    def sign_dot(
        self,
        signs: np.ndarray,
        weights: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``signs @ weights`` via one matmul into the caller's buffer."""
        dense = signs.astype(np.float64)
        if out is None:
            return dense @ weights
        np.matmul(dense, weights, out=out)
        return out

    def fused_update(self, plan, keys: np.ndarray, weights=None) -> None:
        """Stacked one-pass updates for the whole plan.

        Three stacked stages replace the per-sketch pipelines (layout
        precomputed once per plan by :func:`_build_fused_cache`):

        1. every fourwise sign row in the plan is evaluated in a single
           power-basis pass (:func:`_power_mod_p_k4`);
        2. every bucket row in a single ``_horner_all`` pass;
        3. every bucketed counter array gets a disjoint slot range and
           **one bincount scatters all of them at once** — per-slot
           partial sums are unchanged, so the result stays bit-identical
           to per-sketch ``update()`` calls.

        The unweighted AGMS delta also skips sign materialization:
        ``Σ signs = 2·#odd − n`` counted straight off the hash parity
        bits (exact integer arithmetic, bit-identical to ``sign_sum``
        over the int8 signs).  EH3-signed entries replay through the
        separate-path primitives (counter arrays are disjoint across
        entries, so interleaving replays is still exact).
        """
        from ..hashing.signs import _parity_signs

        cache = getattr(plan, "_numpy_cache", None)
        if cache is None:
            cache = _build_fused_cache(plan)
            plan._numpy_cache = cache
        if keys.dtype != np.uint64:
            # Hash-key API dtype, not an accumulator.
            keys = keys.astype(np.uint64)  # repro: noqa(REP002)
        n = keys.size

        if weights is None:
            # Unweighted updates reduce to *integer* counts, which add
            # associatively — so huge chunks can be processed in
            # L2-resident key blocks and the per-block counts summed,
            # still bit-identical to the one-shot chunk.
            odd_total = None
            counts_total = None
            for start in range(0, n, cache.block):
                part = keys[start : start + cache.block]
                odd, counts = self._fused_counts(cache, part)
                if start == 0:
                    odd_total, counts_total = odd, counts
                else:
                    if odd is not None:
                        odd_total += odd
                    if counts is not None:
                        counts_total += counts
            if odd_total is not None:
                deltas = 2.0 * odd_total - np.float64(n)
                for entry, start, stop in cache.agms_entries:
                    entry.counters += deltas[start:stop]
            if counts_total is not None:
                deltas = counts_total[1::2] - counts_total[0::2]
                for entry, start, stop in cache.scatter_entries:
                    entry.counters += deltas[start:stop].reshape(
                        entry.counters.shape
                    )
        else:
            # Float accumulation is not associative, so the weighted path
            # runs one pass over the whole chunk — exactly the partial
            # sums the separate per-sketch path produces.
            a = cache.agms_rows
            sign_block = (
                _power_mod_p_k4(cache.poly_coefficients, keys)
                if cache.poly_coefficients is not None
                else None
            )
            if a:
                signs = _parity_signs(sign_block[:a])
                for entry, start, stop in cache.agms_entries:
                    entry.counters += self.sign_dot(
                        signs[start:stop], weights, out=entry.scratch
                    )
            if cache.bucket_coefficients is not None:
                indices = self._fused_slots(cache, keys)
                f = cache.fagms_rows
                folded = np.empty(indices.shape, dtype=np.float64)
                if f:
                    signs = _parity_signs(sign_block[a:])
                    np.multiply(signs, weights, out=folded[:f])
                folded[f:] = weights
                deltas = np.bincount(
                    indices.reshape(-1),
                    weights=folded.reshape(-1),
                    minlength=cache.total_slots,
                )
                for entry, start, stop in cache.scatter_entries:
                    entry.counters += deltas[start:stop].reshape(
                        entry.counters.shape
                    )

        for entry in cache.fallback:
            entry.replay(self, keys, weights)

    def _fused_slots(self, cache, keys: np.ndarray) -> np.ndarray:
        """Stacked bucket indices offset into the plan-wide slot ranges."""
        from ..hashing.families import _bucket_reduce, _horner_all

        hashed = _horner_all(cache.bucket_coefficients, keys)
        if len(cache.bucket_segments) == 1:
            indices = _bucket_reduce(hashed, cache.bucket_segments[0][2])
        else:
            indices = np.empty(hashed.shape, dtype=np.int64)
            for start, stop, buckets in cache.bucket_segments:
                indices[start:stop] = _bucket_reduce(hashed[start:stop], buckets)
        # `indices` is scratch we own (a view of `hashed` or fresh).
        indices += cache.slot_offsets[:, None]
        return indices

    def _fused_counts(self, cache, keys: np.ndarray):
        """One unweighted key block: AGMS odd-parity counts + slot counts."""
        from ..hashing.signs import _parity_signs

        a = cache.agms_rows
        sign_block = (
            _power_mod_p_k4(cache.poly_coefficients, keys)
            if cache.poly_coefficients is not None
            else None
        )
        odd = (
            np.count_nonzero(sign_block[:a] & np.uint64(1), axis=1)
            if a
            else None
        )
        counts = None
        if cache.bucket_coefficients is not None:
            indices = self._fused_slots(cache, keys)
            # Sign-split slots over the whole plan: even slot = −1s, odd
            # slot = +1s; unsigned Count-Min rows always land odd.
            np.left_shift(indices, 1, out=indices)
            f = cache.fagms_rows
            if f:
                indices[:f] += _parity_signs(sign_block[a:]) > 0
            indices[f:] += 1
            counts = np.bincount(
                indices.reshape(-1), minlength=2 * cache.total_slots
            )
        return odd, counts


register_backend(NumpyKernelBackend())
