"""The default numpy kernel backend: fused ``bincount`` scatter-adds.

``np.add.at`` applies its updates one element at a time through the ufunc
inner loop; ``np.bincount`` walks the index array once in C and needs no
per-element dispatch.  Both accumulate per-bucket partial sums in stream
order, so replacing the per-row ``add.at`` loop with a single bincount
over flattened ``row · buckets + bucket`` indices changes *only* where
the partial sum meets the counter (one add per bucket per call instead
of one per tuple) — exact for integer-valued deltas, which covers every
unweighted and frequency-vector workload.

Two scatter tricks on top of the flattening:

* unweighted ±1 updates append the sign bit to the flat index
  (``flat·2 + (sign > 0)``) and run one *integer* bincount over the
  doubled range; even slots count −1s, odd slots +1s, and the fold
  ``counts[1::2] − counts[0::2]`` is exact int64 arithmetic — no float
  weights and no int8→float64 conversion at all;
* weighted updates fold the signs into the deltas in a single
  ``signs * weights`` broadcast over the whole ``(rows, n)`` matrix
  instead of one ``astype(float64)`` + multiply per row.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backend import KernelBackend, register_backend

__all__ = ["NumpyKernelBackend"]


def _flat_indices(indices: np.ndarray, buckets: int) -> np.ndarray:
    """Flatten per-row bucket indices into the ``rows·buckets`` range."""
    rows = indices.shape[0]
    if rows == 1:
        return indices.reshape(-1)
    offsets = np.arange(rows, dtype=np.int64) * np.int64(buckets)
    return (indices + offsets[:, None]).reshape(-1)


class NumpyKernelBackend(KernelBackend):
    """Fused-bincount accumulation (the default backend)."""

    name = "numpy"

    def scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """One bincount pass; unweighted updates use pure integer counts."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        flat = _flat_indices(indices, buckets)
        if weights is None:
            counts = np.bincount(flat, minlength=rows * buckets)
        else:
            tiled = (
                weights
                if rows == 1
                else np.broadcast_to(weights, (rows, n)).reshape(-1)
            )
            counts = np.bincount(flat, weights=tiled, minlength=rows * buckets)
        counters += counts.reshape(rows, buckets)

    def signed_scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Sign-split integer bincount (unweighted) or sign-folded weights."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        flat = _flat_indices(indices, buckets)
        if weights is None:
            # Even slot: this bucket's −1s; odd slot: its +1s.  The fold is
            # exact int64 arithmetic — float64 never enters the hot loop.
            slots = (flat << 1) + (signs.reshape(-1) > 0)
            counts = np.bincount(slots, minlength=2 * rows * buckets)
            deltas = counts[1::2] - counts[0::2]
        else:
            folded = (signs * weights).reshape(-1)
            deltas = np.bincount(flat, weights=folded, minlength=rows * buckets)
        counters += deltas.reshape(rows, buckets)

    def gather(self, counters: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Single ``take`` on the flattened counter matrix."""
        rows, buckets = counters.shape
        flat = _flat_indices(indices, buckets)
        return counters.reshape(-1).take(flat).reshape(rows, indices.shape[1])

    def sign_sum(self, signs: np.ndarray) -> np.ndarray:
        """Row sums of the ±1 matrix with an explicit float64 accumulator."""
        return signs.sum(axis=1, dtype=np.float64)

    def sign_dot(
        self,
        signs: np.ndarray,
        weights: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``signs @ weights`` via one matmul into the caller's buffer."""
        dense = signs.astype(np.float64)
        if out is None:
            return dense @ weights
        np.matmul(dense, weights, out=out)
        return out


register_backend(NumpyKernelBackend())
