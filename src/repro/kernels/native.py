"""The native kernel backend: a small C library compiled on demand.

The numpy backend is bound by memory traffic — the lazily-reduced Horner
evaluation is ~8 full passes over the batch for the bucket hash and ~21
for the 4-wise sign hash, each reading and writing a ``(rows, n)``
uint64 matrix.  This backend fuses every one of those passes into a
single loop per primitive: hash, reduce, and emit in registers, touching
each key once.  On a single core that is worth another ~3× over the
vectorized numpy path for F-AGMS updates.

The library is built lazily, at most once per process, from the C source
embedded below: the source is written to a private temporary directory
and compiled with the system C compiler (``$CC`` or ``cc``) into a
shared object loaded through :mod:`ctypes`.  Nothing is cached across
processes and no artifacts touch the working tree.  If no compiler is
available the build fails softly: the backend stays registered (so it is
listed and produces a clear :class:`~repro.errors.ConfigurationError`
when activated) and :func:`native_available` reports ``False`` so tests
and benchmarks can skip it.

Bit-identity: the C code computes the *canonical* residue mod
``p = 2³¹ − 1`` with the same fold-and-subtract schedule the numpy path
uses, buckets with the same power-of-two mask (and Lemire's exact
mul-shift modulus otherwise), and accumulates scatter deltas element by
element in stream order — the same order as the reference backend's
``np.add.at`` — so counters match the other backends bit for bit, for
*any* weights, not just integer-valued ones.

Only the polynomial (fourwise/bucket) hashing primitives are compiled;
EH3 and tabulation sign families keep their vectorized numpy paths,
which this backend inherits from :class:`NumpyKernelBackend`.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
from ctypes import POINTER, c_double, c_int8, c_int64, c_uint64
from pathlib import Path
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .backend import register_backend
from .numpy_backend import NumpyKernelBackend

__all__ = ["NativeKernelBackend", "native_available", "native_build_error"]

_C_SOURCE = r"""
#include <stdint.h>

#define P31 2147483647ULL /* the Mersenne prime 2^31 - 1 */

/* One lazy fold: congruent mod P31 (2^31 = 1 mod P31), shrinks the value. */
static inline uint64_t fold31(uint64_t v) {
    return (v & P31) + (v >> 31);
}

/* Canonical residue from a lazily-folded value < 2^34. */
static inline uint64_t canon31(uint64_t v) {
    v = fold31(fold31(v));
    return v >= P31 ? v - P31 : v;
}

/* One Horner step with a single fold.  Entering with acc < 3 * 2^32 the
 * product acc * x + c stays below 2^64 (x < 2^31) and the fold returns
 * a value < 2^31 + acc/2 + 1 — so for polynomials up to degree 3
 * (k <= 4, all the sketch families) one fold per step suffices. */
static inline uint64_t step31(uint64_t acc, uint64_t x, uint64_t c) {
    return fold31(acc * x + c);
}

/* Fully-unrolled single-fold Horner for the small k the hash families
 * use (bucket hashes are k=2, fourwise signs k=4): straight-line code,
 * so the compiler can vectorize the key loop (8-wide vpmullq with
 * AVX-512DQ). */
static inline uint64_t horner31_k2(const uint64_t *c, uint64_t x) {
    return canon31(step31(c[0], x, c[1]));
}
static inline uint64_t horner31_k3(const uint64_t *c, uint64_t x) {
    return canon31(step31(step31(c[0], x, c[1]), x, c[2]));
}
static inline uint64_t horner31_k4(const uint64_t *c, uint64_t x) {
    return canon31(step31(step31(step31(c[0], x, c[1]), x, c[2]), x, c[3]));
}

/* Generic degree: two folds per step keep the accumulator bounded for
 * any k (invariant: acc <= 2^31 + 3 at the top of each iteration). */
static inline uint64_t horner31_gen(const uint64_t *c, int64_t k, uint64_t x) {
    uint64_t acc = c[0];
    int64_t j;
    for (j = 1; j < k; j++) {
        acc = fold31(fold31(acc * x + c[j]));
    }
    return canon31(acc);
}

/* One row's polynomial over a block of keys, dispatched once on k. */
static void poly_block(const uint64_t *c, int64_t k, const uint64_t *keys,
                       int64_t n, uint64_t *out) {
    int64_t i;
    switch (k) {
    case 1:
        for (i = 0; i < n; i++) out[i] = c[0];
        break;
    case 2:
        for (i = 0; i < n; i++) out[i] = horner31_k2(c, keys[i]);
        break;
    case 3:
        for (i = 0; i < n; i++) out[i] = horner31_k3(c, keys[i]);
        break;
    case 4:
        for (i = 0; i < n; i++) out[i] = horner31_k4(c, keys[i]);
        break;
    default:
        for (i = 0; i < n; i++) out[i] = horner31_gen(c, k, keys[i]);
    }
}

void repro_poly_mod_p(const uint64_t *coeffs, int64_t rows, int64_t k,
                      const uint64_t *keys, int64_t n, uint64_t *out) {
    int64_t r;
    for (r = 0; r < rows; r++) {
        poly_block(coeffs + r * k, k, keys, n, out + r * n);
    }
}

/* Hash values land in an L1-resident scratch block, the cheap post-op
 * (mask / modulus / parity) streams out of it. */
#define BLOCK 2048

void repro_bucket_indices(const uint64_t *coeffs, int64_t rows, int64_t k,
                          const uint64_t *keys, int64_t n, int64_t buckets,
                          int64_t *out) {
    uint64_t buf[BLOCK];
    uint64_t b = (uint64_t)buckets;
    int64_t r, i, start;
    int pow2 = (b & (b - 1)) == 0;
    uint64_t mask = b - 1;
    /* Lemire's exact mul-shift modulus: for 32-bit h and b,
     * h % b == (uint64)(((__uint128_t)(h * M) * b) >> 64)
     * with M = 2^64 / b rounded up.  Both operands are < 2^31. */
    uint64_t M = UINT64_MAX / b + 1;
    for (r = 0; r < rows; r++) {
        const uint64_t *c = coeffs + r * k;
        int64_t *o = out + r * n;
        for (start = 0; start < n; start += BLOCK) {
            int64_t m = n - start < BLOCK ? n - start : BLOCK;
            poly_block(c, k, keys + start, m, buf);
            if (pow2) {
                for (i = 0; i < m; i++) o[start + i] = (int64_t)(buf[i] & mask);
            } else {
                for (i = 0; i < m; i++) {
                    uint64_t low = buf[i] * M;
                    o[start + i] =
                        (int64_t)((uint64_t)(((__uint128_t)low * b) >> 64));
                }
            }
        }
    }
}

void repro_parity_signs(const uint64_t *coeffs, int64_t rows, int64_t k,
                        const uint64_t *keys, int64_t n, int8_t *out) {
    uint64_t buf[BLOCK];
    int64_t r, i, start;
    for (r = 0; r < rows; r++) {
        const uint64_t *c = coeffs + r * k;
        int8_t *o = out + r * n;
        for (start = 0; start < n; start += BLOCK) {
            int64_t m = n - start < BLOCK ? n - start : BLOCK;
            poly_block(c, k, keys + start, m, buf);
            for (i = 0; i < m; i++) {
                o[start + i] = (int8_t)(((buf[i] & 1) << 1) - 1);
            }
        }
    }
}

void repro_scatter(double *counters, int64_t rows, int64_t buckets,
                   const int64_t *indices, int64_t n, const double *weights) {
    int64_t r, i;
    for (r = 0; r < rows; r++) {
        double *c = counters + r * buckets;
        const int64_t *idx = indices + r * n;
        if (weights) {
            for (i = 0; i < n; i++) c[idx[i]] += weights[i];
        } else {
            for (i = 0; i < n; i++) c[idx[i]] += 1.0;
        }
    }
}

void repro_signed_scatter(double *counters, int64_t rows, int64_t buckets,
                          const int64_t *indices, const int8_t *signs,
                          int64_t n, const double *weights) {
    int64_t r, i;
    for (r = 0; r < rows; r++) {
        double *c = counters + r * buckets;
        const int64_t *idx = indices + r * n;
        const int8_t *s = signs + r * n;
        if (weights) {
            for (i = 0; i < n; i++) c[idx[i]] += (double)s[i] * weights[i];
        } else {
            for (i = 0; i < n; i++) c[idx[i]] += (double)s[i];
        }
    }
}
"""

_U64P = POINTER(c_uint64)
_I64P = POINTER(c_int64)
_I8P = POINTER(c_int8)
_F64P = POINTER(c_double)

_lib: Optional[ctypes.CDLL] = None
_build_error: Optional[str] = None


def _declare(lib: ctypes.CDLL) -> None:
    """Attach argtypes so ctypes checks the call signatures."""
    lib.repro_poly_mod_p.argtypes = [_U64P, c_int64, c_int64, _U64P, c_int64, _U64P]
    lib.repro_poly_mod_p.restype = None
    lib.repro_bucket_indices.argtypes = [
        _U64P, c_int64, c_int64, _U64P, c_int64, c_int64, _I64P,
    ]
    lib.repro_bucket_indices.restype = None
    lib.repro_parity_signs.argtypes = [_U64P, c_int64, c_int64, _U64P, c_int64, _I8P]
    lib.repro_parity_signs.restype = None
    lib.repro_scatter.argtypes = [_F64P, c_int64, c_int64, _I64P, c_int64, _F64P]
    lib.repro_scatter.restype = None
    lib.repro_signed_scatter.argtypes = [
        _F64P, c_int64, c_int64, _I64P, _I8P, c_int64, _F64P,
    ]
    lib.repro_signed_scatter.restype = None


def _build() -> ctypes.CDLL:
    """Compile the embedded C source into a private temp dir and load it."""
    build_dir = Path(tempfile.mkdtemp(prefix="repro-kernels-"))
    source = build_dir / "repro_kernels.c"
    source.write_text(_C_SOURCE)
    shared = build_dir / "repro_kernels.so"
    compiler = os.environ.get("CC", "cc")
    base = [compiler, "-O3", "-fPIC", "-shared", "-o", str(shared), str(source)]
    # -march=native lets the compiler vectorize the straight-line Horner
    # loops (8-wide 64-bit multiplies with AVX-512DQ); retry portably if
    # the local toolchain rejects it.
    proc = subprocess.run(base[:1] + ["-march=native"] + base[1:],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        proc = subprocess.run(base, capture_output=True, text=True)
    if proc.returncode != 0:
        detail = proc.stderr.strip() or proc.stdout.strip() or "no diagnostics"
        raise OSError(f"{' '.join(base)} failed: {detail}")
    lib = ctypes.CDLL(str(shared))
    _declare(lib)
    return lib


def _library() -> ctypes.CDLL:
    """The compiled library, building it on first use (once per process)."""
    global _lib, _build_error
    if _lib is None and _build_error is None:
        try:
            _lib = _build()
        except OSError as exc:
            _build_error = str(exc)
    if _lib is None:
        raise ConfigurationError(
            f"native kernel backend unavailable: {_build_error}"
        )
    return _lib


def native_available() -> bool:
    """Whether the compiled backend can be built and loaded on this machine."""
    try:
        _library()
    except ConfigurationError:
        return False
    return True


def native_build_error() -> Optional[str]:
    """The build failure message, or ``None`` if the library loaded."""
    try:
        _library()
    except ConfigurationError:
        return _build_error
    return None


def _u64(array: np.ndarray):
    return array.ctypes.data_as(_U64P)


def _counter_pointer(counters: np.ndarray):
    """Pointer to the counter matrix, which the C side mutates in place."""
    if not counters.flags.c_contiguous:
        raise ConfigurationError(
            "native backend needs C-contiguous counters; got a strided view"
        )
    return counters.ctypes.data_as(_F64P)


class NativeKernelBackend(NumpyKernelBackend):
    """Compiled single-pass hashing and scatter primitives.

    Inherits the numpy implementations for everything it does not
    accelerate (gather, AGMS sign reductions, EH3/tabulation families).
    Activate with ``set_backend("native")`` or
    ``REPRO_KERNEL_BACKEND=native``; activation raises
    :class:`~repro.errors.ConfigurationError` when no C compiler is
    available (see :func:`native_available`).
    """

    name = "native"

    # REP002 note: the uint64/int8 buffers below are hash values and ±1
    # signs, never accumulators — counters stay float64 throughout.

    def polynomial_mod_p(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Fused Horner over all rows in one C pass."""
        rows, k = coefficients.shape
        out = np.empty((rows, keys.size), dtype=np.uint64)
        if keys.size:
            _library().repro_poly_mod_p(
                _u64(np.ascontiguousarray(coefficients)),
                rows,
                k,
                _u64(np.ascontiguousarray(keys)),
                keys.size,
                _u64(out),
            )
        return out

    def bucket_indices(
        self, coefficients: np.ndarray, keys: np.ndarray, buckets: int
    ) -> np.ndarray:
        """Fused Horner + ``mod buckets`` in one C pass."""
        rows, k = coefficients.shape
        out = np.empty((rows, keys.size), dtype=np.int64)
        if keys.size:
            _library().repro_bucket_indices(
                _u64(np.ascontiguousarray(coefficients)),
                rows,
                k,
                _u64(np.ascontiguousarray(keys)),
                keys.size,
                buckets,
                out.ctypes.data_as(_I64P),
            )
        return out

    def parity_signs(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Fused Horner + parity map in one C pass."""
        rows, k = coefficients.shape
        out = np.empty((rows, keys.size), dtype=np.int8)
        if keys.size:
            _library().repro_parity_signs(
                _u64(np.ascontiguousarray(coefficients)),
                rows,
                k,
                _u64(np.ascontiguousarray(keys)),
                keys.size,
                out.ctypes.data_as(_I8P),
            )
        return out

    def scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Element-wise accumulation in stream order (same as ``np.add.at``)."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        _library().repro_scatter(
            _counter_pointer(counters),
            rows,
            buckets,
            np.ascontiguousarray(indices).ctypes.data_as(_I64P),
            n,
            None
            if weights is None
            else np.ascontiguousarray(weights).ctypes.data_as(_F64P),
        )

    def signed_scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Element-wise signed accumulation in stream order."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        _library().repro_signed_scatter(
            _counter_pointer(counters),
            rows,
            buckets,
            np.ascontiguousarray(indices).ctypes.data_as(_I64P),
            np.ascontiguousarray(signs).ctypes.data_as(_I8P),
            n,
            None
            if weights is None
            else np.ascontiguousarray(weights).ctypes.data_as(_F64P),
        )


register_backend(NativeKernelBackend())
