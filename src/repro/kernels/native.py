"""The native kernel backend: a small C library compiled on demand.

The numpy backend is bound by memory traffic — the lazily-reduced Horner
evaluation is ~8 full passes over the batch for the bucket hash and ~21
for the 4-wise sign hash, each reading and writing a ``(rows, n)``
uint64 matrix.  This backend fuses every one of those passes into a
single loop per primitive: hash, reduce, and emit in registers, touching
each key once.  On a single core that is worth another ~3× over the
vectorized numpy path for F-AGMS updates.

On top of the per-primitive kernels this backend implements the fused
multi-sketch entry point (:mod:`repro.kernels.fused`) entirely in C:
per sketch, one loop computes bucket index and ±1 sign for a key while
it sits in a register and scatters immediately — the ``(rows, n)``
index/sign matrices that the separate path materializes (and re-reads)
through numpy never exist.  The unweighted AGMS row sums reduce in
registers too, eliminating the numpy int8→float64 reduction that made
AGMS the per-sketch straggler.  Fused kernels also accept ``int32`` /
``uint32`` keys directly (widened block-wise in L1), halving key
traffic for narrow domains.

Threading: every row loop (hashing, scatter, fused) carries an OpenMP
``parallel for`` over rows.  Rows write disjoint output slices and each
row's accumulation stays in stream order, so results are **bit-identical
for any thread count** — threading is purely a throughput knob, default
1 (set via :func:`set_native_threads` or ``REPRO_NATIVE_THREADS``).
The build tries ``-fopenmp`` and falls back to a single-threaded compile
when the toolchain lacks it, mirroring the no-compiler fallback below:
:func:`native_openmp` reports what the loaded library supports.

The library is built lazily, at most once per process, from the C source
embedded below: the source is written to a private temporary directory
and compiled with the system C compiler (``$CC`` or ``cc``) into a
shared object loaded through :mod:`ctypes`.  Nothing is cached across
processes and no artifacts touch the working tree.  If no compiler is
available the build fails softly: the backend stays registered (so it is
listed and produces a clear :class:`~repro.errors.ConfigurationError`
when activated) and :func:`native_available` reports ``False`` so tests
and benchmarks can skip it.

Bit-identity: the C code computes the *canonical* residue mod
``p = 2³¹ − 1`` with the same fold-and-subtract schedule the numpy path
uses, buckets with the same power-of-two mask (and Lemire's exact
mul-shift modulus otherwise), and accumulates scatter deltas element by
element in stream order — the same order as the reference backend's
``np.add.at`` — so counters match the other backends bit for bit, for
*any* weights, not just integer-valued ones.

Only the polynomial (fourwise/bucket) hashing primitives are compiled;
EH3 and tabulation sign families keep their vectorized numpy paths,
which this backend inherits from :class:`NumpyKernelBackend` (the fused
path falls back to the replayed primitives for such entries).
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
from ctypes import POINTER, c_double, c_int8, c_int64, c_uint64, c_void_p
from pathlib import Path
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .backend import register_backend
from .numpy_backend import NumpyKernelBackend

__all__ = [
    "NativeKernelBackend",
    "native_available",
    "native_build_error",
    "native_openmp",
    "native_threads",
    "set_native_threads",
]

#: Worker threads for the native row loops (default 1; results are
#: bit-identical for any value — see :func:`set_native_threads`).
THREADS_ENV_VAR = "REPRO_NATIVE_THREADS"

_C_SOURCE = r"""
#include <stdint.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#define P31 2147483647ULL /* the Mersenne prime 2^31 - 1 */

/* Worker-thread count for the row loops.  Rows write disjoint output
 * slices and each row's accumulation keeps stream order, so any value
 * here produces bit-identical results; 1 (the default) skips the
 * OpenMP runtime entirely via the if() clauses below. */
static int64_t repro_threads = 1;

void repro_set_threads(int64_t threads) {
    repro_threads = threads < 1 ? 1 : threads;
}

int64_t repro_get_threads(void) { return repro_threads; }

int64_t repro_openmp_compiled(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

/* One lazy fold: congruent mod P31 (2^31 = 1 mod P31), shrinks the value. */
static inline uint64_t fold31(uint64_t v) {
    return (v & P31) + (v >> 31);
}

/* Canonical residue from a lazily-folded value < 2^34. */
static inline uint64_t canon31(uint64_t v) {
    v = fold31(fold31(v));
    return v >= P31 ? v - P31 : v;
}

/* One Horner step with a single fold.  Entering with acc < 3 * 2^32 the
 * product acc * x + c stays below 2^64 (x < 2^31) and the fold returns
 * a value < 2^31 + acc/2 + 1 — so for polynomials up to degree 3
 * (k <= 4, all the sketch families) one fold per step suffices. */
static inline uint64_t step31(uint64_t acc, uint64_t x, uint64_t c) {
    return fold31(acc * x + c);
}

/* Fully-unrolled single-fold Horner for the small k the hash families
 * use (bucket hashes are k=2, fourwise signs k=4): straight-line code,
 * so the compiler can vectorize the key loop (8-wide vpmullq with
 * AVX-512DQ). */
static inline uint64_t horner31_k2(const uint64_t *c, uint64_t x) {
    return canon31(step31(c[0], x, c[1]));
}
static inline uint64_t horner31_k3(const uint64_t *c, uint64_t x) {
    return canon31(step31(step31(c[0], x, c[1]), x, c[2]));
}
static inline uint64_t horner31_k4(const uint64_t *c, uint64_t x) {
    return canon31(step31(step31(step31(c[0], x, c[1]), x, c[2]), x, c[3]));
}

/* Generic degree: two folds per step keep the accumulator bounded for
 * any k (invariant: acc <= 2^31 + 3 at the top of each iteration). */
static inline uint64_t horner31_gen(const uint64_t *c, int64_t k, uint64_t x) {
    uint64_t acc = c[0];
    int64_t j;
    for (j = 1; j < k; j++) {
        acc = fold31(fold31(acc * x + c[j]));
    }
    return canon31(acc);
}

/* One row's polynomial over a block of keys, dispatched once on k. */
static void poly_block(const uint64_t *c, int64_t k, const uint64_t *keys,
                       int64_t n, uint64_t *out) {
    int64_t i;
    switch (k) {
    case 1:
        for (i = 0; i < n; i++) out[i] = c[0];
        break;
    case 2:
        for (i = 0; i < n; i++) out[i] = horner31_k2(c, keys[i]);
        break;
    case 3:
        for (i = 0; i < n; i++) out[i] = horner31_k3(c, keys[i]);
        break;
    case 4:
        for (i = 0; i < n; i++) out[i] = horner31_k4(c, keys[i]);
        break;
    default:
        for (i = 0; i < n; i++) out[i] = horner31_gen(c, k, keys[i]);
    }
}

/* Hash values land in an L1-resident scratch block, the cheap post-op
 * (mask / modulus / parity) streams out of it. */
#define BLOCK 2048

/* Fused entry points take keys as 8-byte canonical uint64 or, on the
 * int32 fast path, 4-byte non-negative values widened block-wise here
 * (the block stays in L1, so the widening is free relative to DRAM). */
static inline const uint64_t *load_keys(const void *keys, int64_t kwidth,
                                        int64_t start, int64_t m,
                                        uint64_t *buf) {
    if (kwidth == 8) {
        return (const uint64_t *)keys + start;
    }
    {
        const uint32_t *narrow = (const uint32_t *)keys + start;
        int64_t i;
        for (i = 0; i < m; i++) buf[i] = (uint64_t)narrow[i];
    }
    return buf;
}

void repro_poly_mod_p(const uint64_t *coeffs, int64_t rows, int64_t k,
                      const uint64_t *keys, int64_t n, uint64_t *out) {
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        poly_block(coeffs + r * k, k, keys, n, out + r * n);
    }
}

void repro_bucket_indices(const uint64_t *coeffs, int64_t rows, int64_t k,
                          const uint64_t *keys, int64_t n, int64_t buckets,
                          int64_t *out) {
    uint64_t b = (uint64_t)buckets;
    int pow2 = (b & (b - 1)) == 0;
    uint64_t mask = b - 1;
    /* Lemire's exact mul-shift modulus: for 32-bit h and b,
     * h % b == (uint64)(((__uint128_t)(h * M) * b) >> 64)
     * with M = 2^64 / b rounded up.  Both operands are < 2^31. */
    uint64_t M = UINT64_MAX / b + 1;
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        const uint64_t *c = coeffs + r * k;
        int64_t *o = out + r * n;
        uint64_t buf[BLOCK];
        for (int64_t start = 0; start < n; start += BLOCK) {
            int64_t m = n - start < BLOCK ? n - start : BLOCK;
            int64_t i;
            poly_block(c, k, keys + start, m, buf);
            if (pow2) {
                for (i = 0; i < m; i++) o[start + i] = (int64_t)(buf[i] & mask);
            } else {
                for (i = 0; i < m; i++) {
                    uint64_t low = buf[i] * M;
                    o[start + i] =
                        (int64_t)((uint64_t)(((__uint128_t)low * b) >> 64));
                }
            }
        }
    }
}

void repro_parity_signs(const uint64_t *coeffs, int64_t rows, int64_t k,
                        const uint64_t *keys, int64_t n, int8_t *out) {
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        const uint64_t *c = coeffs + r * k;
        int8_t *o = out + r * n;
        uint64_t buf[BLOCK];
        for (int64_t start = 0; start < n; start += BLOCK) {
            int64_t m = n - start < BLOCK ? n - start : BLOCK;
            poly_block(c, k, keys + start, m, buf);
            for (int64_t i = 0; i < m; i++) {
                o[start + i] = (int8_t)(((buf[i] & 1) << 1) - 1);
            }
        }
    }
}

void repro_scatter(double *counters, int64_t rows, int64_t buckets,
                   const int64_t *indices, int64_t n, const double *weights) {
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        double *c = counters + r * buckets;
        const int64_t *idx = indices + r * n;
        int64_t i;
        if (weights) {
            for (i = 0; i < n; i++) c[idx[i]] += weights[i];
        } else {
            for (i = 0; i < n; i++) c[idx[i]] += 1.0;
        }
    }
}

void repro_signed_scatter(double *counters, int64_t rows, int64_t buckets,
                          const int64_t *indices, const int8_t *signs,
                          int64_t n, const double *weights) {
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        double *c = counters + r * buckets;
        const int64_t *idx = indices + r * n;
        const int8_t *s = signs + r * n;
        int64_t i;
        if (weights) {
            for (i = 0; i < n; i++) c[idx[i]] += (double)s[i] * weights[i];
        } else {
            for (i = 0; i < n; i++) c[idx[i]] += (double)s[i];
        }
    }
}

/* ------------------------------------------------------------------
 * Fused multi-sketch kernels: hash and accumulate per key while it is
 * in a register — no (rows, n) index/sign matrices are materialized.
 * Each matches the separate path bit for bit: same horner31_k2/_k4
 * residues, same pow2/Lemire bucket reduction, same per-row stream
 * order of the scatter accumulation.
 * ------------------------------------------------------------------ */

/* Unweighted AGMS: per row, sum(+/-1 signs) == 2 * #odd - n, counted in
 * registers.  The int64 count is exact, so adding it to the float64
 * counter matches the separate sign_sum path bit for bit. */
void repro_fused_agms(const uint64_t *coeffs, int64_t rows, const void *keys,
                      int64_t kwidth, int64_t n, int64_t *rowsums) {
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        const uint64_t *c = coeffs + 4 * r;
        uint64_t kbuf[BLOCK];
        int64_t odd = 0;
        for (int64_t start = 0; start < n; start += BLOCK) {
            int64_t m = n - start < BLOCK ? n - start : BLOCK;
            const uint64_t *kb = load_keys(keys, kwidth, start, m, kbuf);
            for (int64_t i = 0; i < m; i++) {
                odd += (int64_t)(horner31_k4(c, kb[i]) & 1);
            }
        }
        rowsums[r] = 2 * odd - n;
    }
}

/* F-AGMS: bucket index (k=2) and sign (k=4) per key in one pass, then a
 * stream-order scatter over the L1-resident block. */
void repro_fused_signed(const uint64_t *bcoeffs, const uint64_t *scoeffs,
                        int64_t rows, const void *keys, int64_t kwidth,
                        int64_t n, int64_t buckets, double *counters,
                        const double *weights) {
    uint64_t b = (uint64_t)buckets;
    int pow2 = (b & (b - 1)) == 0;
    uint64_t mask = b - 1;
    uint64_t M = UINT64_MAX / b + 1;
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        const uint64_t *bc = bcoeffs + 2 * r;
        const uint64_t *sc = scoeffs + 4 * r;
        double *c = counters + r * buckets;
        uint64_t kbuf[BLOCK];
        int64_t idx[BLOCK];
        int8_t sg[BLOCK];
        for (int64_t start = 0; start < n; start += BLOCK) {
            int64_t m = n - start < BLOCK ? n - start : BLOCK;
            const uint64_t *kb = load_keys(keys, kwidth, start, m, kbuf);
            int64_t i;
            if (pow2) {
                for (i = 0; i < m; i++) {
                    uint64_t x = kb[i];
                    idx[i] = (int64_t)(horner31_k2(bc, x) & mask);
                    sg[i] = (int8_t)(((horner31_k4(sc, x) & 1) << 1) - 1);
                }
            } else {
                for (i = 0; i < m; i++) {
                    uint64_t x = kb[i];
                    uint64_t low = horner31_k2(bc, x) * M;
                    idx[i] = (int64_t)((uint64_t)(((__uint128_t)low * b) >> 64));
                    sg[i] = (int8_t)(((horner31_k4(sc, x) & 1) << 1) - 1);
                }
            }
            if (weights) {
                const double *w = weights + start;
                for (i = 0; i < m; i++) c[idx[i]] += (double)sg[i] * w[i];
            } else {
                for (i = 0; i < m; i++) c[idx[i]] += (double)sg[i];
            }
        }
    }
}

/* Count-Min: like the signed kernel without the sign hash. */
void repro_fused_unsigned(const uint64_t *bcoeffs, int64_t rows,
                          const void *keys, int64_t kwidth, int64_t n,
                          int64_t buckets, double *counters,
                          const double *weights) {
    uint64_t b = (uint64_t)buckets;
    int pow2 = (b & (b - 1)) == 0;
    uint64_t mask = b - 1;
    uint64_t M = UINT64_MAX / b + 1;
#pragma omp parallel for schedule(static) num_threads((int)repro_threads) \
    if (repro_threads > 1)
    for (int64_t r = 0; r < rows; r++) {
        const uint64_t *bc = bcoeffs + 2 * r;
        double *c = counters + r * buckets;
        uint64_t kbuf[BLOCK];
        int64_t idx[BLOCK];
        for (int64_t start = 0; start < n; start += BLOCK) {
            int64_t m = n - start < BLOCK ? n - start : BLOCK;
            const uint64_t *kb = load_keys(keys, kwidth, start, m, kbuf);
            int64_t i;
            if (pow2) {
                for (i = 0; i < m; i++) {
                    idx[i] = (int64_t)(horner31_k2(bc, kb[i]) & mask);
                }
            } else {
                for (i = 0; i < m; i++) {
                    uint64_t low = horner31_k2(bc, kb[i]) * M;
                    idx[i] = (int64_t)((uint64_t)(((__uint128_t)low * b) >> 64));
                }
            }
            if (weights) {
                const double *w = weights + start;
                for (i = 0; i < m; i++) c[idx[i]] += w[i];
            } else {
                for (i = 0; i < m; i++) c[idx[i]] += 1.0;
            }
        }
    }
}
"""

_U64P = POINTER(c_uint64)
_I64P = POINTER(c_int64)
_I8P = POINTER(c_int8)
_F64P = POINTER(c_double)

_lib: Optional[ctypes.CDLL] = None
_build_error: Optional[str] = None


def _declare(lib: ctypes.CDLL) -> None:
    """Attach argtypes so ctypes checks the call signatures."""
    lib.repro_poly_mod_p.argtypes = [_U64P, c_int64, c_int64, _U64P, c_int64, _U64P]
    lib.repro_poly_mod_p.restype = None
    lib.repro_bucket_indices.argtypes = [
        _U64P, c_int64, c_int64, _U64P, c_int64, c_int64, _I64P,
    ]
    lib.repro_bucket_indices.restype = None
    lib.repro_parity_signs.argtypes = [_U64P, c_int64, c_int64, _U64P, c_int64, _I8P]
    lib.repro_parity_signs.restype = None
    lib.repro_scatter.argtypes = [_F64P, c_int64, c_int64, _I64P, c_int64, _F64P]
    lib.repro_scatter.restype = None
    lib.repro_signed_scatter.argtypes = [
        _F64P, c_int64, c_int64, _I64P, _I8P, c_int64, _F64P,
    ]
    lib.repro_signed_scatter.restype = None
    lib.repro_fused_agms.argtypes = [
        _U64P, c_int64, c_void_p, c_int64, c_int64, _I64P,
    ]
    lib.repro_fused_agms.restype = None
    lib.repro_fused_signed.argtypes = [
        _U64P, _U64P, c_int64, c_void_p, c_int64, c_int64, c_int64, _F64P, _F64P,
    ]
    lib.repro_fused_signed.restype = None
    lib.repro_fused_unsigned.argtypes = [
        _U64P, c_int64, c_void_p, c_int64, c_int64, c_int64, _F64P, _F64P,
    ]
    lib.repro_fused_unsigned.restype = None
    lib.repro_set_threads.argtypes = [c_int64]
    lib.repro_set_threads.restype = None
    lib.repro_get_threads.argtypes = []
    lib.repro_get_threads.restype = c_int64
    lib.repro_openmp_compiled.argtypes = []
    lib.repro_openmp_compiled.restype = c_int64


def _build() -> ctypes.CDLL:
    """Compile the embedded C source into a private temp dir and load it."""
    build_dir = Path(tempfile.mkdtemp(prefix="repro-kernels-"))
    source = build_dir / "repro_kernels.c"
    source.write_text(_C_SOURCE)
    shared = build_dir / "repro_kernels.so"
    compiler = os.environ.get("CC", "cc")
    base = [compiler, "-O3", "-fPIC", "-shared", "-o", str(shared), str(source)]
    # -march=native lets the compiler vectorize the straight-line Horner
    # loops (8-wide 64-bit multiplies with AVX-512DQ); -fopenmp enables
    # the threaded row loops.  Drop each in turn when the local toolchain
    # rejects it — the single-threaded portable compile is the floor.
    proc = None
    for extra in (
        ["-march=native", "-fopenmp"],
        ["-march=native"],
        ["-fopenmp"],
        [],
    ):
        proc = subprocess.run(
            base[:1] + extra + base[1:], capture_output=True, text=True
        )
        if proc.returncode == 0:
            break
    if proc is None or proc.returncode != 0:
        detail = proc.stderr.strip() or proc.stdout.strip() or "no diagnostics"
        raise OSError(f"{' '.join(base)} failed: {detail}")
    lib = ctypes.CDLL(str(shared))
    _declare(lib)
    raw = os.environ.get(THREADS_ENV_VAR)
    if raw:
        try:
            lib.repro_set_threads(int(raw))
        except ValueError:
            raise OSError(
                f"{THREADS_ENV_VAR}={raw!r} is not an integer"
            ) from None
    return lib


def _library() -> ctypes.CDLL:
    """The compiled library, building it on first use (once per process)."""
    global _lib, _build_error
    if _lib is None and _build_error is None:
        try:
            _lib = _build()
        except OSError as exc:
            _build_error = str(exc)
    if _lib is None:
        raise ConfigurationError(
            f"native kernel backend unavailable: {_build_error}"
        )
    return _lib


def native_available() -> bool:
    """Whether the compiled backend can be built and loaded on this machine."""
    try:
        _library()
    except ConfigurationError:
        return False
    return True


def native_build_error() -> Optional[str]:
    """The build failure message, or ``None`` if the library loaded."""
    try:
        _library()
    except ConfigurationError:
        return _build_error
    return None


def native_openmp() -> bool:
    """Whether the loaded library was compiled with OpenMP support."""
    return bool(_library().repro_openmp_compiled())


def set_native_threads(threads: int) -> int:
    """Set the worker-thread count for the native row loops.

    Returns the *effective* count: libraries compiled without OpenMP
    (toolchain lacks ``-fopenmp``) always run single-threaded, so the
    call is accepted but reports 1.  Any value is bit-identity-safe —
    rows write disjoint slices in stream order — so this is purely a
    throughput knob.  The default is 1; ``REPRO_NATIVE_THREADS`` seeds
    it at first library load.
    """
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads}")
    lib = _library()
    lib.repro_set_threads(threads)
    return native_threads()


def native_threads() -> int:
    """The effective native thread count (1 without OpenMP support)."""
    lib = _library()
    if not lib.repro_openmp_compiled():
        return 1
    return int(lib.repro_get_threads())


def _u64(array: np.ndarray):
    return array.ctypes.data_as(_U64P)


def _counter_pointer(counters: np.ndarray):
    """Pointer to the counter matrix, which the C side mutates in place."""
    if not counters.flags.c_contiguous:
        raise ConfigurationError(
            "native backend needs C-contiguous counters; got a strided view"
        )
    return counters.ctypes.data_as(_F64P)


class NativeKernelBackend(NumpyKernelBackend):
    """Compiled single-pass hashing, scatter, and fused-update primitives.

    Inherits the numpy implementations for everything it does not
    accelerate (gather, AGMS sign reductions, EH3/tabulation families).
    Activate with ``set_backend("native")`` or
    ``REPRO_KERNEL_BACKEND=native``; activation raises
    :class:`~repro.errors.ConfigurationError` when no C compiler is
    available (see :func:`native_available`).
    """

    name = "native"

    #: Fused kernels widen int32/uint32 keys block-wise in C (see
    #: :func:`repro.kernels.fused.fused_update`).
    fused_accepts_int32 = True

    # REP002 note: the uint64/int8 buffers below are hash values and ±1
    # signs, never accumulators — counters stay float64 throughout.

    def polynomial_mod_p(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Fused Horner over all rows in one C pass."""
        rows, k = coefficients.shape
        out = np.empty((rows, keys.size), dtype=np.uint64)
        if keys.size:
            _library().repro_poly_mod_p(
                _u64(np.ascontiguousarray(coefficients)),
                rows,
                k,
                _u64(np.ascontiguousarray(keys)),
                keys.size,
                _u64(out),
            )
        return out

    def bucket_indices(
        self, coefficients: np.ndarray, keys: np.ndarray, buckets: int
    ) -> np.ndarray:
        """Fused Horner + ``mod buckets`` in one C pass."""
        rows, k = coefficients.shape
        out = np.empty((rows, keys.size), dtype=np.int64)
        if keys.size:
            _library().repro_bucket_indices(
                _u64(np.ascontiguousarray(coefficients)),
                rows,
                k,
                _u64(np.ascontiguousarray(keys)),
                keys.size,
                buckets,
                out.ctypes.data_as(_I64P),
            )
        return out

    def parity_signs(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Fused Horner + parity map in one C pass."""
        rows, k = coefficients.shape
        out = np.empty((rows, keys.size), dtype=np.int8)
        if keys.size:
            _library().repro_parity_signs(
                _u64(np.ascontiguousarray(coefficients)),
                rows,
                k,
                _u64(np.ascontiguousarray(keys)),
                keys.size,
                out.ctypes.data_as(_I8P),
            )
        return out

    def scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Element-wise accumulation in stream order (same as ``np.add.at``)."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        _library().repro_scatter(
            _counter_pointer(counters),
            rows,
            buckets,
            np.ascontiguousarray(indices).ctypes.data_as(_I64P),
            n,
            None
            if weights is None
            else np.ascontiguousarray(weights).ctypes.data_as(_F64P),
        )

    def signed_scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Element-wise signed accumulation in stream order."""
        rows, buckets = counters.shape
        n = indices.shape[1]
        if n == 0:
            return
        _library().repro_signed_scatter(
            _counter_pointer(counters),
            rows,
            buckets,
            np.ascontiguousarray(indices).ctypes.data_as(_I64P),
            np.ascontiguousarray(signs).ctypes.data_as(_I8P),
            n,
            None
            if weights is None
            else np.ascontiguousarray(weights).ctypes.data_as(_F64P),
        )

    def fused_update(self, plan, keys: np.ndarray, weights=None) -> None:
        """Per-sketch single-pass C kernels over one prepared key batch.

        Polynomial-family entries run fully in C (no intermediate
        index/sign matrices); EH3-signed entries and the weighted AGMS
        reduction fall back to the replayed separate-path primitives
        (C hashing + the numpy sign reductions), keeping every entry
        bit-identical to its per-sketch ``update()``.
        """
        lib = _library()
        n = keys.size
        kwidth = keys.dtype.itemsize
        if kwidth not in (4, 8):
            keys = keys.astype(np.uint64)
            kwidth = 8
        key_pointer = keys.ctypes.data_as(c_void_p)
        weight_pointer = (
            None
            if weights is None
            else np.ascontiguousarray(weights).ctypes.data_as(_F64P)
        )
        wide: Optional[np.ndarray] = None

        def keys64() -> np.ndarray:
            # Canonical uint64 view for the numpy-path fallbacks, built
            # at most once per call.
            nonlocal wide
            if wide is None:
                if keys.dtype == np.uint64:
                    wide = keys
                elif keys.dtype == np.int64:
                    wide = keys.view(np.uint64)
                else:
                    wide = keys.astype(np.uint64)
            return wide

        for entry in plan.entries:
            poly_signs = (
                entry.sign_kind == "poly"
                and entry.sign_coefficients is not None
                and entry.sign_coefficients.shape[1] == 4
            )
            if entry.kind == "agms":
                if poly_signs and weights is None:
                    rowsums = np.empty(entry.rows, dtype=np.int64)
                    lib.repro_fused_agms(
                        _u64(np.ascontiguousarray(entry.sign_coefficients)),
                        entry.rows,
                        key_pointer,
                        kwidth,
                        n,
                        rowsums.ctypes.data_as(_I64P),
                    )
                    entry.counters += rowsums.astype(np.float64)
                else:
                    entry.replay(self, keys64(), weights)
            elif entry.kind == "fagms":
                if poly_signs:
                    lib.repro_fused_signed(
                        _u64(np.ascontiguousarray(entry.bucket_coefficients)),
                        _u64(np.ascontiguousarray(entry.sign_coefficients)),
                        entry.rows,
                        key_pointer,
                        kwidth,
                        n,
                        entry.buckets,
                        _counter_pointer(entry.counters),
                        weight_pointer,
                    )
                else:
                    entry.replay(self, keys64(), weights)
            else:
                lib.repro_fused_unsigned(
                    _u64(np.ascontiguousarray(entry.bucket_coefficients)),
                    entry.rows,
                    key_pointer,
                    kwidth,
                    n,
                    entry.buckets,
                    _counter_pointer(entry.counters),
                    weight_pointer,
                )


register_backend(NativeKernelBackend())
