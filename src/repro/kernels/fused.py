"""The fused multi-sketch update entry point on the backend seam.

A statistics pipeline commonly maintains several sketches over the *same*
key stream — an AGMS sketch for unbiased moments, an F-AGMS sketch for
point queries, a Count-Min baseline.  Updating them one at a time walks
the chunk once per sketch: every ``update()`` call re-validates the keys
(two full min/max scans per hash family), materializes its own
``(rows, n)`` index/sign matrices, and pays its own Python/ctypes
dispatch.  :func:`fused_update` replaces that with **one pass over the
chunk that updates every sketch**: keys are validated and widened once,
and the active backend receives the whole batch of hash families together
so it can keep each key in registers while evaluating all of them (the
native backend) or share one stacked Horner pass across sketches (the
numpy backend) — the batching idea of disaggregated-sketch systems
(arXiv 1709.04048) applied to the update path.

The seam method is :meth:`~repro.kernels.backend.KernelBackend.fused_update`;
its base implementation replays the exact per-sketch primitives of the
separate path, so **every backend is bit-identical to calling each
sketch's** ``update()`` **individually** — enforced for all sketch types
× backends in ``tests/test_fused_kernels.py``.

Plans
-----
A :class:`FusedPlan` is the backend-facing description of the co-updated
sketches: one :class:`FusedEntry` per sketch carrying live references to
its counter array and hash-family coefficients.  Build one with
:func:`make_fused_plan` and reuse it across chunks (the cheap path), or
pass the sketch sequence straight to :func:`fused_update` (a plan is
built per call).  A plan holds *references* — rebuilding a sketch's
counter storage (e.g. :meth:`~repro.sketches.base.Sketch._bind_state`)
invalidates any plan built before it.

int32 fast path
---------------
``fused_update`` accepts any integer key dtype.  Backends that advertise
``fused_accepts_int32 = True`` (the native backend) receive ``int32`` /
``uint32`` keys unwidened and widen them register-side while streaming —
half the key memory traffic; everyone else gets the canonical ``uint64``
view the hash families use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, DomainError
from .backend import get_backend

__all__ = ["FusedEntry", "FusedPlan", "make_fused_plan", "fused_update"]

#: Entry kinds a backend may receive (see :class:`FusedEntry.kind`).
FUSED_KINDS = ("agms", "fagms", "countmin")


@dataclass
class FusedEntry:
    """One sketch's share of a fused update, as live array references.

    ``kind`` fixes the accumulation shape:

    * ``"agms"`` — ``counters`` is the ``(rows,)`` vector; the update adds
      the per-row sum of ±1 signs (×weights).  ``sign_coefficients`` is
      the ``(rows, 4)`` fourwise matrix when ``sign_kind == "poly"``;
      EH3 families ship ``sign_family`` instead and evaluate through
      their vectorized numpy path.
    * ``"fagms"`` — ``counters`` is ``(rows, buckets)``;
      ``bucket_coefficients`` is the ``(rows, 2)`` pairwise matrix and
      the signed scatter uses the same sign machinery as ``"agms"``.
    * ``"countmin"`` — like ``"fagms"`` without signs.
    """

    kind: str
    counters: np.ndarray
    rows: int
    buckets: int = 0
    bucket_coefficients: Optional[np.ndarray] = None
    sign_kind: Optional[str] = None
    sign_coefficients: Optional[np.ndarray] = None
    sign_family: object = None
    scratch: Optional[np.ndarray] = None
    #: Upper bound (exclusive) the keys must respect for this entry's
    #: hash families; the plan validates against the tightest one.
    key_bound: int = 2**31 - 1

    def signs_matrix(self, backend, keys: np.ndarray) -> np.ndarray:
        """The ``(rows, n)`` ±1 matrix, via the same path ``update()`` uses."""
        if self.sign_kind == "poly":
            return backend.parity_signs(self.sign_coefficients, keys)
        return self.sign_family.evaluate_all(keys)

    def replay(self, backend, keys: np.ndarray, weights) -> None:
        """Apply this entry with the separate-path primitives (bit-exact)."""
        if self.kind == "agms":
            signs = self.signs_matrix(backend, keys)
            if weights is None:
                self.counters += backend.sign_sum(signs)
            else:
                self.counters += backend.sign_dot(signs, weights, out=self.scratch)
            return
        indices = backend.bucket_indices(
            self.bucket_coefficients, keys, self.buckets
        )
        if self.kind == "fagms":
            signs = self.signs_matrix(backend, keys)
            backend.signed_scatter_add(self.counters, indices, signs, weights)
        else:
            backend.scatter_add(self.counters, indices, weights)


@dataclass
class FusedPlan:
    """An ordered batch of :class:`FusedEntry` sharing one key stream."""

    entries: tuple = field(default_factory=tuple)

    @property
    def key_bound(self) -> int:
        """Tightest key-domain bound across all entries."""
        return min((entry.key_bound for entry in self.entries), default=2**31 - 1)

    def __len__(self) -> int:
        return len(self.entries)


def make_fused_plan(sketches: Sequence) -> FusedPlan:
    """Build a reusable :class:`FusedPlan` from live sketches.

    Every sketch must implement ``_fused_descriptor()`` (the three
    concrete sketch classes do).  The entries keep the order of
    *sketches* — backends apply them in that order, so a fused call is
    equivalent to updating the sketches sequentially.
    """
    if not sketches:
        raise ConfigurationError("make_fused_plan needs at least one sketch")
    entries = []
    for sketch in sketches:
        descriptor = getattr(sketch, "_fused_descriptor", None)
        if descriptor is None:
            raise ConfigurationError(
                f"{type(sketch).__name__} does not support fused updates"
            )
        entry = descriptor()
        if entry.kind not in FUSED_KINDS:
            raise ConfigurationError(
                f"unknown fused entry kind {entry.kind!r}; "
                f"expected one of {FUSED_KINDS}"
            )
        entries.append(entry)
    return FusedPlan(entries=tuple(entries))


def _prepare_keys(keys, bound: int, backend) -> np.ndarray:
    """Validate once, then widen — or keep int32 for capable backends."""
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise DomainError(f"keys must be 1-D, got shape {keys.shape}")
    if keys.size == 0:
        # Hash-key API dtype, not an accumulator.
        return keys.astype(np.uint64)  # repro: noqa(REP002)
    if not np.issubdtype(keys.dtype, np.integer):
        raise DomainError("sketch keys must be integers")
    lo = int(keys.min())
    hi = int(keys.max())
    if lo < 0 or hi >= bound:
        raise DomainError(
            f"fused-update keys must lie in [0, {bound}), saw range [{lo}, {hi}]"
        )
    if keys.dtype in (np.int32, np.uint32) and getattr(
        backend, "fused_accepts_int32", False
    ):
        return np.ascontiguousarray(keys)
    if keys.dtype == np.uint64:
        return np.ascontiguousarray(keys)
    if keys.dtype == np.int64:
        return np.ascontiguousarray(keys).view(np.uint64)
    # Hash-key API dtype, not an accumulator.
    return keys.astype(np.uint64)  # repro: noqa(REP002)


def _prepare_weights(weights, n: int) -> Optional[np.ndarray]:
    if weights is None:
        return None
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    if weights.shape != (n,):
        raise DomainError(
            f"weights shape {weights.shape} does not match keys ({n},)"
        )
    return weights


def fused_update(target, keys, weights=None) -> None:
    """Update several sketches with one pass over *keys*.

    *target* is a :class:`FusedPlan` (reused across chunks) or a sequence
    of sketches (a plan is built on the fly).  Semantically — and
    bit-for-bit — equivalent to calling ``sketch.update(keys, weights)``
    on each sketch in order, on every backend.
    """
    plan = target if isinstance(target, FusedPlan) else make_fused_plan(target)
    if not plan.entries:
        return
    backend = get_backend()
    prepared = _prepare_keys(keys, plan.key_bound, backend)
    if prepared.size == 0:
        return
    backend.fused_update(plan, prepared, _prepare_weights(weights, prepared.size))
