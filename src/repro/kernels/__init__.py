"""Vectorized compute kernels behind every sketch update path.

Sketch updates decompose into two stages: *hashing* (map a batch of keys
to bucket indices and ±1 signs, one row per basic estimator) and
*accumulation* (scatter the signed deltas into the counter matrix).
Both stages route through the backend seam in this subpackage: the
polynomial hash families dispatch their row-batched evaluation via
``polynomial_mod_p`` / ``bucket_indices`` / ``parity_signs``, and the
sketches dispatch accumulation via ``scatter_add`` /
``signed_scatter_add`` / ``gather`` and the AGMS sign reductions.

Three backends register themselves at import time:

* :mod:`~repro.kernels.numpy_backend` — the default.  Hashing runs a
  lazily-reduced Horner pass over the whole ``(rows, n)`` matrix with
  no 64-bit divisions; scatter-adds are fused into a single
  :func:`numpy.bincount` over flattened ``row · buckets + bucket``
  indices, so a whole batch is accumulated in one C pass instead of
  ``rows`` Python-level ``np.add.at`` calls.  Unweighted ±1 updates
  avoid float weights entirely by counting into sign-split slots
  (exact integer arithmetic).
* :mod:`~repro.kernels.native` — a small C library compiled on demand
  with the system compiler; fuses each hashing primitive into a single
  loop that touches every key once.  Falls back cleanly (stays
  registered, raises on activation) when no compiler is available.
* :mod:`~repro.kernels.reference` — the legacy per-row ``np.add.at``
  and exact-``%`` hashing path, kept as the behavioural baseline the
  equivalence tests and the perf-smoke benchmark compare against.

Backends are selected with :func:`set_backend` / :func:`use_backend`, or
the ``REPRO_KERNEL_BACKEND`` environment variable; further backends
register themselves with :func:`register_backend` and slot in without
touching any sketch or hashing code.

On top of the per-sketch primitives the seam carries a *fused
multi-sketch* entry point (:mod:`~repro.kernels.fused`): one pass over a
key chunk updates several sketches at once, sharing key validation and
letting each backend batch the hash evaluations — see
:func:`fused_update` / :func:`make_fused_plan`.

Every backend must leave counters **bit-identical** to the reference
path for integer-valued deltas (the unweighted and frequency-vector
workloads): hash values are canonical residues mod ``2³¹ − 1`` in every
backend, and per-bucket partial sums are accumulated in stream order, so
the only freedom — adding a per-call partial sum to the counter instead
of accumulating element by element — is exact whenever those sums are
exactly representable.  ``tests/test_kernels.py`` enforces this with
``np.array_equal`` across all sketches and sign families.
"""

from .backend import (
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backends,
    backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .fused import FusedEntry, FusedPlan, fused_update, make_fused_plan
from .native import (
    NativeKernelBackend,
    native_available,
    native_openmp,
    native_threads,
    set_native_threads,
)
from .numpy_backend import NumpyKernelBackend
from .reference import ReferenceKernelBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "FusedEntry",
    "FusedPlan",
    "KernelBackend",
    "NativeKernelBackend",
    "NumpyKernelBackend",
    "ReferenceKernelBackend",
    "available_backends",
    "backend_name",
    "fused_update",
    "get_backend",
    "make_fused_plan",
    "native_available",
    "native_openmp",
    "native_threads",
    "register_backend",
    "set_backend",
    "set_native_threads",
    "use_backend",
]
