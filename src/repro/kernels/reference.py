"""The reference kernel backend: per-row ``np.add.at`` accumulation.

This is the accumulation path the sketches used before the kernel layer
existed, preserved verbatim behind the backend seam.  It exists for two
reasons:

* **equivalence** — ``tests/test_kernels.py`` drives identical updates
  through both backends and asserts the counter matrices are exactly
  equal, which pins the fused backend to the legacy semantics;
* **benchmarking** — ``benchmarks/test_kernel_throughput.py`` reports
  the fused backend's throughput relative to this one, and the CI perf
  smoke fails if the fused path ever regresses below it.

Activate with ``set_backend("reference")`` or
``REPRO_KERNEL_BACKEND=reference``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .backend import KernelBackend, register_backend

__all__ = ["ReferenceKernelBackend"]


class ReferenceKernelBackend(KernelBackend):
    """Legacy per-row ``np.add.at`` accumulation (behavioural baseline)."""

    name = "reference"

    def scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Row-by-row ``np.add.at``, exactly as the pre-kernel sketches did."""
        n = indices.shape[1]
        if n == 0:
            return
        for row in range(counters.shape[0]):
            deltas = np.ones(n) if weights is None else weights
            np.add.at(counters[row], indices[row], deltas)

    def signed_scatter_add(
        self,
        counters: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Row-by-row sign conversion and ``np.add.at``."""
        if indices.shape[1] == 0:
            return
        for row in range(counters.shape[0]):
            row_signs = signs[row].astype(np.float64)
            deltas = row_signs if weights is None else row_signs * weights
            np.add.at(counters[row], indices[row], deltas)

    def gather(self, counters: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Row-by-row fancy indexing."""
        out = np.empty(indices.shape, dtype=np.float64)
        for row in range(counters.shape[0]):
            out[row] = counters[row, indices[row]]
        return out

    def sign_sum(self, signs: np.ndarray) -> np.ndarray:
        """Row sums of the ±1 matrix with an explicit float64 accumulator."""
        return signs.sum(axis=1, dtype=np.float64)

    def sign_dot(
        self,
        signs: np.ndarray,
        weights: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The legacy ``signs.astype(float64) @ weights`` expression."""
        result = signs.astype(np.float64) @ weights
        if out is None:
            return result
        out[...] = result
        return out

    def polynomial_mod_p(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Per-row exact-reduction Horner, as the pre-kernel families ran it."""
        from ..hashing.families import _poly_rows_reference

        return _poly_rows_reference(coefficients, keys)

    def bucket_indices(
        self, coefficients: np.ndarray, keys: np.ndarray, buckets: int
    ) -> np.ndarray:
        """Per-row hash followed by the legacy unsigned ``mod buckets``."""
        values = self.polynomial_mod_p(coefficients, keys)
        return (values % np.uint64(buckets)).astype(np.int64)

    def parity_signs(
        self, coefficients: np.ndarray, keys: np.ndarray
    ) -> np.ndarray:
        """Per-row hash followed by the parity map."""
        from ..hashing.signs import _parity_signs

        return _parity_signs(self.polynomial_mod_p(coefficients, keys))


register_backend(ReferenceKernelBackend())
