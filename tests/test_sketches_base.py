"""Shared Sketch-interface behaviors across all sketch types."""

import numpy as np
import pytest

from repro.errors import DomainError, IncompatibleSketchError
from repro.frequency import FrequencyVector
from repro.sketches import (
    AgmsSketch,
    CountMinSketch,
    FagmsSketch,
    join_size,
    self_join_size,
)

FACTORIES = [
    lambda seed: AgmsSketch(rows=5, seed=seed),
    lambda seed: FagmsSketch(buckets=16, rows=2, seed=seed),
    lambda seed: CountMinSketch(buckets=16, rows=2, seed=seed),
]

IDS = ["agms", "fagms", "countmin"]


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
class TestSharedBehavior:
    def test_update_one_equals_batch(self, factory):
        a = factory(1)
        b = a.copy_empty()
        a.update_one(3)
        a.update_one(3, weight=2.0)
        b.update(np.array([3, 3]), np.array([1.0, 2.0]))
        assert np.allclose(a._state(), b._state())

    def test_update_rejects_bad_inputs(self, factory):
        sketch = factory(1)
        with pytest.raises(DomainError):
            sketch.update(np.ones((2, 2), dtype=np.int64))
        with pytest.raises(DomainError):
            sketch.update(np.array([1.5]))
        with pytest.raises(DomainError):
            sketch.update(np.array([1, 2]), np.array([1.0]))

    def test_clear(self, factory):
        sketch = factory(1)
        sketch.update(np.array([1, 2, 3]))
        sketch.clear()
        assert np.allclose(sketch._state(), 0.0)

    def test_copy_is_independent(self, factory):
        sketch = factory(1)
        sketch.update(np.array([1, 2]))
        clone = sketch.copy()
        clone.update(np.array([3]))
        assert not np.allclose(sketch._state(), clone._state())
        assert sketch.seed_id == clone.seed_id

    def test_update_frequency_vector_empty(self, factory):
        sketch = factory(1)
        sketch.update_frequency_vector(FrequencyVector.zeros(8))
        assert np.allclose(sketch._state(), 0.0)

    def test_merge_after_clear_is_identity(self, factory):
        a = factory(2)
        b = a.copy_empty()
        a.update(np.array([5, 6, 7]))
        before = a._state().copy()
        a.merge(b)  # merging an empty sketch changes nothing
        assert np.allclose(a._state(), before)

    def test_seed_entropy_recorded(self, factory):
        sketch = factory(77)
        assert sketch.seed_entropy == 77
        assert sketch.seed_spawn_key == ()

    def test_repr_mentions_class(self, factory):
        sketch = factory(1)
        assert type(sketch).__name__ in repr(sketch)


def test_free_function_wrappers():
    fv = FrequencyVector([3, 1, 0, 2])
    a = AgmsSketch(rows=500, seed=9)
    b = a.copy_empty()
    a.update_frequency_vector(fv)
    b.update_frequency_vector(fv)
    assert join_size(a, b) == pytest.approx(a.inner_product(b))
    assert self_join_size(a) == pytest.approx(a.second_moment())


def test_cross_type_merge_rejected():
    agms = AgmsSketch(rows=2, seed=1)
    fagms = FagmsSketch(buckets=2, rows=1, seed=1)
    with pytest.raises(IncompatibleSketchError):
        agms.merge(fagms)
