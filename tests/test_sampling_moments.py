"""Factorial-moment machinery vs. brute-force enumeration.

These tests are the backbone of the reproduction's correctness: they verify
the product-form factorial-moment identity (module docstring of
``repro.sampling.moments``) against *exact enumeration* of the three
sampling distributions on tiny inputs.
"""

from fractions import Fraction
from itertools import product
from math import comb, factorial

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.frequency import FrequencyVector
from repro.sampling.moments import (
    BernoulliMoments,
    WithReplacementMoments,
    WithoutReplacementMoments,
    falling_factorial,
    falling_factorial_array,
    power_array,
)

COUNTS = np.array([2, 1, 3])
FV = FrequencyVector(COUNTS)


# ----------------------------------------------------------------------
# Exact enumerations of the three sampling distributions
# ----------------------------------------------------------------------


def enumerate_bernoulli(counts, p):
    """All sample-frequency outcomes with exact probabilities."""
    for combo in product(*[range(c + 1) for c in counts]):
        probability = Fraction(1)
        for total, kept in zip(counts, combo):
            probability *= comb(total, kept) * p**kept * (1 - p) ** (total - kept)
        yield np.array(combo), probability


def enumerate_multinomial(counts, m):
    """All WR sample-frequency outcomes for sample size m."""
    total = int(sum(counts))
    for combo in product(*[range(m + 1) for _ in counts]):
        if sum(combo) != m:
            continue
        probability = Fraction(factorial(m))
        for count, kept in zip(counts, combo):
            probability *= Fraction(count, total) ** kept / factorial(kept)
        yield np.array(combo), probability


def enumerate_hypergeometric(counts, m):
    """All WOR sample-frequency outcomes for sample size m."""
    total = int(sum(counts))
    denominator = comb(total, m)
    for combo in product(*[range(min(c, m) + 1) for c in counts]):
        if sum(combo) != m:
            continue
        numerator = 1
        for count, kept in zip(counts, combo):
            numerator *= comb(count, kept)
        yield np.array(combo), Fraction(numerator, denominator)


def expectation(states, fn):
    return sum(probability * fn(sample) for sample, probability in states)


MODELS_AND_ENUMERATIONS = [
    (
        BernoulliMoments(Fraction(1, 3)),
        list(enumerate_bernoulli(COUNTS, Fraction(1, 3))),
    ),
    (
        WithReplacementMoments(4, int(COUNTS.sum())),
        list(enumerate_multinomial(COUNTS, 4)),
    ),
    (
        WithoutReplacementMoments(4, int(COUNTS.sum())),
        list(enumerate_hypergeometric(COUNTS, 4)),
    ),
]


@pytest.mark.parametrize("model,states", MODELS_AND_ENUMERATIONS)
class TestAgainstEnumeration:
    def test_probabilities_sum_to_one(self, model, states):
        assert sum(probability for _, probability in states) == 1

    def test_raw_moments(self, model, states):
        for order in (1, 2, 3, 4):
            truth = expectation(
                states, lambda s, r=order: sum(int(x) ** r for x in s)
            )
            computed = model.sum_raw_moment(COUNTS, order, exact=True)
            assert computed == truth, f"order {order}"

    def test_marginal_factorial_moments(self, model, states):
        for order in (1, 2, 3, 4):
            for index in range(COUNTS.size):
                truth = expectation(
                    states,
                    lambda s, i=index, k=order: falling_factorial(int(s[i]), k),
                )
                u = model.u_array(COUNTS, order, exact=True)[index]
                assert model.kappa(order) * u == truth, (order, index)

    def test_joint_factorial_moments_product_form(self, model, states):
        """E[(f'_i)_(a) (f'_j)_(b)] = κ_{a+b} u_a(f_i) u_b(f_j) for i≠j."""
        for a in (1, 2):
            for b in (1, 2):
                for i in range(COUNTS.size):
                    for j in range(COUNTS.size):
                        if i == j:
                            continue
                        truth = expectation(
                            states,
                            lambda s, i=i, j=j, a=a, b=b: falling_factorial(
                                int(s[i]), a
                            )
                            * falling_factorial(int(s[j]), b),
                        )
                        ua = model.u_array(COUNTS, a, exact=True)[i]
                        ub = model.u_array(COUNTS, b, exact=True)[j]
                        assert model.kappa(a + b) * ua * ub == truth

    def test_offdiag_joint_sums(self, model, states):
        for a, b in ((1, 1), (2, 1), (2, 2)):
            truth = expectation(
                states,
                lambda s, a=a, b=b: sum(
                    int(s[i]) ** a * int(s[j]) ** b
                    for i in range(s.size)
                    for j in range(s.size)
                    if i != j
                ),
            )
            assert model.offdiag_joint_sum(COUNTS, a, b, exact=True) == truth


# ----------------------------------------------------------------------
# Utility functions
# ----------------------------------------------------------------------


class TestUtilities:
    def test_falling_factorial_values(self):
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(5, 1) == 5
        assert falling_factorial(5, 3) == 60
        assert falling_factorial(2, 3) == 0  # vanishes past x
        with pytest.raises(ConfigurationError):
            falling_factorial(5, -1)

    def test_falling_factorial_array_both_modes(self):
        counts = np.array([0, 1, 4])
        exact = falling_factorial_array(counts, 2, exact=True)
        assert exact.tolist() == [0, 0, 12]
        floats = falling_factorial_array(counts, 2, exact=False)
        assert floats.tolist() == [0.0, 0.0, 12.0]

    def test_power_array_both_modes(self):
        counts = np.array([0, 2, 3])
        assert power_array(counts, 3, exact=True).tolist() == [0, 8, 27]
        assert power_array(counts, 0, exact=False).tolist() == [1.0, 1.0, 1.0]

    def test_float_mode_matches_exact_mode(self):
        model = WithoutReplacementMoments(4, int(COUNTS.sum()))
        for order in (1, 2, 3, 4):
            exact = float(model.sum_raw_moment(COUNTS, order, exact=True))
            floats = model.sum_raw_moment(COUNTS, order, exact=False)
            assert floats == pytest.approx(exact, rel=1e-12)
        for a, b in ((1, 1), (2, 2)):
            exact = float(model.offdiag_joint_sum(COUNTS, a, b, exact=True))
            floats = model.offdiag_joint_sum(COUNTS, a, b, exact=False)
            assert floats == pytest.approx(exact, rel=1e-12)


class TestParameterValidation:
    def test_bernoulli_bounds(self):
        with pytest.raises(ConfigurationError):
            BernoulliMoments(0)
        with pytest.raises(ConfigurationError):
            BernoulliMoments(Fraction(3, 2))

    def test_fixed_size_bounds(self):
        with pytest.raises(ConfigurationError):
            WithReplacementMoments(0, 10)
        with pytest.raises(ConfigurationError):
            WithReplacementMoments(5, 0)
        with pytest.raises(ConfigurationError):
            WithoutReplacementMoments(11, 10)

    def test_raw_moment_order_bounds(self):
        model = BernoulliMoments(Fraction(1, 2))
        with pytest.raises(ConfigurationError):
            model.raw_moment_array(COUNTS, 5)
        with pytest.raises(ConfigurationError):
            model.raw_moment_array(COUNTS, 0)

    def test_expectation_scale(self):
        assert BernoulliMoments(Fraction(1, 4)).expectation_scale(
            exact=True
        ) == Fraction(1, 4)
        assert WithReplacementMoments(5, 20).expectation_scale(
            exact=True
        ) == Fraction(1, 4)
        assert WithoutReplacementMoments(5, 20).expectation_scale(
            exact=True
        ) == Fraction(1, 4)

    def test_wor_kappa_zero_when_population_too_small(self):
        model = WithoutReplacementMoments(2, 2)
        assert model.kappa(3) == 0

    def test_fv_matches_counts_api(self):
        """Moment models accept the raw counts of a FrequencyVector."""
        model = BernoulliMoments(Fraction(1, 2))
        direct = model.sum_raw_moment(FV.counts, 2, exact=True)
        assert direct == model.sum_raw_moment(COUNTS, 2, exact=True)
