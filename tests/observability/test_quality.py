"""Quality monitoring: variance-bound breaches and shedding gauges."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.observability import Observer, QualityMonitor, observe_shedding


class TestQualityMonitor:
    def test_within_bound_observations_do_not_breach(self, observer):
        monitor = QualityMonitor(observer)
        breach = monitor.record("self_join", estimate=10.0, truth=9.0,
                                variance_bound=1.0)
        assert breach is None
        assert monitor.breaches == []
        snapshot = observer.metrics.snapshot()
        assert snapshot.counter_value("quality.observations",
                                      metric="self_join") == 1
        assert snapshot.counter_value("quality.breaches",
                                      metric="self_join") == 0
        assert snapshot.gauge_value("quality.squared_error",
                                    metric="self_join") == 1.0
        assert snapshot.gauge_value("quality.error_ratio",
                                    metric="self_join") == 1.0

    def test_exceeding_slack_times_bound_breaches(self, observer):
        monitor = QualityMonitor(observer, slack=9.0)
        breach = monitor.record("join", estimate=10.0, truth=0.0,
                                variance_bound=1.0)
        assert breach is not None
        assert breach.squared_error == 100.0
        assert breach.ratio == 100.0
        assert monitor.breaches == [breach]
        assert observer.metrics.snapshot().counter_value(
            "quality.breaches", metric="join"
        ) == 1

    def test_zero_variance_bound_breaches_on_any_error(self, observer):
        monitor = QualityMonitor(observer)
        breach = monitor.record("join", estimate=1.0, truth=0.0,
                                variance_bound=0.0)
        assert breach is not None
        assert breach.ratio == float("inf")

    def test_breach_rate_tracks_the_chebyshev_budget(self, observer):
        monitor = QualityMonitor(observer, slack=9.0)
        for estimate in (1.0, 1.0, 1.0, 100.0):
            monitor.record("join", estimate=estimate, truth=1.0,
                           variance_bound=1.0)
        assert monitor.breach_rate("join") == 0.25
        assert monitor.breach_rate("never.seen") == 0.0

    def test_invalid_parameters_raise(self, observer):
        with pytest.raises(ConfigurationError):
            QualityMonitor(observer, slack=0.0)
        with pytest.raises(ConfigurationError):
            QualityMonitor(observer).record("join", 1.0, 1.0,
                                            variance_bound=-1.0)


class _FakeSketcher:
    rate = 0.5
    seen = 100
    kept = 40


class _FakeGovernor:
    cost_estimate = 2e-6
    budget_per_tuple = 4e-6


class TestObserveShedding:
    def test_gauges_reflect_the_sketcher_ledger(self, observer):
        observe_shedding(observer, _FakeSketcher())
        snapshot = observer.metrics.snapshot()
        assert snapshot.gauge_value("resilience.shed.rate") == 0.5
        assert snapshot.gauge_value("resilience.shed.drop_fraction") == 0.6

    def test_governor_duty_cycle_is_cost_over_budget(self, observer):
        observe_shedding(
            observer,
            _FakeSketcher(),
            _FakeGovernor(),
            arrived=1000,
            elapsed=2e-3,  # 2 µs per arrived tuple against a 4 µs budget
        )
        snapshot = observer.metrics.snapshot()
        assert snapshot.gauge_value(
            "resilience.governor.cost_per_kept_tuple"
        ) == 2e-6
        assert snapshot.gauge_value(
            "resilience.governor.duty_cycle"
        ) == pytest.approx(0.5)
