"""Metrics core: instruments, name validation, snapshot/merge, null path."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.observability import (
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    validate_metric_name,
)


class TestNameValidation:
    def test_lowercase_dotted_names_pass(self):
        for name in ("runtime.tuples.seen", "a.b", "engine.rows2.x_y"):
            assert validate_metric_name(name) == name

    @pytest.mark.parametrize(
        "bad",
        ["rows", "Engine.rows", "engine.Rows", "engine..rows", ".rows",
         "engine.rows.", "engine rows", "engine.2rows", "", 7],
    )
    def test_malformed_names_raise(self, bad):
        with pytest.raises(ConfigurationError):
            validate_metric_name(bad)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("runtime.tuples.seen")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_keeps_the_last_value(self):
        gauge = MetricsRegistry().gauge("resilience.shed.rate")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("runtime.chunk.seconds", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 0, 1, 1]  # <=1, <=2, <=4, +inf
        assert hist.count == 4
        assert hist.total == 104.5

    def test_histogram_bounds_must_strictly_increase(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("a.b", (1.0, 1.0))
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("a.c", ())

    def test_same_name_and_labels_return_the_cached_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("engine.rows.consumed", relation="lineitem")
        again = registry.counter("engine.rows.consumed", relation="lineitem")
        other = registry.counter("engine.rows.consumed", relation="orders")
        assert first is again
        assert first is not other

    def test_instrument_kinds_are_exclusive_per_name(self):
        registry = MetricsRegistry()
        registry.counter("engine.rows.consumed")
        with pytest.raises(ConfigurationError):
            registry.gauge("engine.rows.consumed")

    def test_histogram_reregistration_with_other_bounds_raises(self):
        registry = MetricsRegistry()
        registry.histogram("runtime.chunk.seconds", (1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("runtime.chunk.seconds", (1.0, 3.0))


class TestSnapshotAndMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("runtime.tuples.seen").inc(10)
        registry.gauge("resilience.shed.rate").set(0.5)
        registry.histogram("runtime.chunk.seconds", (1.0, 2.0)).observe(1.5)
        return registry

    def test_snapshot_is_plain_picklable_data(self):
        snapshot = self._populated().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.counter_value("runtime.tuples.seen") == 10
        assert clone.gauge_value("resilience.shed.rate") == 0.5
        assert clone.gauge_value("resilience.never.set") is None

    def test_merge_adds_counters_and_histograms(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        merged = a.merge(b)
        assert merged.counter_value("runtime.tuples.seen") == 20
        key = ("runtime.chunk.seconds", ())
        assert merged.histograms[key]["counts"] == [0, 2, 0]
        assert merged.histograms[key]["count"] == 2
        # The operands are untouched.
        assert a.counter_value("runtime.tuples.seen") == 10

    def test_merge_gauges_are_last_writer_wins(self):
        a = MetricsRegistry()
        a.gauge("resilience.shed.rate").set(0.5)
        b = MetricsRegistry()
        b.gauge("resilience.shed.rate").set(0.125)
        assert a.snapshot().merge(b.snapshot()).gauge_value(
            "resilience.shed.rate"
        ) == 0.125

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = MetricsRegistry()
        a.histogram("runtime.chunk.seconds", (1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("runtime.chunk.seconds", (1.0, 4.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.snapshot().merge(b.snapshot())

    def test_absorb_folds_a_snapshot_into_live_instruments(self):
        registry = self._populated()
        registry.absorb(self._populated().snapshot())
        snapshot = registry.snapshot()
        assert snapshot.counter_value("runtime.tuples.seen") == 20
        key = ("runtime.chunk.seconds", ())
        assert snapshot.histograms[key]["count"] == 2

    def test_fixed_order_merge_is_deterministic(self):
        shards = []
        for amount in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("runtime.tuples.seen").inc(amount)
            shards.append(registry.snapshot())
        merged = MetricsSnapshot()
        for snapshot in shards:
            merged = merged.merge(snapshot)
        assert merged.counter_value("runtime.tuples.seen") == 6


class TestNullRegistry:
    def test_null_registry_is_disabled_and_shares_instruments(self):
        null = NullRegistry()
        assert null.enabled is False
        assert null.counter("a.b") is null.counter("c.d")
        assert null.gauge("a.b") is null.gauge("c.d")
        assert null.histogram("a.b") is null.histogram("c.d")

    def test_null_instruments_discard_everything(self):
        null = NullRegistry()
        null.counter("a.b").inc(5)
        null.gauge("a.b").set(1.0)
        null.histogram("c.d").observe(0.5)
        snapshot = null.snapshot()
        assert snapshot.counters == {}
        assert snapshot.gauges == {}
        assert snapshot.histograms == {}
