"""Cross-process aggregation: sharded observations merge deterministically.

The headline acceptance criteria for the observability layer:

* a sharded ``run_sharded_sketch`` with an observer yields **one** merged
  Chrome trace containing spans from the coordinator *and* every worker
  process, nested under the coordinator's root span;
* the merged Prometheus dump's counting metrics (tuples seen/sketched)
  exactly match a sequential run over the same stream — for every sketch
  type and kernel backend, and independent of the pool width.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import available_backends, use_backend
from repro.observability import Observer, to_chrome_trace, to_prometheus
from repro.parallel import run_sharded_sketch
from repro.resilience.runtime import StreamRuntime, envelope_stream
from repro.sketches.agms import AgmsSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.fagms import FagmsSketch
from repro.streams.base import iter_chunks

#: The counting metrics that are invariant to how the stream is chunked
#: and sharded (chunk/span counts legitimately differ).
COUNTING_METRICS = ("runtime.tuples.seen", "runtime.tuples.sketched")


def _usable_backends() -> list:
    usable = []
    for name in available_backends():
        try:
            with use_backend(name):
                pass
        except Exception:
            continue
        usable.append(name)
    return usable


def _templates() -> list:
    return [
        FagmsSketch(64, rows=3, seed=17),
        AgmsSketch(16, seed=17),
        CountMinSketch(64, rows=3, seed=17),
    ]


@pytest.fixture(scope="module")
def keys() -> np.ndarray:
    return np.random.default_rng(23).integers(0, 2000, 30_000)


def _sequential_observations(template, keys) -> Observer:
    obs = Observer()
    runtime = StreamRuntime(template.copy_empty(), observer=obs)
    runtime.run(envelope_stream(iter_chunks(np.asarray(keys, np.int64), 4096)))
    return obs


@pytest.mark.parametrize("backend", _usable_backends())
@pytest.mark.parametrize(
    "template", _templates(), ids=lambda t: type(t).__name__
)
def test_sharded_counters_match_sequential(keys, template, backend):
    with use_backend(backend):
        sequential = _sequential_observations(template, keys).metrics.snapshot()
        obs = Observer()
        run_sharded_sketch(keys, template, shards=4, observer=obs)
        merged = obs.metrics.snapshot()
        for metric in COUNTING_METRICS:
            assert merged.counter_value(metric) == sequential.counter_value(
                metric
            ), metric
        assert merged.counter_value("runtime.tuples.seen") == keys.size


def test_process_pool_and_inline_agree(keys, process_pool):
    """Work counters agree; only the shm transport metrics may differ.

    A process-pool run ships shards through shared-memory segments and
    meters them (``parallel.shm.*``); an inline run has nothing to
    transport, so those counters are absent there by design.
    """
    template = FagmsSketch(64, rows=3, seed=17)
    inline_obs = Observer()
    run_sharded_sketch(keys, template, shards=4, observer=inline_obs)
    pooled_obs = Observer()
    run_sharded_sketch(
        keys, template, shards=4, pool=process_pool, observer=pooled_obs
    )
    inline = inline_obs.metrics.snapshot()
    pooled = pooled_obs.metrics.snapshot()

    def work_counters(snapshot):
        return {
            key: value
            for key, value in snapshot.counters.items()
            if not key[0].startswith("parallel.shm.")
        }

    assert work_counters(pooled) == work_counters(inline)
    assert pooled.counter_value("parallel.shm.segments") == 2
    assert inline.counter_value("parallel.shm.segments") == 0


def test_merged_prometheus_dump_matches_sequential(keys, process_pool):
    template = FagmsSketch(64, rows=3, seed=17)
    sequential = _sequential_observations(template, keys).metrics.snapshot()
    obs = Observer()
    run_sharded_sketch(
        keys, template, shards=4, pool=process_pool, observer=obs
    )
    text = to_prometheus(obs)
    for metric in COUNTING_METRICS:
        prom = "repro_" + metric.replace(".", "_") + "_total"
        expected = int(sequential.counter_value(metric))
        assert f"{prom} {expected}" in text


def test_one_trace_with_spans_from_every_process(keys, process_pool):
    shards = 3
    template = FagmsSketch(64, rows=3, seed=17)
    obs = Observer()
    run_sharded_sketch(
        keys, template, shards=shards, pool=process_pool, observer=obs
    )
    trace = to_chrome_trace(obs)
    events = trace["traceEvents"]
    processes = {
        event["args"]["name"] for event in events if event["ph"] == "M"
    }
    assert processes == {"main", "shard-000", "shard-001", "shard-002"}

    spans = obs.tracer.export_spans()
    root = [
        span
        for span in spans
        if span["name"] == "parallel.scan" and span["process"] == "main"
    ]
    assert len(root) == 1
    root_id = root[0]["span_id"]
    shard_roots = [span for span in spans if span["name"] == "worker.shard"]
    assert len(shard_roots) == shards
    # Every worker's root span nests under the coordinator's open span.
    for span in shard_roots:
        assert span["parent_id"] is not None
    coordinator_names = {
        span["name"] for span in spans if span["process"] == "main"
    }
    assert {
        "parallel.scan",
        "parallel.partition",
        "parallel.collect",
        "parallel.merge",
    } <= coordinator_names
    worker_names = {
        span["name"] for span in spans if span["process"] != "main"
    }
    assert {"worker.shard", "runtime.chunk"} <= worker_names
    assert root_id >= 1


def test_sharded_sketch_without_observer_ships_no_observations(keys):
    template = FagmsSketch(64, rows=3, seed=17)
    result = run_sharded_sketch(keys, template, shards=2)
    for shard in result.shard_results:
        assert shard.metrics is None
        assert shard.spans == ()
