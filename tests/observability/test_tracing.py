"""Tracing: deterministic ids, nesting, propagation, export/absorb."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.observability import NullTracer, SpanContext, Tracer


class TestSpans:
    def test_span_records_clock_readings(self, tick_clock):
        tracer = Tracer(tick_clock)
        with tracer.span("scan.chunk", relation="lineitem"):
            pass
        (record,) = tracer.finished
        assert record.name == "scan.chunk"
        assert (record.start, record.end) == (1.0, 2.0)
        assert record.duration == 1.0
        assert record.args == {"relation": "lineitem"}
        assert record.process == "main"

    def test_span_ids_are_sequential_and_nested_parents_link(self, tick_clock):
        tracer = Tracer(tick_clock)
        with tracer.span("scan.fraction"):
            with tracer.span("scan.chunk"):
                pass
            with tracer.span("scan.checkpoint.write"):
                pass
        by_name = {record.name: record for record in tracer.finished}
        outer = by_name["scan.fraction"]
        assert outer.span_id == 1
        assert outer.parent_id is None
        assert by_name["scan.chunk"].span_id == 2
        assert by_name["scan.chunk"].parent_id == outer.span_id
        assert by_name["scan.checkpoint.write"].span_id == 3
        assert by_name["scan.checkpoint.write"].parent_id == outer.span_id

    def test_annotate_attaches_args_before_close(self, tick_clock):
        tracer = Tracer(tick_clock)
        with tracer.span("runtime.checkpoint.restore") as span:
            span.annotate(position=7)
        assert tracer.finished[0].args == {"position": 7}

    def test_span_closes_on_exception(self, tick_clock):
        tracer = Tracer(tick_clock)
        with pytest.raises(RuntimeError):
            with tracer.span("runtime.chunk"):
                raise RuntimeError("boom")
        assert len(tracer.finished) == 1
        assert tracer._stack == []

    def test_invalid_span_name_raises(self, tick_clock):
        with pytest.raises(ConfigurationError):
            Tracer(tick_clock).span("NotValid")


class TestPropagation:
    def test_current_context_requires_an_open_span(self, tick_clock):
        tracer = Tracer(tick_clock)
        with pytest.raises(ConfigurationError):
            tracer.current_context()
        with tracer.span("parallel.scan"):
            context = tracer.current_context()
        assert context == SpanContext(trace_id=0, span_id=1, process="main")

    def test_worker_tracer_nests_under_the_shipped_context(self, tick_clock):
        coordinator = Tracer(tick_clock)
        with coordinator.span("parallel.scan"):
            context = coordinator.current_context()
        worker = Tracer(tick_clock, process="shard-000", parent=context)
        with worker.span("worker.shard"):
            pass
        (record,) = worker.finished
        assert record.parent_id == context.span_id
        assert record.process == "shard-000"

    def test_parent_from_another_trace_is_rejected(self, tick_clock):
        foreign = SpanContext(trace_id=9, span_id=1)
        with pytest.raises(ConfigurationError):
            Tracer(tick_clock, parent=foreign, trace_id=0)

    def test_export_absorb_round_trip_preserves_records(self, tick_clock):
        worker = Tracer(tick_clock, process="shard-001")
        with worker.span("worker.shard", index=1):
            pass
        coordinator = Tracer(tick_clock)
        coordinator.absorb(worker.export_spans())
        (record,) = coordinator.finished
        assert record.name == "worker.shard"
        assert record.process == "shard-001"
        assert record.args == {"index": 1}

    def test_relabel_rewrites_finished_process_labels(self, tick_clock):
        tracer = Tracer(tick_clock)
        with tracer.span("worker.shard"):
            pass
        tracer.relabel("shard-004")
        assert tracer.finished[0].process == "shard-004"


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        null = NullTracer()
        assert null.enabled is False
        with null.span("scan.chunk") as span:
            span.annotate(ignored=True)
        assert null.export_spans() == []

    def test_null_tracer_hands_out_one_shared_span(self):
        null = NullTracer()
        assert null.span("a.b") is null.span("c.d")

    def test_null_tracer_context_is_fixed(self):
        context = NullTracer().current_context()
        assert (context.trace_id, context.span_id) == (0, 0)
