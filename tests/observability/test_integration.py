"""Observer wiring through engine, lockstep scan, and stream runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import OnlineStatisticsEngine, run_lockstep_scan
from repro.errors import StreamIntegrityError
from repro.observability import Observer
from repro.resilience.runtime import (
    ChunkEnvelope,
    StreamRuntime,
    envelope_stream,
    make_envelope,
)
from repro.sketches.fagms import FagmsSketch
from repro.streams.base import Relation, iter_chunks


@pytest.fixture
def relations() -> dict:
    rng = np.random.default_rng(7)
    return {
        "lineitem": Relation(rng.integers(0, 500, 4000), name="lineitem"),
        "orders": Relation(rng.integers(0, 500, 1000), name="orders"),
    }


class TestEngineObserver:
    def test_consume_updates_row_and_chunk_counters(self, observer):
        engine = OnlineStatisticsEngine(buckets=256, seed=5, observer=observer)
        engine.register("lineitem", 100)
        engine.consume("lineitem", np.arange(40))
        engine.consume("lineitem", np.arange(10))
        snapshot = observer.metrics.snapshot()
        assert snapshot.counter_value(
            "engine.rows.consumed", relation="lineitem"
        ) == 50
        assert snapshot.counter_value(
            "engine.chunks.consumed", relation="lineitem"
        ) == 2
        assert snapshot.gauge_value(
            "engine.fraction_scanned", relation="lineitem"
        ) == 0.5

    def test_snapshot_publishes_estimate_gauges(self, observer):
        engine = OnlineStatisticsEngine(buckets=256, seed=5, observer=observer)
        engine.register("lineitem", 100)
        engine.consume("lineitem", np.arange(50))
        engine.snapshot()
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("engine.snapshots") == 1
        assert metrics.gauge_value(
            "engine.self_join_estimate", relation="lineitem"
        ) is not None

    def test_default_observer_is_the_null_observer(self):
        engine = OnlineStatisticsEngine(buckets=64, seed=5)
        assert engine.observer.enabled is False


class TestScanObserver:
    def test_scan_emits_fraction_and_chunk_spans(self, observer, relations):
        engine = OnlineStatisticsEngine(buckets=256, seed=6, observer=observer)
        list(run_lockstep_scan(engine, relations, checkpoints=(0.5, 1.0)))
        names = [record.name for record in observer.tracer.finished]
        assert names.count("scan.fraction") == 2
        assert names.count("scan.chunk") == 4  # two relations per fraction
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("scan.fractions.completed") == 2

    def test_explicit_observer_overrides_the_engines(self, relations):
        engine = OnlineStatisticsEngine(buckets=256, seed=6)
        explicit = Observer()
        list(
            run_lockstep_scan(
                engine, relations, checkpoints=(1.0,), observer=explicit
            )
        )
        assert explicit.metrics.snapshot().counter_value(
            "scan.fractions.completed"
        ) == 1

    def test_checkpointed_scan_counts_writes_and_restores(
        self, observer, relations, tmp_path
    ):
        engine = OnlineStatisticsEngine(buckets=256, seed=6, observer=observer)
        scan = run_lockstep_scan(
            engine,
            relations,
            checkpoints=(0.5, 1.0),
            checkpoint_dir=tmp_path,
        )
        next(scan)  # complete the first fraction, then abandon the scan
        scan.close()
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("scan.checkpoint.writes") == 1

        resumed_obs = Observer()
        fresh = OnlineStatisticsEngine(buckets=256, seed=6, observer=resumed_obs)
        remaining = list(
            run_lockstep_scan(
                fresh,
                relations,
                checkpoints=(0.5, 1.0),
                checkpoint_dir=tmp_path,
                resume=True,
            )
        )
        assert len(remaining) == 1
        metrics = resumed_obs.metrics.snapshot()
        assert metrics.counter_value("scan.checkpoint.restores") == 1
        names = [record.name for record in resumed_obs.tracer.finished]
        assert "scan.checkpoint.restore" in names


class TestRuntimeObserver:
    def _runtime(self, observer, **kwargs) -> StreamRuntime:
        return StreamRuntime(
            FagmsSketch(128, rows=2, seed=9), observer=observer, **kwargs
        )

    def test_accepted_chunks_count_tuples_and_spans(self, observer):
        runtime = self._runtime(observer)
        keys = np.arange(1000, dtype=np.int64)
        runtime.run(envelope_stream(iter_chunks(keys, 256)))
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("runtime.chunks.accepted") == 4
        assert metrics.counter_value("runtime.tuples.seen") == 1000
        assert metrics.counter_value("runtime.tuples.sketched") == 1000
        assert metrics.gauge_value("resilience.shed.rate") == 1.0
        names = [record.name for record in observer.tracer.finished]
        assert names.count("runtime.chunk") == 4

    def test_duplicates_and_rejections_are_labeled(self, observer):
        runtime = self._runtime(observer)
        chunk = make_envelope(0, np.arange(10, dtype=np.int64))
        runtime.process(chunk)
        runtime.process(chunk)  # replay → duplicate
        with pytest.raises(StreamIntegrityError):
            runtime.process(make_envelope(5, np.arange(3, dtype=np.int64)))
        bad = ChunkEnvelope(
            sequence=1,
            keys=np.arange(4, dtype=np.int64),
            count=4,
            crc32=0xDEAD,
        )
        with pytest.raises(StreamIntegrityError):
            runtime.process(bad)
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("runtime.chunks.duplicate") == 1
        assert metrics.counter_value(
            "runtime.chunks.rejected", reason="gap"
        ) == 1
        assert metrics.counter_value(
            "runtime.chunks.rejected", reason="crc"
        ) == 1

    def test_recovery_attaches_observer_and_counts(self, observer, tmp_path):
        runtime = self._runtime(None, checkpoint_dir=tmp_path)
        keys = np.arange(2000, dtype=np.int64)
        runtime.run(envelope_stream(iter_chunks(keys, 256)))

        recovered = StreamRuntime.recover(tmp_path, observer=observer)
        assert recovered.observer is observer
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("runtime.recoveries") == 1
        names = [record.name for record in observer.tracer.finished]
        assert "runtime.checkpoint.restore" in names

        # The recovered runtime keeps feeding the same observer.
        recovered.run(envelope_stream(iter_chunks(keys, 256)))
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("runtime.chunks.duplicate") == 8

    def test_checkpoint_writes_are_counted(self, observer, tmp_path):
        runtime = self._runtime(
            observer, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        keys = np.arange(1024, dtype=np.int64)
        runtime.run(envelope_stream(iter_chunks(keys, 256)))
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("runtime.checkpoints.written") == 2
        assert runtime.checkpoints_written == 2
