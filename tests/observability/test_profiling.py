"""Kernel-seam profiling: bit-identity, metering, backend restoration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import available_backends, get_backend, use_backend
from repro.observability import Observer, ProfilingKernelBackend, profile_kernels
from repro.sketches.fagms import FagmsSketch


def _usable_backends() -> list:
    usable = []
    for name in available_backends():
        try:
            with use_backend(name):
                pass
        except Exception:
            continue
        usable.append(name)
    return usable


@pytest.fixture
def keys() -> np.ndarray:
    return np.arange(5000, dtype=np.int64)


@pytest.mark.parametrize("backend", _usable_backends())
def test_profiling_preserves_bit_identity(backend, keys):
    with use_backend(backend):
        plain = FagmsSketch(128, rows=3, seed=11)
        plain.update(keys)
        profiled = FagmsSketch(128, rows=3, seed=11)
        with profile_kernels(Observer()):
            profiled.update(keys)
        assert np.array_equal(plain._state(), profiled._state())


def test_profiling_meters_rows_and_ops(keys, tick_clock):
    obs = Observer(tick_clock)
    sketch = FagmsSketch(128, rows=3, seed=11)
    with profile_kernels(obs):
        sketch.update(keys)
    snapshot = obs.metrics.snapshot()
    backend = get_backend().name
    accumulate = snapshot.counter_value(
        "kernels.rows", op="signed_scatter_add", backend=backend
    )
    assert accumulate == keys.size * 3  # one row batch of 3 sketch rows
    ops = snapshot.counter_value(
        "kernels.ops", op="signed_scatter_add", backend=backend
    )
    assert ops >= 1
    assert (
        snapshot.counter_value(
            "kernels.bytes", op="signed_scatter_add", backend=backend
        )
        > 0
    )
    assert (
        snapshot.gauge_value(
            "kernels.throughput.tuples_per_sec", backend=backend
        )
        > 0
    )


def test_profiling_records_latency_histograms(keys, tick_clock):
    obs = Observer(tick_clock)
    with profile_kernels(obs, clock=tick_clock):
        FagmsSketch(64, rows=2, seed=3).update(keys)
    snapshot = obs.metrics.snapshot()
    histograms = [
        key for key in snapshot.histograms if key[0] == "kernels.op.seconds"
    ]
    assert histograms, "no kernel latency histograms were recorded"
    total = sum(snapshot.histograms[key]["count"] for key in histograms)
    assert total >= 1


def test_profile_kernels_restores_the_active_backend(keys):
    before = get_backend()
    with profile_kernels(Observer()) as wrapper:
        assert get_backend() is wrapper
        assert wrapper.name == f"profiled:{before.name}"
    assert get_backend() is before


def test_nested_profiling_does_not_stack_wrappers(keys):
    outer = Observer()
    inner = Observer()
    with profile_kernels(outer):
        with profile_kernels(inner) as wrapper:
            assert not isinstance(wrapper.inner, ProfilingKernelBackend)
            FagmsSketch(64, rows=2, seed=3).update(keys)
    # The inner profiler saw the work; its wrapped backend is the real one.
    assert inner.metrics.snapshot().counters
