"""Shared fixtures for the observability suite.

``tick_clock`` is the injectable deterministic clock: every call returns
the previous reading plus one, so span durations and histogram inputs are
exact integers and the tests assert equality, not tolerance.
"""

from __future__ import annotations

import os

import pytest

from repro.observability import Observer
from repro.parallel import WorkerPool


class TickClock:
    """A monotonic fake clock advancing by ``step`` per call."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture
def tick_clock() -> TickClock:
    """A fresh deterministic clock."""
    return TickClock()


@pytest.fixture
def observer(tick_clock) -> Observer:
    """An enabled observer driven by the deterministic clock."""
    return Observer(tick_clock)


@pytest.fixture(scope="module")
def process_pool():
    """One real multiprocess pool shared across a test module."""
    workers = int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))
    with WorkerPool(workers) as pool:
        yield pool
