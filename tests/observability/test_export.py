"""Exporters: Prometheus text, Chrome trace_event JSON, JSONL sinks."""

from __future__ import annotations

import json

from repro.observability import (
    Observer,
    metrics_to_records,
    spans_to_records,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_jsonl,
)


def _populated_observer(tick_clock) -> Observer:
    obs = Observer(tick_clock)
    obs.counter("runtime.tuples.seen").inc(100)
    obs.counter("engine.rows.consumed", relation="orders").inc(3)
    obs.counter("engine.rows.consumed", relation="lineitem").inc(7)
    obs.gauge("resilience.shed.rate").set(0.5)
    obs.histogram("runtime.chunk.seconds", (1.0, 2.0)).observe(1.5)
    with obs.span("parallel.scan"):
        pass
    return obs


class TestPrometheus:
    def test_counters_gain_total_and_labels_render(self, tick_clock):
        text = to_prometheus(_populated_observer(tick_clock))
        assert "# TYPE repro_runtime_tuples_seen_total counter" in text
        assert "repro_runtime_tuples_seen_total 100" in text
        assert (
            'repro_engine_rows_consumed_total{relation="lineitem"} 7' in text
        )
        assert 'repro_engine_rows_consumed_total{relation="orders"} 3' in text

    def test_gauges_and_histograms_render(self, tick_clock):
        text = to_prometheus(_populated_observer(tick_clock))
        assert "# TYPE repro_resilience_shed_rate gauge" in text
        assert "repro_resilience_shed_rate 0.5" in text
        assert 'repro_runtime_chunk_seconds_bucket{le="1"} 0' in text
        assert 'repro_runtime_chunk_seconds_bucket{le="2"} 1' in text
        assert 'repro_runtime_chunk_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_runtime_chunk_seconds_sum 1.5" in text
        assert "repro_runtime_chunk_seconds_count 1" in text

    def test_output_is_deterministic_and_sorted(self, tick_clock):
        first = to_prometheus(_populated_observer(tick_clock).export())
        second = to_prometheus(_populated_observer(type(tick_clock)()).export())
        assert first == second
        lines = [line for line in first.splitlines() if "rows_consumed" in line]
        # lineitem sorts before orders
        assert "lineitem" in lines[1] and "orders" in lines[2]

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(Observer().export()) == ""

    def test_namespace_is_configurable(self, tick_clock):
        text = to_prometheus(_populated_observer(tick_clock), namespace="")
        assert "runtime_tuples_seen_total 100" in text
        assert "repro_" not in text


class TestChromeTrace:
    def test_main_is_pid_one_and_processes_get_metadata(self, tick_clock):
        obs = _populated_observer(tick_clock)
        worker = Observer(tick_clock, process="shard-000")
        with worker.span("worker.shard"):
            pass
        obs.absorb(worker.export())
        trace = to_chrome_trace(obs)
        meta = {
            event["args"]["name"]: event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        assert meta["main"] == 1
        assert meta["shard-000"] == 2

    def test_complete_events_scale_to_microseconds(self, tick_clock):
        obs = Observer(tick_clock)
        with obs.span("scan.chunk"):
            pass
        (event,) = [
            e for e in to_chrome_trace(obs)["traceEvents"] if e["ph"] == "X"
        ]
        assert event["name"] == "scan.chunk"
        assert event["ts"] == 1e6
        assert event["dur"] == 1e6
        assert event["args"]["span_id"] == 1

    def test_write_chrome_trace_emits_loadable_json(self, tick_clock, tmp_path):
        obs = _populated_observer(tick_clock)
        path = write_chrome_trace(tmp_path / "trace.json", obs)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded["displayTimeUnit"] == "ms"


class TestJsonl:
    def test_metric_and_span_records_round_trip(self, tick_clock, tmp_path):
        obs = _populated_observer(tick_clock)
        path = write_jsonl(
            tmp_path / "dump.jsonl",
            [*metrics_to_records(obs), *spans_to_records(obs)],
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {record["kind"] for record in records}
        assert kinds == {"counter", "gauge", "histogram", "span"}
        counters = {
            (record["name"], tuple(sorted(record["labels"].items())))
            for record in records
            if record["kind"] == "counter"
        }
        assert ("runtime.tuples.seen", ()) in counters

    def test_append_mode_accumulates(self, tick_clock, tmp_path):
        obs = _populated_observer(tick_clock)
        path = tmp_path / "dump.jsonl"
        write_jsonl(path, spans_to_records(obs))
        write_jsonl(path, spans_to_records(obs), append=True)
        assert len(path.read_text().splitlines()) == 2
