"""Tabulation hashing: structure, independence, sign properties."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.hashing import TabulationHashFamily, TabulationSignFamily


class TestTabulationHashFamily:
    def test_shapes_and_determinism(self):
        family = TabulationHashFamily(rows=3, seed=1)
        keys = np.arange(200)
        values = family(keys)
        assert values.shape == (3, 200)
        again = TabulationHashFamily(rows=3, seed=1)(keys)
        assert np.array_equal(values, again)

    def test_evaluate_row_matches_call(self):
        family = TabulationHashFamily(rows=2, seed=4)
        keys = np.arange(64)
        full = family(keys)
        for row in range(2):
            assert np.array_equal(family.evaluate_row(row, keys), full[row])

    def test_character_decomposition(self):
        family = TabulationHashFamily(rows=1, seed=5, key_bits=16, bits_per_char=8)
        assert family.characters == 2
        # Direct recomputation from the tables.
        key = 0xAB12
        expected = (
            int(family._tables[0, 0, 0x12]) ^ int(family._tables[0, 1, 0xAB])
        )
        assert int(family.evaluate_row(0, np.array([key]))[0]) == expected

    def test_xor_structure(self):
        """h(a ⊕ pattern in one character) differs from h(a) by a table XOR."""
        family = TabulationHashFamily(rows=1, seed=6, key_bits=16, bits_per_char=8)
        base = family.evaluate_row(0, np.array([0x0000]))[0]
        changed = family.evaluate_row(0, np.array([0x0007]))[0]
        delta = int(family._tables[0, 0, 0x07]) ^ int(family._tables[0, 0, 0x00])
        assert int(base) ^ int(changed) == delta

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TabulationHashFamily(rows=0)
        with pytest.raises(ConfigurationError):
            TabulationHashFamily(rows=1, bits_per_char=0)
        with pytest.raises(ConfigurationError):
            TabulationHashFamily(rows=1, key_bits=10, bits_per_char=8)

    def test_key_domain_enforced(self):
        family = TabulationHashFamily(rows=1, seed=7, key_bits=16)
        with pytest.raises(DomainError):
            family(np.array([2**16]))
        with pytest.raises(DomainError):
            family(np.array([-1]))

    def test_row_out_of_range(self):
        family = TabulationHashFamily(rows=1, seed=8)
        with pytest.raises(IndexError):
            family.evaluate_row(1, np.arange(4))


class TestTabulationSignFamily:
    def test_values_and_shape(self):
        family = TabulationSignFamily(rows=2, seed=9)
        signs = family(np.arange(500))
        assert signs.shape == (2, 500)
        assert set(np.unique(signs)) <= {-1, 1}

    def test_balanced(self):
        family = TabulationSignFamily(rows=1, seed=10)
        signs = family.evaluate_row(0, np.arange(20_000)).astype(np.float64)
        assert abs(signs.mean()) < 5 / np.sqrt(20_000)

    def test_three_wise_unbiased_empirically(self):
        rows = 4000
        family = TabulationSignFamily(rows=rows, seed=11)
        signs = family(np.arange(30)).astype(np.float64)
        rng = np.random.default_rng(0)
        for _ in range(20):
            i, j, k = rng.choice(30, size=3, replace=False)
            product = (signs[:, i] * signs[:, j] * signs[:, k]).mean()
            assert abs(product) < 6 / np.sqrt(rows)

    def test_works_as_sketch_estimator(self):
        """A hand-rolled AGMS counter using tabulation signs is unbiased."""
        from repro.frequency import FrequencyVector

        fv = FrequencyVector(np.array([4, 0, 2, 7, 1]))
        rows = 3000
        family = TabulationSignFamily(rows=rows, seed=12)
        signs = family(np.arange(5)).astype(np.float64)
        counters = signs @ fv.counts
        estimates = counters**2
        standard_error = estimates.std() / np.sqrt(rows)
        assert abs(estimates.mean() - fv.f2) < 5 * standard_error
