"""Variance decomposition: the three terms sum exactly and behave as the
paper describes (Figures 1-2 claims)."""

import pytest

from repro.errors import ConfigurationError
from repro.sampling import SampleInfo
from repro.sampling.moments import BernoulliMoments
from repro.streams.synthetic import zipf_frequency_vector
from repro.variance.decomposition import (
    VarianceDecomposition,
    decompose_combined_variance,
)
from repro.variance.generic import combined_join_variance, combined_self_join_variance
from repro.variance.sampling import bernoulli_self_join_variance
from repro.variance.sketch import agms_self_join_variance


def _bernoulli_info(fv, p):
    return SampleInfo(
        scheme="bernoulli",
        population_size=fv.total,
        sample_size=max(1, int(p * fv.total)),
        probability=p,
    )


class TestDataclass:
    def test_total_and_shares(self):
        parts = VarianceDecomposition(sampling=1.0, sketch=2.0, interaction=1.0)
        assert parts.total == 4.0
        assert parts.shares() == (0.25, 0.5, 0.25)
        assert parts.dominant == "sketch"

    def test_zero_total(self):
        parts = VarianceDecomposition(0.0, 0.0, 0.0)
        assert parts.shares() == (0.0, 0.0, 0.0)


class TestSelfJoinDecomposition:
    def test_terms_sum_to_total(self, small_f):
        info = _bernoulli_info(small_f, 0.25)
        n = 4
        parts = decompose_combined_variance(small_f, info, n)
        from fractions import Fraction

        p = Fraction(1, 4)
        total = combined_self_join_variance(
            BernoulliMoments(p), small_f, 1 / p**2, n, correction=(1 - p) / p**2,
            exact=True,
        )
        assert parts.total == pytest.approx(float(total), rel=1e-9)

    def test_sampling_term_matches_prop4(self, small_f):
        from fractions import Fraction

        info = _bernoulli_info(small_f, 0.25)
        parts = decompose_combined_variance(small_f, info, 8)
        expected = float(bernoulli_self_join_variance(small_f, Fraction(1, 4)))
        assert parts.sampling == pytest.approx(expected, rel=1e-9)

    def test_sketch_term_matches_prop8_over_n(self, small_f):
        info = _bernoulli_info(small_f, 0.25)
        n = 8
        parts = decompose_combined_variance(small_f, info, n)
        assert parts.sketch == pytest.approx(
            agms_self_join_variance(small_f) / n, rel=1e-12
        )

    def test_all_terms_non_negative(self, zipf_f):
        info = _bernoulli_info(zipf_f, 0.1)
        parts = decompose_combined_variance(zipf_f, info, 100)
        assert parts.sampling >= 0
        assert parts.sketch >= 0
        assert parts.interaction >= -1e-6 * parts.total


class TestJoinDecomposition:
    def test_terms_sum_to_total(self, small_f, small_g):
        from fractions import Fraction

        info_f = _bernoulli_info(small_f, 0.5)
        info_g = _bernoulli_info(small_g, 0.5)
        n = 3
        parts = decompose_combined_variance(
            small_f, info_f, n, g=small_g, info_g=info_g
        )
        p = Fraction(1, 2)
        total = combined_join_variance(
            BernoulliMoments(p),
            small_f,
            BernoulliMoments(p),
            small_g,
            1 / (p * p),
            n,
            exact=True,
        )
        assert parts.total == pytest.approx(float(total), rel=1e-9)

    def test_requires_both_g_and_info(self, small_f, small_g):
        info = _bernoulli_info(small_f, 0.5)
        with pytest.raises(ConfigurationError):
            decompose_combined_variance(small_f, info, 2, g=small_g)

    def test_rejects_bad_n(self, small_f):
        with pytest.raises(ConfigurationError):
            decompose_combined_variance(small_f, _bernoulli_info(small_f, 0.5), 0)


class TestPaperClaims:
    """Section V-B discussion, as seen in Figures 1-2."""

    def test_interaction_dominates_for_uniform_data(self):
        fv = zipf_frequency_vector(50_000, 5_000, 0.0, expected=True)
        info = _bernoulli_info(fv, 0.01)
        parts = decompose_combined_variance(fv, info, 1000)
        assert parts.dominant == "interaction"

    def test_sampling_dominates_self_join_for_skewed_data(self):
        fv = zipf_frequency_vector(50_000, 5_000, 2.0, expected=True)
        info = _bernoulli_info(fv, 0.01)
        parts = decompose_combined_variance(fv, info, 1000)
        assert parts.dominant == "sampling"

    def test_sketch_dominates_join_for_skewed_independent_data(self):
        """Fig 1's claim: for independently generated skewed relations the
        sketch variance accounts for almost the whole join variance,
        irrespective of the sampling probability."""
        f = zipf_frequency_vector(50_000, 5_000, 2.0, seed=1, shuffle_values=True)
        g = zipf_frequency_vector(50_000, 5_000, 2.0, seed=2, shuffle_values=True)
        for p in (0.1, 0.01):
            info_f = _bernoulli_info(f, p)
            info_g = _bernoulli_info(g, p)
            parts = decompose_combined_variance(f, info_f, 1000, g=g, info_g=info_g)
            assert parts.dominant == "sketch"
            assert parts.shares()[1] > 0.6

    def test_wor_full_scan_has_zero_sampling_variance(self, small_f):
        info = SampleInfo(
            scheme="without_replacement",
            population_size=small_f.total,
            sample_size=small_f.total,
        )
        parts = decompose_combined_variance(small_f, info, 10)
        assert parts.sampling == pytest.approx(0.0, abs=1e-9)
        # At a full scan the combined estimator *is* the plain sketch:
        assert parts.total == pytest.approx(
            agms_self_join_variance(small_f) / 10, rel=1e-9
        )
