"""Generic parameter-sweep machinery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweeps import error_sweep


def _noisy_setup(scale, offset=0.0):
    def trial(rng):
        return 100.0 + offset + rng.normal(0, scale)

    return trial, 100.0


def test_grid_cartesian_product():
    result = error_sweep(
        lambda a, b: _noisy_setup(a + b),
        grid={"a": [1, 2], "b": [10, 20, 30]},
        trials=4,
        seed=1,
    )
    assert len(result.rows) == 6
    assert result.columns[:2] == ("a", "b")
    observed = {(row[0], row[1]) for row in result.rows}
    assert observed == {(a, b) for a in (1, 2) for b in (10, 20, 30)}


def test_error_scales_with_noise():
    result = error_sweep(
        lambda scale: _noisy_setup(scale),
        grid={"scale": [1.0, 50.0]},
        trials=40,
        seed=2,
    )
    errors = result.column("mean_rel_error")
    assert errors[0] < errors[1]


def test_deterministic_and_stable_under_grid_growth():
    """Adding grid values must not change existing points' results."""
    small = error_sweep(
        lambda scale: _noisy_setup(scale),
        grid={"scale": [1.0, 2.0]},
        trials=5,
        seed=3,
    )
    again = error_sweep(
        lambda scale: _noisy_setup(scale),
        grid={"scale": [1.0, 2.0]},
        trials=5,
        seed=3,
    )
    assert small.rows == again.rows


def test_validation():
    with pytest.raises(ConfigurationError):
        error_sweep(lambda: (lambda rng: 1.0, 1.0), grid={}, trials=3)
    with pytest.raises(ConfigurationError):
        error_sweep(lambda a: (lambda rng: 1.0, 1.0), grid={"a": []}, trials=3)


def test_end_to_end_with_real_estimator():
    """A miniature Fig-4-style sweep through the public machinery."""
    from repro.core import estimate_self_join_size
    from repro.sampling import BernoulliSampler
    from repro.sketches import FagmsSketch
    from repro.streams.synthetic import zipf_frequency_vector

    workload = zipf_frequency_vector(5_000, 500, 1.0, seed=4, shuffle_values=False)

    def setup(p, buckets):
        sampler = BernoulliSampler(p)

        def trial(rng):
            sketch = FagmsSketch(buckets, seed=int(rng.integers(2**63)))
            sample, info = sampler.sample_frequencies(workload, rng)
            sketch.update_frequency_vector(sample)
            return estimate_self_join_size(sketch, info).value

        return trial, float(workload.f2)

    result = error_sweep(
        setup,
        grid={"p": [1.0, 0.05], "buckets": [1024]},
        trials=15,
        seed=5,
        title="mini fig-4",
    )
    errors = {row[0]: row[2] for row in result.rows}
    assert errors[1.0] < errors[0.05]  # shedding 95% costs accuracy
    assert np.isfinite(list(errors.values())).all()
