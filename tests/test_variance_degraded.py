"""Degraded (shard-loss) variance closed forms, validated by Monte Carlo.

The degraded estimators model losing hash shards as Bernoulli-sampling
the *key space* with survival probability ``q`` (each key lives on
exactly one shard), optionally composed with per-tuple Bernoulli(p) load
shedding.  These tests check the exact
:func:`~repro.variance.sampling.degraded_bernoulli_self_join_variance` /
:func:`~repro.variance.sampling.degraded_bernoulli_join_variance` closed
forms against brute-force simulation, their ``q = 1`` reduction to the
paper's Eqs. 6–7, and the conservativeness of the runtime plug-in bounds
(:func:`~repro.resilience.distributed.widened_self_join_variance`) the
coordinator actually ships in degraded confidence intervals.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.frequency import FrequencyVector
from repro.resilience.distributed import (
    widened_join_variance,
    widened_self_join_variance,
)
from repro.variance.bounds import chebyshev_interval
from repro.variance.sampling import (
    bernoulli_join_variance,
    bernoulli_self_join_variance,
    degraded_bernoulli_join_variance,
    degraded_bernoulli_self_join_variance,
)

TRIALS = 60_000


def _mc_self_join(f: FrequencyVector, q: float, p: float, seed: int) -> np.ndarray:
    """Monte Carlo replicates of the degraded self-join estimator."""
    rng = np.random.default_rng(seed)
    counts = f.counts.astype(np.int64)
    alive = rng.random((TRIALS, counts.size)) < q
    if p < 1.0:
        thinned = rng.binomial(counts, p, size=(TRIALS, counts.size))
        estimator = (
            thinned.astype(np.float64) ** 2 / p**2
            - (1.0 - p) / p**2 * thinned
        )
    else:
        estimator = counts.astype(np.float64) ** 2
    return (estimator * alive).sum(axis=1) / q


def _mc_join(
    f: FrequencyVector,
    g: FrequencyVector,
    q: float,
    p: float,
    p2: float,
    seed: int,
) -> np.ndarray:
    """Monte Carlo replicates of the degraded join estimator (shared keys)."""
    rng = np.random.default_rng(seed)
    cf = f.counts.astype(np.int64)
    cg = g.counts.astype(np.int64)
    alive = rng.random((TRIALS, cf.size)) < q
    tf = rng.binomial(cf, p, size=(TRIALS, cf.size)) if p < 1.0 else cf
    tg = rng.binomial(cg, p2, size=(TRIALS, cg.size)) if p2 < 1.0 else cg
    products = tf.astype(np.float64) * tg / (p * p2)
    return (products * alive).sum(axis=1) / q


class TestSelfJoinClosedForm:
    @pytest.mark.parametrize("q", [0.25, 0.5, 0.75])
    def test_pure_key_loss_matches_monte_carlo(self, small_f, q):
        replicates = _mc_self_join(small_f, q, 1.0, seed=101)
        assert replicates.mean() == pytest.approx(small_f.f2, rel=0.05)
        exact = float(degraded_bernoulli_self_join_variance(small_f, q))
        assert replicates.var() == pytest.approx(exact, rel=0.10)

    @pytest.mark.parametrize("q,p", [(0.5, 0.5), (0.75, 0.3), (0.25, 0.8)])
    def test_composed_with_shedding_matches_monte_carlo(self, small_f, q, p):
        replicates = _mc_self_join(small_f, q, p, seed=202)
        assert replicates.mean() == pytest.approx(small_f.f2, rel=0.05)
        exact = float(degraded_bernoulli_self_join_variance(small_f, q, p))
        assert replicates.var() == pytest.approx(exact, rel=0.10)

    def test_q_one_reduces_to_eq7(self, small_f):
        for p in (0.3, 0.5, 1.0):
            assert degraded_bernoulli_self_join_variance(
                small_f, 1, p
            ) == bernoulli_self_join_variance(small_f, p)

    def test_p_one_is_pure_key_loss_term(self, small_f):
        q = Fraction(1, 3)
        expected = (1 - q) / q * small_f.f4
        assert degraded_bernoulli_self_join_variance(small_f, q) == expected

    def test_variance_grows_as_survival_shrinks(self, small_f):
        values = [
            degraded_bernoulli_self_join_variance(small_f, q, Fraction(1, 2))
            for q in (1, Fraction(3, 4), Fraction(1, 2), Fraction(1, 4))
        ]
        assert values == sorted(values)

    @pytest.mark.parametrize("q", [0, -1, 2])
    def test_rejects_bad_survival(self, small_f, q):
        with pytest.raises(ValueError):
            degraded_bernoulli_self_join_variance(small_f, q)


class TestJoinClosedForm:
    @pytest.mark.parametrize("q", [0.5, 0.75])
    def test_pure_key_loss_matches_monte_carlo(self, small_f, small_g, q):
        replicates = _mc_join(small_f, small_g, q, 1.0, 1.0, seed=303)
        true = small_f.join_size(small_g)
        assert replicates.mean() == pytest.approx(true, rel=0.05)
        exact = float(degraded_bernoulli_join_variance(small_f, small_g, q))
        assert replicates.var() == pytest.approx(exact, rel=0.10)

    def test_composed_with_two_sided_shedding(self, small_f, small_g):
        q, p, p2 = 0.5, 0.6, 0.7
        replicates = _mc_join(small_f, small_g, q, p, p2, seed=404)
        true = small_f.join_size(small_g)
        assert replicates.mean() == pytest.approx(true, rel=0.05)
        exact = float(
            degraded_bernoulli_join_variance(small_f, small_g, q, p, p2)
        )
        assert replicates.var() == pytest.approx(exact, rel=0.10)

    def test_q_one_reduces_to_eq6(self, small_f, small_g):
        assert degraded_bernoulli_join_variance(
            small_f, small_g, 1, Fraction(1, 2), Fraction(1, 3)
        ) == bernoulli_join_variance(
            small_f, small_g, Fraction(1, 2), Fraction(1, 3)
        )

    @pytest.mark.parametrize("q", [0, -1, 2])
    def test_rejects_bad_survival(self, small_f, small_g, q):
        with pytest.raises(ValueError):
            degraded_bernoulli_join_variance(small_f, small_g, q)


class TestWidenedBoundsAreConservative:
    """The runtime plug-ins must dominate the exact variance."""

    @pytest.mark.parametrize("q,p", [(0.5, 1.0), (0.75, 0.5), (0.25, 0.3)])
    def test_self_join_plug_in_dominates_exact(self, small_f, q, p):
        exact = float(degraded_bernoulli_self_join_variance(small_f, q, p))
        bound = widened_self_join_variance(
            float(small_f.f2),
            survived_fraction=q,
            probability=p,
            population=float(small_f.f1),
        )
        assert bound >= exact

    @pytest.mark.parametrize("q,p,p2", [(0.5, 1.0, 1.0), (0.5, 0.6, 0.7)])
    def test_join_plug_in_dominates_exact(self, small_f, small_g, q, p, p2):
        exact = float(
            degraded_bernoulli_join_variance(small_f, small_g, q, p, p2)
        )
        bound = widened_join_variance(
            float(small_f.join_size(small_g)),
            survived_fraction=q,
            probability_f=p,
            probability_g=p2,
            population_f=float(small_f.f1),
            population_g=float(small_g.f1),
        )
        assert bound >= exact

    def test_chebyshev_coverage_at_least_nominal(self, small_f):
        """Intervals from the exact variance over-cover (Chebyshev slack)."""
        q, confidence = 0.5, 0.90
        replicates = _mc_self_join(small_f, q, 1.0, seed=505)
        variance = float(degraded_bernoulli_self_join_variance(small_f, q))
        covered = 0
        sample = replicates[:4_000]
        for estimate in sample:
            interval = chebyshev_interval(float(estimate), variance, confidence)
            covered += interval.contains(float(small_f.f2))
        assert covered / len(sample) >= confidence
