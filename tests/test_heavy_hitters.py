"""Point queries and heavy hitters over (sampled) F-AGMS sketches."""

import numpy as np
import pytest

from repro.core import sketch_over_sample
from repro.core.heavy_hitters import (
    HeavyHitter,
    estimate_frequencies,
    heavy_hitters,
)
from repro.errors import ConfigurationError
from repro.frequency import FrequencyVector
from repro.sampling import BernoulliSampler, SampleInfo
from repro.sketches import FagmsSketch
from repro.streams import zipf_relation


def _full_info(total):
    return SampleInfo("bernoulli", total, total, probability=1.0)


class TestPointEstimates:
    def test_single_key_no_collision_is_exact(self):
        fv = FrequencyVector(np.array([0, 9, 0]))
        sketch = FagmsSketch(buckets=128, rows=3, seed=1)
        sketch.update_frequency_vector(fv)
        assert sketch.point_estimate(1) == pytest.approx(9.0)
        # Other keys: near zero (collisions with key 1 possible but rare).
        assert abs(sketch.point_estimate(0)) <= 9.0

    @pytest.mark.statistical
    def test_point_estimates_unbiased(self):
        fv = FrequencyVector(np.array([30, 5, 0, 12, 7, 1, 0, 20]))
        trials = 1500
        estimates = np.zeros((trials, 8))
        for t in range(trials):
            sketch = FagmsSketch(buckets=4, rows=1, seed=5_000 + t)
            sketch.update_frequency_vector(fv)
            estimates[t] = sketch.estimate_frequencies(np.arange(8))
        means = estimates.mean(axis=0)
        spread = estimates.std(axis=0) / np.sqrt(trials)
        for key in range(8):
            assert abs(means[key] - fv[key]) < 5 * max(spread[key], 1e-9)

    def test_median_over_rows_reduces_error(self):
        relation = zipf_relation(50_000, 2_000, 1.2, seed=2, shuffle_values=False)
        fv = relation.frequency_vector()
        keys = np.arange(50)
        one_row = FagmsSketch(buckets=256, rows=1, seed=3)
        five_rows = FagmsSketch(buckets=256, rows=5, seed=3)
        one_row.update_frequency_vector(fv)
        five_rows.update_frequency_vector(fv)
        err1 = np.abs(one_row.estimate_frequencies(keys) - fv.counts[keys]).mean()
        err5 = np.abs(five_rows.estimate_frequencies(keys) - fv.counts[keys]).mean()
        assert err5 < err1


class TestAgmsPointEstimates:
    def test_single_value_exact(self):
        from repro.sketches import AgmsSketch

        fv = FrequencyVector(np.array([0, 13, 0]))
        sketch = AgmsSketch(rows=9, seed=21)
        sketch.update_frequency_vector(fv)
        # With a single-value stream, ξ(key)·S = ξ(key)²·13 = 13 per row.
        assert sketch.point_estimate(1) == pytest.approx(13.0)

    @pytest.mark.statistical
    def test_unbiased(self):
        from repro.sketches import AgmsSketch

        fv = FrequencyVector(np.array([30, 5, 0, 12]))
        trials = 1200
        estimates = np.zeros((trials, 4))
        for t in range(trials):
            sketch = AgmsSketch(rows=1, seed=30_000 + t)
            sketch.update_frequency_vector(fv)
            estimates[t] = sketch.estimate_frequencies(np.arange(4))
        means = estimates.mean(axis=0)
        spread = estimates.std(axis=0) / np.sqrt(trials)
        for key in range(4):
            assert abs(means[key] - fv[key]) < 5 * max(spread[key], 1e-9)

    def test_noisier_than_fagms_at_equal_budget(self):
        from repro.sketches import AgmsSketch

        relation = zipf_relation(30_000, 1_000, 1.0, seed=22)
        fv = relation.frequency_vector()
        keys = np.arange(30)
        agms = AgmsSketch(rows=256, seed=23)
        fagms = FagmsSketch(buckets=256, rows=1, seed=23)
        agms.update_frequency_vector(fv)
        fagms.update_frequency_vector(fv)
        agms_err = np.abs(agms.estimate_frequencies(keys) - fv.counts[keys]).mean()
        fagms_err = np.abs(
            fagms.estimate_frequencies(keys) - fv.counts[keys]
        ).mean()
        assert fagms_err < agms_err


class TestSampledFrequencies:
    def test_scaling_for_sampled_sketch(self):
        relation = zipf_relation(100_000, 2_000, 1.5, seed=4, shuffle_values=False)
        fv = relation.frequency_vector()
        sketch = FagmsSketch(buckets=4096, rows=3, seed=5)
        info = sketch_over_sample(relation, BernoulliSampler(0.1), sketch, seed=6)
        top_keys = np.argsort(fv.counts)[::-1][:5].astype(np.int64)
        estimates = estimate_frequencies(sketch, info, top_keys)
        for key, estimate in zip(top_keys, estimates):
            assert estimate == pytest.approx(fv[int(key)], rel=0.25)

    def test_full_info_is_identity_scaling(self):
        fv = FrequencyVector(np.array([0, 50, 0, 0]))
        sketch = FagmsSketch(buckets=64, rows=3, seed=7)
        sketch.update_frequency_vector(fv)
        estimates = estimate_frequencies(sketch, _full_info(fv.total), [1])
        assert estimates[0] == pytest.approx(50.0)


class TestHeavyHitters:
    def test_finds_true_heavy_hitters(self):
        relation = zipf_relation(100_000, 5_000, 1.5, seed=8, shuffle_values=False)
        fv = relation.frequency_vector()
        sketch = FagmsSketch(buckets=4096, rows=3, seed=9)
        info = sketch_over_sample(relation, BernoulliSampler(0.2), sketch, seed=10)
        threshold = 0.01 * len(relation)  # 1%-heavy
        true_heavy = set(np.flatnonzero(fv.counts >= threshold).tolist())
        found = heavy_hitters(
            sketch, info, np.arange(5_000), threshold=threshold
        )
        found_keys = {h.key for h in found}
        # All true heavy hitters found; few spurious ones.
        assert true_heavy <= found_keys
        assert len(found_keys - true_heavy) <= max(2, len(true_heavy))

    def test_sorted_descending_and_top(self):
        fv = FrequencyVector(np.array([100, 0, 50, 0, 200]))
        sketch = FagmsSketch(buckets=256, rows=3, seed=11)
        sketch.update_frequency_vector(fv)
        info = _full_info(fv.total)
        found = heavy_hitters(sketch, info, np.arange(5), threshold=10)
        assert [h.key for h in found] == [4, 0, 2]
        top2 = heavy_hitters(sketch, info, np.arange(5), threshold=10, top=2)
        assert [h.key for h in top2] == [4, 0]
        assert isinstance(found[0], HeavyHitter)

    def test_empty_candidates(self):
        sketch = FagmsSketch(buckets=8, rows=1, seed=12)
        assert heavy_hitters(sketch, _full_info(1), [], threshold=1) == []

    def test_validation(self):
        sketch = FagmsSketch(buckets=8, rows=1, seed=13)
        info = _full_info(10)
        with pytest.raises(ConfigurationError):
            heavy_hitters(sketch, info, [1], threshold=-1)
        with pytest.raises(ConfigurationError):
            heavy_hitters(sketch, info, [1], threshold=1, top=0)
