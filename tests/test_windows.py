"""Tumbling-window sketching."""

import numpy as np
import pytest

from repro.core.windows import TumblingWindowSketcher, window_join_size
from repro.errors import ConfigurationError, InsufficientDataError
from repro.frequency import FrequencyVector
from repro.streams import zipf_relation


class TestWindowMechanics:
    def test_windows_close_every_window_size_tuples(self):
        sketcher = TumblingWindowSketcher(100, buckets=64, seed=1)
        closed = sketcher.process(np.arange(250) % 64)
        assert len(closed) == 2
        assert sketcher.current_fill == 50
        assert [w.index for w in closed] == [0, 1]
        assert all(w.tuples == 100 for w in closed)

    def test_windows_close_across_chunks(self):
        sketcher = TumblingWindowSketcher(100, buckets=64, seed=2)
        total_closed = []
        for chunk in np.array_split(np.arange(1_000) % 64, 13):
            total_closed.extend(sketcher.process(chunk))
        assert len(total_closed) == 10
        assert sketcher.current_fill == 0

    def test_keep_last_eviction(self):
        sketcher = TumblingWindowSketcher(10, buckets=16, keep_last=3, seed=3)
        sketcher.process(np.arange(100) % 16)
        assert len(sketcher.closed_windows) == 3
        assert [w.index for w in sketcher.closed_windows] == [7, 8, 9]

    def test_latest_requires_closed_window(self):
        sketcher = TumblingWindowSketcher(100, buckets=16, seed=4)
        with pytest.raises(InsufficientDataError):
            sketcher.latest()
        sketcher.process(np.arange(100) % 16)
        assert sketcher.latest().index == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TumblingWindowSketcher(0, buckets=16)
        with pytest.raises(ConfigurationError):
            TumblingWindowSketcher(10, buckets=16, keep_last=0)
        sketcher = TumblingWindowSketcher(10, buckets=16, seed=5)
        with pytest.raises(ConfigurationError):
            sketcher.process(np.ones((2, 2), dtype=np.int64))


class TestWindowEstimates:
    def test_per_window_f2_accurate_without_shedding(self):
        relation = zipf_relation(30_000, 1_000, 1.0, seed=6)
        window = 10_000
        sketcher = TumblingWindowSketcher(window, buckets=2048, p=1.0, seed=7)
        closed = sketcher.process(relation.keys)
        assert len(closed) == 3
        for i, summary in enumerate(closed):
            truth = FrequencyVector.from_items(
                relation.keys[i * window : (i + 1) * window], 1_000
            ).f2
            assert summary.self_join_size() == pytest.approx(truth, rel=0.15)

    def test_per_window_f2_with_shedding(self):
        relation = zipf_relation(40_000, 1_000, 1.0, seed=8)
        window = 20_000
        sketcher = TumblingWindowSketcher(window, buckets=2048, p=0.2, seed=9)
        closed = sketcher.process(relation.keys)
        for i, summary in enumerate(closed):
            truth = FrequencyVector.from_items(
                relation.keys[i * window : (i + 1) * window], 1_000
            ).f2
            assert summary.self_join_size() == pytest.approx(truth, rel=0.35)
            assert summary.info.sample_size < window  # shedding happened

    def test_cross_window_join_similarity(self):
        """Same-distribution windows look similar; disjoint ones don't."""
        rng = np.random.default_rng(10)
        zipf_keys = zipf_relation(40_000, 500, 1.2, seed=11, shuffle_values=False)
        window = 20_000
        sketcher = TumblingWindowSketcher(window, buckets=2048, p=1.0, seed=12)
        closed = sketcher.process(zipf_keys.keys)
        similar = window_join_size(closed[0], closed[1])
        # Shifted-domain second stream: no overlap with the first window.
        disjoint_keys = zipf_keys.keys[:window] + 500
        sketcher2 = TumblingWindowSketcher(window, buckets=2048, p=1.0, seed=12)
        closed2 = sketcher2.process(
            np.concatenate([zipf_keys.keys[:window], disjoint_keys])
        )
        dissimilar = window_join_size(closed2[0], closed2[1])
        assert similar > 10 * abs(dissimilar)
        _ = rng

    def test_merged_summary_sliding_view(self):
        """The merged summary over k panes estimates the union's F2."""
        relation = zipf_relation(30_000, 1_000, 1.0, seed=15)
        window = 10_000
        sketcher = TumblingWindowSketcher(window, buckets=2048, p=0.3, seed=16)
        sketcher.process(relation.keys)
        merged = sketcher.merged_summary(last=3)
        truth = relation.self_join_size()  # union of all 3 windows
        assert merged.tuples == 30_000
        assert merged.self_join_size() == pytest.approx(truth, rel=0.3)
        # A 2-window view covers the last two windows only.
        partial = sketcher.merged_summary(last=2)
        partial_truth = FrequencyVector.from_items(
            relation.keys[window:], 1_000
        ).f2
        assert partial.self_join_size() == pytest.approx(partial_truth, rel=0.3)

    def test_merged_summary_validation(self):
        sketcher = TumblingWindowSketcher(10, buckets=16, seed=17)
        with pytest.raises(ConfigurationError):
            sketcher.merged_summary(last=0)
        with pytest.raises(InsufficientDataError):
            sketcher.merged_summary(last=1)

    def test_drift_metric(self):
        keys = zipf_relation(30_000, 500, 1.2, seed=13, shuffle_values=False)
        sketcher = TumblingWindowSketcher(10_000, buckets=2048, p=0.5, seed=14)
        assert sketcher.drift() is None
        sketcher.process(keys.keys)
        drift = sketcher.drift()
        assert drift is not None
        # Stationary traffic: similarity near 1.
        assert drift == pytest.approx(1.0, abs=0.25)
