"""Runtime plug-in variance bounds (repro.variance.runtime).

The serving layer reports confidence intervals built from bounds that
substitute observable plug-ins for the unobservable frequency moments of
Props 9–16.  Two properties matter: the limits are exact where exactness
is possible (full scan → pure sketch variance), and the bounds are
*conservative* — at least the true estimator variance — so the served
intervals over-cover.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import OnlineStatisticsEngine
from repro.errors import ConfigurationError
from repro.variance.runtime import (
    prefix_join_variance,
    prefix_point_frequency_variance,
    prefix_self_join_variance,
)


class TestValidation:
    def test_self_join_rejects_bad_prefix(self):
        with pytest.raises(ConfigurationError):
            prefix_self_join_variance(10.0, scanned=0, total=100)
        with pytest.raises(ConfigurationError):
            prefix_self_join_variance(10.0, scanned=101, total=100)
        with pytest.raises(ConfigurationError):
            prefix_self_join_variance(10.0, scanned=1, total=0)

    def test_self_join_rejects_bad_averaged(self):
        with pytest.raises(ConfigurationError):
            prefix_self_join_variance(10.0, scanned=5, total=10, averaged=0)

    def test_join_rejects_bad_prefixes(self):
        with pytest.raises(ConfigurationError):
            prefix_join_variance(
                5.0, 10.0, 10.0,
                scanned_f=0, total_f=10, scanned_g=5, total_g=10,
            )

    def test_point_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            prefix_point_frequency_variance(
                5.0, 100.0, scanned=5, total=10, buckets=0
            )


class TestFullScanLimits:
    def test_self_join_full_scan_is_pure_sketch_variance(self):
        # alpha = 1: no sampling noise; the bound collapses to the Prop 8
        # sketch term 2*F2^2/n evaluated at the plug-in F2.
        assert prefix_self_join_variance(
            100.0, scanned=50, total=50, averaged=4
        ) == pytest.approx(2.0 * 100.0**2 / 4)

    def test_join_full_scan_is_pure_sketch_variance(self):
        # alpha = beta = 1: only the (F2*G2 + J^2)/n Prop 7 term survives.
        assert prefix_join_variance(
            10.0, 40.0, 90.0,
            scanned_f=8, total_f=8, scanned_g=5, total_g=5, averaged=2,
        ) == pytest.approx((40.0 * 90.0 + 10.0**2) / 2)

    def test_point_full_scan_is_collision_noise_only(self):
        assert prefix_point_frequency_variance(
            7.0, 640.0, scanned=10, total=10, buckets=64
        ) == pytest.approx(640.0 / 64)

    def test_negative_estimates_clamp_to_zero_moments(self):
        # A negative (noisy) estimate must not produce a negative bound.
        assert prefix_self_join_variance(-5.0, scanned=10, total=10) == 0.0
        assert (
            prefix_join_variance(
                -5.0, -1.0, -1.0,
                scanned_f=10, total_f=10, scanned_g=10, total_g=10,
            )
            == 0.0
        )


class TestMonotonicity:
    def test_self_join_bound_shrinks_as_scan_progresses(self):
        bounds = [
            prefix_self_join_variance(
                1000.0, scanned=s, total=100, averaged=8
            )
            for s in (10, 25, 50, 75, 100)
        ]
        assert all(a > b for a, b in zip(bounds, bounds[1:]))

    def test_join_bound_shrinks_as_either_scan_progresses(self):
        def bound(sf, sg):
            return prefix_join_variance(
                100.0, 400.0, 400.0,
                scanned_f=sf, total_f=50, scanned_g=sg, total_g=50,
                averaged=8,
            )

        assert bound(10, 25) > bound(25, 25) > bound(25, 50) > bound(50, 50)

    def test_point_bound_shrinks_as_scan_progresses(self):
        bounds = [
            prefix_point_frequency_variance(
                20.0, 500.0, scanned=s, total=100, buckets=64
            )
            for s in (10, 50, 100)
        ]
        assert bounds[0] > bounds[1] > bounds[2]


def _wor_prefix_estimates(keys, total, scanned, trials, *, buckets, rows):
    """Monte-Carlo replicates of the engine's prefix self-join estimate."""
    estimates = np.empty(trials)
    rng = np.random.default_rng(2024)
    for trial in range(trials):
        engine = OnlineStatisticsEngine(buckets=buckets, rows=rows, seed=trial)
        engine.register("r", total)
        engine.consume("r", rng.permutation(keys)[:scanned])
        estimates[trial] = engine.self_join_size("r")
    return estimates


@pytest.mark.statistical
class TestConservativeness:
    def test_self_join_bound_covers_empirical_variance(self):
        # Skewed relation, half-scanned: the empirical variance of the
        # real estimator must sit below the plug-in bound evaluated with
        # the TRUE F2 (every later substitution only enlarges it further).
        rng = np.random.default_rng(7)
        keys = rng.zipf(1.3, size=2000) % 500
        total = keys.size
        true_f2 = float((np.bincount(keys) ** 2).sum())
        estimates = _wor_prefix_estimates(
            keys, total, scanned=total // 2, trials=150, buckets=256, rows=1
        )
        empirical = float(estimates.var())
        bound = prefix_self_join_variance(
            true_f2, scanned=total // 2, total=total, averaged=256
        )
        assert bound > empirical

    def test_full_scan_bound_covers_sketch_only_variance(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 200, size=1500)
        total = keys.size
        true_f2 = float((np.bincount(keys) ** 2).sum())
        estimates = _wor_prefix_estimates(
            keys, total, scanned=total, trials=150, buckets=128, rows=1
        )
        empirical = float(estimates.var())
        bound = prefix_self_join_variance(
            true_f2, scanned=total, total=total, averaged=128
        )
        assert bound > empirical
