"""Arrival-process simulation: queueing behaviour under shedding."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.arrival import (
    ServiceModel,
    poisson_arrivals,
    simulate_backlog,
    sustainable_rate,
)

MODEL = ServiceModel(filter_cost=0.1, sketch_cost=1.0)


class TestPoissonArrivals:
    def test_sorted_within_duration(self):
        arrivals = poisson_arrivals(100.0, 10.0, seed=1)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.min() >= 0 and arrivals.max() < 10.0

    @pytest.mark.statistical
    def test_mean_count(self):
        counts = [poisson_arrivals(50.0, 10.0, seed=s).size for s in range(40)]
        # Poisson(500): sd ~22; mean of 40 within 5 SE.
        assert abs(np.mean(counts) - 500) < 5 * 22 / np.sqrt(40)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(0, 1)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(1, 0)


class TestServiceModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceModel(filter_cost=-1, sketch_cost=1)
        with pytest.raises(ConfigurationError):
            ServiceModel(filter_cost=0, sketch_cost=0)

    def test_sustainable_rate(self):
        assert sustainable_rate(MODEL, 1.0) == pytest.approx(1 / 1.1)
        assert sustainable_rate(MODEL, 0.1) == pytest.approx(1 / 0.2)
        with pytest.raises(ConfigurationError):
            sustainable_rate(MODEL, 0.0)

    def test_shedding_raises_capacity_toward_filter_limit(self):
        # As p -> 0 the capacity approaches 1/filter_cost.
        assert sustainable_rate(MODEL, 0.001) == pytest.approx(
            1 / (0.1 + 0.001), rel=1e-9
        )


class TestSimulation:
    def test_underloaded_queue_loses_nothing(self):
        rate = 0.5 * sustainable_rate(MODEL, 1.0)
        arrivals = poisson_arrivals(rate, 2_000.0, seed=2)
        result = simulate_backlog(arrivals, MODEL, 1.0, seed=3)
        assert result.lost == 0
        assert result.loss_fraction == 0.0
        assert result.sketched == result.arrivals
        assert result.utilization == pytest.approx(0.5, abs=0.1)

    def test_overloaded_queue_loses_tuples(self):
        rate = 3.0 * sustainable_rate(MODEL, 1.0)
        arrivals = poisson_arrivals(rate, 2_000.0, seed=4)
        result = simulate_backlog(
            arrivals, MODEL, 1.0, buffer_capacity=64, seed=5
        )
        assert result.loss_fraction > 0.4
        assert result.max_backlog == 64

    def test_shedding_rescues_an_overloaded_stream(self):
        """A stream 3x over capacity at p=1 is comfortably sustainable at
        p=0.1 — the §VI-A story in queueing terms."""
        rate = 3.0 * sustainable_rate(MODEL, 1.0)
        arrivals = poisson_arrivals(rate, 2_000.0, seed=6)
        overloaded = simulate_backlog(arrivals, MODEL, 1.0, seed=7)
        shedding = simulate_backlog(arrivals, MODEL, 0.1, seed=7)
        assert overloaded.loss_fraction > 0.3
        assert shedding.loss_fraction < 0.01
        assert shedding.shed > 0  # controlled, analyzable removal
        assert shedding.sketched < shedding.arrivals

    def test_accounting_adds_up(self):
        arrivals = poisson_arrivals(5.0, 100.0, seed=8)
        result = simulate_backlog(
            arrivals, MODEL, 0.5, buffer_capacity=4, seed=9
        )
        assert result.sketched + result.shed + result.lost == result.arrivals
        assert 0 <= result.utilization <= 1

    def test_validation(self):
        arrivals = np.array([0.0, 1.0])
        with pytest.raises(ConfigurationError):
            simulate_backlog(arrivals, MODEL, 0.0)
        with pytest.raises(ConfigurationError):
            simulate_backlog(arrivals, MODEL, 0.5, buffer_capacity=0)
        with pytest.raises(ConfigurationError):
            simulate_backlog(np.array([1.0, 0.5]), MODEL, 0.5)

    def test_empty_arrivals(self):
        result = simulate_backlog(np.array([]), MODEL, 0.5, seed=1)
        assert result.arrivals == 0
        assert result.loss_fraction == 0.0
