"""O(1) power-sum variance evaluation == O(domain) generic evaluation."""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.frequency import FrequencyVector
from repro.sampling.base import SampleInfo
from repro.sampling.unbiasing import self_join_correction
from repro.variance.generic import combined_self_join_variance, moment_model_for
from repro.variance.powersum import (
    FrequencyProfile,
    self_join_variance_from_profile,
)


def _infos(total):
    m = max(2, total // 3)
    return [
        SampleInfo("bernoulli", total, m, probability=0.25),
        SampleInfo("with_replacement", total, m),
        SampleInfo("without_replacement", total, m),
    ]


@pytest.mark.parametrize("seed", range(4))
def test_profile_variance_equals_generic(seed):
    rng = np.random.default_rng(seed)
    f = FrequencyVector(rng.integers(0, 9, size=15))
    profile = FrequencyProfile.from_vector(f)
    for info in _infos(f.total):
        model = moment_model_for(info)
        correction = self_join_correction(info)
        for n in (None, 1, 8):
            expected = combined_self_join_variance(
                model,
                f,
                correction.scale,
                n,
                correction=correction.random_coefficient,
                exact=True,
            )
            actual = self_join_variance_from_profile(profile, info, n)
            assert actual == expected, (info.scheme, n)


def test_profile_from_vector(small_f):
    profile = FrequencyProfile.from_vector(small_f)
    assert (profile.p1, profile.p2, profile.p3, profile.p4) == (
        small_f.f1,
        small_f.f2,
        small_f.f3,
        small_f.f4,
    )


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        FrequencyProfile(p1=-1, p2=0, p3=0, p4=0)
    profile = FrequencyProfile(p1=3, p2=5, p3=9, p4=17)
    with pytest.raises(ConfigurationError):
        profile.power(5)


def test_n_validation(small_f):
    profile = FrequencyProfile.from_vector(small_f)
    info = SampleInfo("with_replacement", small_f.total, 5)
    with pytest.raises(ConfigurationError):
        self_join_variance_from_profile(profile, info, 0)


def test_profile_only_needs_four_numbers():
    """Two different vectors with identical P1..P4 give identical variances."""
    a = FrequencyVector(np.array([3, 1, 2, 0, 0]))
    b = FrequencyVector(np.array([0, 2, 0, 1, 3]))  # same multiset of counts
    assert FrequencyProfile.from_vector(a) == FrequencyProfile.from_vector(b)
    info = SampleInfo("bernoulli", a.total, 2, probability=0.5)
    va = self_join_variance_from_profile(FrequencyProfile.from_vector(a), info, 4)
    vb = self_join_variance_from_profile(FrequencyProfile.from_vector(b), info, 4)
    assert va == vb


def test_exact_rationals_returned(small_f):
    profile = FrequencyProfile.from_vector(small_f)
    info = SampleInfo("bernoulli", small_f.total, 4, probability=0.25)
    value = self_join_variance_from_profile(profile, info, 3)
    assert isinstance(value, Fraction)


class TestJoinProfile:
    @pytest.mark.parametrize("seed", range(4))
    def test_join_profile_variance_equals_generic(self, seed):
        from repro.sampling.unbiasing import join_scale
        from repro.variance.generic import combined_join_variance
        from repro.variance.powersum import JoinProfile, join_variance_from_profile

        rng = np.random.default_rng(100 + seed)
        f = FrequencyVector(rng.integers(0, 9, size=15))
        g = FrequencyVector(rng.integers(0, 9, size=15))
        profile = JoinProfile.from_vectors(f, g)
        for info_f in _infos(f.total):
            for info_g in _infos(g.total):
                expected_scale = join_scale(info_f, info_g)
                for n in (None, 1, 8):
                    expected = combined_join_variance(
                        moment_model_for(info_f),
                        f,
                        moment_model_for(info_g),
                        g,
                        expected_scale,
                        n,
                        exact=True,
                    )
                    actual = join_variance_from_profile(profile, info_f, info_g, n)
                    assert actual == expected, (info_f.scheme, info_g.scheme, n)

    def test_from_vectors(self, small_f, small_g):
        from repro.variance.powersum import JoinProfile

        profile = JoinProfile.from_vectors(small_f, small_g)
        assert profile.fg == small_f.join_size(small_g)
        assert profile.f2g2 == small_f.cross_power_sum(small_g, 2, 2)

    def test_validation(self):
        from repro.variance.powersum import JoinProfile, join_variance_from_profile

        with pytest.raises(ConfigurationError):
            JoinProfile(-1, 0, 0, 0, 0, 0, 0, 0)
        profile = JoinProfile(1, 1, 1, 1, 1, 1, 1, 1)
        info = SampleInfo("with_replacement", 10, 5)
        with pytest.raises(ConfigurationError):
            join_variance_from_profile(profile, info, info, 0)
