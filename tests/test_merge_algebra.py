"""Merge algebra: sketches form a commutative monoid under merge.

Linearity is the algebraic foundation of both distributed sketching and
the parallel engine, so it is tested as algebra: associativity,
commutativity, and the empty-sketch identity, for every sketch type and
every kernel backend — plus the hardened ``check_mergeable`` validation
raising typed :class:`~repro.errors.MergeError` on every incompatibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IncompatibleSketchError, MergeError
from repro.kernels import available_backends, use_backend
from repro.sketches.agms import AgmsSketch
from repro.sketches.base import Sketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.fagms import FagmsSketch

SEED = 404


def _usable_backends() -> list:
    usable = []
    for name in available_backends():
        try:
            with use_backend(name):
                pass
        except Exception:
            continue
        usable.append(name)
    return usable


def _make(kind: str) -> Sketch:
    if kind == "agms":
        return AgmsSketch(16, seed=SEED)
    if kind == "fagms":
        return FagmsSketch(64, rows=3, seed=SEED)
    return CountMinSketch(64, rows=3, seed=SEED)


SKETCH_KINDS = ("agms", "fagms", "countmin")


@pytest.fixture
def streams() -> tuple:
    rng = np.random.default_rng(0xA1)
    return tuple(rng.integers(0, 500, size=3_000) for _ in range(3))


def _sketch_of(kind: str, keys) -> Sketch:
    sketch = _make(kind)
    sketch.update(keys)
    return sketch


# ----------------------------------------------------------------------
# Monoid laws, per sketch type x kernel backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", _usable_backends())
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_merge_is_associative(streams, kind, backend):
    with use_backend(backend):
        a_keys, b_keys, c_keys = streams
        left = _sketch_of(kind, a_keys)
        left.merge(_sketch_of(kind, b_keys))
        left.merge(_sketch_of(kind, c_keys))
        bc = _sketch_of(kind, b_keys)
        bc.merge(_sketch_of(kind, c_keys))
        right = _sketch_of(kind, a_keys)
        right.merge(bc)
        assert np.array_equal(left._state(), right._state())


@pytest.mark.parametrize("backend", _usable_backends())
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_merge_is_commutative(streams, kind, backend):
    with use_backend(backend):
        a_keys, b_keys, _ = streams
        ab = _sketch_of(kind, a_keys)
        ab.merge(_sketch_of(kind, b_keys))
        ba = _sketch_of(kind, b_keys)
        ba.merge(_sketch_of(kind, a_keys))
        assert np.array_equal(ab._state(), ba._state())


@pytest.mark.parametrize("backend", _usable_backends())
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_empty_sketch_is_identity(streams, kind, backend):
    with use_backend(backend):
        keys = streams[0]
        merged = _sketch_of(kind, keys)
        merged.merge(_make(kind))  # right identity
        assert np.array_equal(merged._state(), _sketch_of(kind, keys)._state())
        identity = _make(kind)  # left identity
        identity.merge(_sketch_of(kind, keys))
        assert np.array_equal(
            identity._state(), _sketch_of(kind, keys)._state()
        )


@pytest.mark.parametrize("backend", _usable_backends())
@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_merged_sketch_equals_whole_stream_sketch(streams, kind, backend):
    """sketch(A) + sketch(B) + sketch(C) == sketch(A ++ B ++ C), bitwise."""
    with use_backend(backend):
        merged = _make(kind)
        for keys in streams:
            merged.merge(_sketch_of(kind, keys))
        whole = _sketch_of(kind, np.concatenate(streams))
        assert np.array_equal(merged._state(), whole._state())


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_merged_estimates_match_whole_stream(streams, kind):
    """Estimates from merged and whole-stream sketches agree exactly."""
    merged = _make(kind)
    for keys in streams:
        merged.merge(_sketch_of(kind, keys))
    whole = _sketch_of(kind, np.concatenate(streams))
    if kind == "countmin":
        assert merged.point_estimate(7) == whole.point_estimate(7)
    else:
        assert merged.second_moment() == whole.second_moment()


# ----------------------------------------------------------------------
# Hardened validation: typed MergeError on every incompatibility
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_merge_rejects_different_type(kind):
    sketch = _make(kind)
    other = AgmsSketch(16, seed=SEED) if kind != "agms" else FagmsSketch(64, rows=3, seed=SEED)
    with pytest.raises(MergeError):
        sketch.merge(other)


def test_merge_rejects_different_shape():
    with pytest.raises(MergeError):
        FagmsSketch(64, rows=3, seed=SEED).merge(FagmsSketch(32, rows=3, seed=SEED))
    with pytest.raises(MergeError):
        AgmsSketch(16, seed=SEED).merge(AgmsSketch(8, seed=SEED))
    with pytest.raises(MergeError):
        CountMinSketch(64, rows=3, seed=SEED).merge(CountMinSketch(64, rows=2, seed=SEED))


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_merge_rejects_different_seed(kind):
    sketch = _make(kind)
    other = type(sketch)
    if kind == "agms":
        mismatched = AgmsSketch(16, seed=SEED + 1)
    elif kind == "fagms":
        mismatched = FagmsSketch(64, rows=3, seed=SEED + 1)
    else:
        mismatched = CountMinSketch(64, rows=3, seed=SEED + 1)
    assert isinstance(mismatched, other)
    with pytest.raises(MergeError):
        sketch.merge(mismatched)


@pytest.mark.parametrize("maker", [
    lambda sf: AgmsSketch(16, seed=SEED, sign_family=sf),
    lambda sf: FagmsSketch(64, rows=3, seed=SEED, sign_family=sf),
])
def test_merge_rejects_different_sign_family(maker):
    """Same seed, same shape, different ξ construction: still rejected."""
    with pytest.raises(MergeError):
        maker("fourwise").merge(maker("eh3"))


def test_merge_error_is_incompatible_sketch_error():
    """Existing guards catching the broader class keep working."""
    with pytest.raises(IncompatibleSketchError):
        AgmsSketch(16, seed=1).merge(AgmsSketch(16, seed=2))


@pytest.mark.parametrize("kind", SKETCH_KINDS)
def test_failed_merge_leaves_counters_untouched(streams, kind):
    sketch = _sketch_of(kind, streams[0])
    before = sketch._state().copy()
    with pytest.raises(MergeError):
        sketch.merge(
            FagmsSketch(16, rows=1, seed=SEED)
            if kind != "fagms"
            else AgmsSketch(4, seed=SEED)
        )
    assert np.array_equal(sketch._state(), before)


def test_check_mergeable_passes_for_compatible(streams):
    a = _sketch_of("fagms", streams[0])
    b = _sketch_of("fagms", streams[1])
    a.check_mergeable(b)  # no raise
