"""Generative-model (i.i.d. stream) estimation — Section VI-B."""

import numpy as np
import pytest

from repro.core import GenerativeModelEstimator
from repro.errors import ConfigurationError, InsufficientDataError
from repro.sketches import FagmsSketch
from repro.streams import zipf_relation


@pytest.fixture
def population():
    return zipf_relation(20_000, 1_000, skew=1.0, seed=30)


def _iid_stream(population, size, seed):
    rng = np.random.default_rng(seed)
    return rng.choice(population.keys, size=size, replace=True)


def test_rejects_bad_population_size():
    with pytest.raises(ConfigurationError):
        GenerativeModelEstimator(0, FagmsSketch(16, seed=1))


def test_info_requires_consumption(population):
    estimator = GenerativeModelEstimator(len(population), FagmsSketch(64, seed=1))
    with pytest.raises(InsufficientDataError):
        estimator.info()


def test_info_fields(population):
    estimator = GenerativeModelEstimator(len(population), FagmsSketch(64, seed=1))
    estimator.consume(_iid_stream(population, 500, 1))
    info = estimator.info()
    assert info.scheme == "with_replacement"
    assert info.population_size == len(population)
    assert info.sample_size == 500
    assert estimator.consumed == 500


def test_consumption_accumulates(population):
    estimator = GenerativeModelEstimator(len(population), FagmsSketch(64, seed=1))
    estimator.consume(_iid_stream(population, 300, 1))
    estimator.consume(_iid_stream(population, 200, 2))
    assert estimator.consumed == 500


def test_self_join_needs_two_samples(population):
    estimator = GenerativeModelEstimator(len(population), FagmsSketch(64, seed=1))
    estimator.consume(_iid_stream(population, 1, 1))
    with pytest.raises(InsufficientDataError):
        estimator.self_join_size()


def test_self_join_estimate_close(population):
    estimator = GenerativeModelEstimator(len(population), FagmsSketch(2048, seed=2))
    estimator.consume(_iid_stream(population, 5_000, 3))
    truth = population.self_join_size()
    assert estimator.self_join_size() == pytest.approx(truth, rel=0.35)


def test_join_estimate_between_models():
    population_f = zipf_relation(20_000, 1_000, 1.0, seed=31, shuffle_values=False)
    population_g = zipf_relation(20_000, 1_000, 1.0, seed=32, shuffle_values=False)
    sketch = FagmsSketch(2048, seed=3)
    estimator_f = GenerativeModelEstimator(len(population_f), sketch)
    estimator_g = GenerativeModelEstimator(len(population_g), sketch.copy_empty())
    estimator_f.consume(_iid_stream(population_f, 5_000, 4))
    estimator_g.consume(_iid_stream(population_g, 4_000, 5))
    truth = population_f.join_size(population_g)
    assert estimator_f.join_size(estimator_g) == pytest.approx(truth, rel=0.5)


def test_density_views(population):
    estimator = GenerativeModelEstimator(len(population), FagmsSketch(2048, seed=6))
    estimator.consume(_iid_stream(population, 5_000, 7))
    n = len(population)
    assert estimator.second_moment_density() == pytest.approx(
        estimator.self_join_size() / n**2
    )
    other = GenerativeModelEstimator(
        len(population), FagmsSketch(2048, seed=6)
    )
    other.consume(_iid_stream(population, 5_000, 8))
    assert estimator.join_density(other) == pytest.approx(
        estimator.join_size(other) / n**2
    )


def test_density_estimates_collision_probability(population):
    """Σρᵢ² is the probability two i.i.d. draws collide — check empirically."""
    estimator = GenerativeModelEstimator(len(population), FagmsSketch(4096, seed=9))
    estimator.consume(_iid_stream(population, 20_000, 10))
    probabilities = population.frequency_vector().probabilities()
    true_collision = float((probabilities**2).sum())
    assert estimator.second_moment_density() == pytest.approx(
        true_collision, rel=0.3
    )


@pytest.mark.statistical
def test_estimator_unbiased_over_trials(population):
    truth = population.self_join_size()
    estimates = []
    for seed in range(50):
        estimator = GenerativeModelEstimator(
            len(population), FagmsSketch(512, seed=4000 + seed)
        )
        estimator.consume(_iid_stream(population, 2_000, 900 + seed))
        estimates.append(estimator.self_join_size())
    mean = np.mean(estimates)
    standard_error = np.std(estimates) / np.sqrt(len(estimates))
    assert abs(mean - truth) < 5 * standard_error
