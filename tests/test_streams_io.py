"""File-backed stream round trips and guards."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.streams import zipf_relation
from repro.streams.io import (
    read_stream,
    stream_domain_size,
    stream_length,
    stream_to_relation,
    write_stream,
)


@pytest.fixture
def stream_file(tmp_path):
    return tmp_path / "keys.rprs"


def test_round_trip(stream_file):
    relation = zipf_relation(10_000, 500, 1.0, seed=1)
    written = write_stream(stream_file, relation.chunks(1_000), 500)
    assert written == 10_000
    assert stream_domain_size(stream_file) == 500
    assert stream_length(stream_file) == 10_000
    back = stream_to_relation(stream_file)
    assert np.array_equal(back.keys, relation.keys)
    assert back.domain_size == 500


def test_chunked_read_boundaries(stream_file):
    keys = np.arange(1000) % 97
    write_stream(stream_file, [keys], 97)
    chunks = list(read_stream(stream_file, chunk_size=333))
    assert [c.size for c in chunks] == [333, 333, 333, 1]
    assert np.array_equal(np.concatenate(chunks), keys)


def test_empty_stream(stream_file):
    write_stream(stream_file, [], 10)
    assert stream_length(stream_file) == 0
    assert list(read_stream(stream_file)) == []
    relation = stream_to_relation(stream_file)
    assert len(relation) == 0
    assert relation.domain_size == 10


def test_append(stream_file):
    write_stream(stream_file, [np.array([1, 2])], 10)
    write_stream(stream_file, [np.array([3])], 10, append=True)
    assert stream_length(stream_file) == 3
    assert np.array_equal(stream_to_relation(stream_file).keys, [1, 2, 3])


def test_append_domain_mismatch(stream_file):
    write_stream(stream_file, [np.array([1])], 10)
    with pytest.raises(DomainError):
        write_stream(stream_file, [np.array([1])], 20, append=True)


def test_out_of_domain_keys_rejected(stream_file):
    with pytest.raises(DomainError):
        write_stream(stream_file, [np.array([10])], 10)
    with pytest.raises(DomainError):
        write_stream(stream_file, [np.array([-1])], 10)


def test_bad_header_detected(tmp_path):
    bogus = tmp_path / "not_a_stream.bin"
    bogus.write_bytes(b"GARBAGEGARBAGE")
    with pytest.raises(ConfigurationError):
        stream_length(bogus)
    with pytest.raises(ConfigurationError):
        list(read_stream(bogus))


def test_truncated_payload_detected(stream_file):
    write_stream(stream_file, [np.array([1, 2, 3])], 10)
    raw = stream_file.read_bytes()
    stream_file.write_bytes(raw[:-3])  # cut mid-key
    with pytest.raises(ConfigurationError):
        stream_length(stream_file)


def test_max_tuples_guard(stream_file):
    write_stream(stream_file, [np.arange(100)], 100)
    with pytest.raises(ConfigurationError):
        stream_to_relation(stream_file, max_tuples=50)
    relation = stream_to_relation(stream_file, max_tuples=100)
    assert len(relation) == 100


def test_streaming_consumption_feeds_sketch(stream_file):
    """End to end: spill to disk, re-stream through a shedding sketcher."""
    from repro.core import SheddingSketcher
    from repro.sketches import FagmsSketch

    relation = zipf_relation(20_000, 1_000, 1.0, seed=2)
    write_stream(stream_file, relation.chunks(4_096), 1_000)
    sketcher = SheddingSketcher(FagmsSketch(1_024, seed=3), p=0.2, seed=4)
    for chunk in read_stream(stream_file, chunk_size=4_096):
        sketcher.process(chunk)
    truth = relation.self_join_size()
    assert sketcher.self_join_size() == pytest.approx(truth, rel=0.35)
