"""±1 families: values, balance, and k-wise independence (empirically)."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.hashing import EH3SignFamily, FourWiseSignFamily

FAMILIES = [FourWiseSignFamily, EH3SignFamily]


@pytest.mark.parametrize("family_cls", FAMILIES)
class TestSignFamilyContract:
    def test_values_are_plus_minus_one(self, family_cls):
        family = family_cls(rows=3, seed=1)
        signs = family(np.arange(500))
        assert signs.shape == (3, 500)
        assert set(np.unique(signs)) <= {-1, 1}

    def test_deterministic(self, family_cls):
        keys = np.arange(100)
        assert np.array_equal(
            family_cls(2, seed=9)(keys), family_cls(2, seed=9)(keys)
        )

    def test_evaluate_row_matches_call(self, family_cls):
        family = family_cls(rows=4, seed=5)
        keys = np.arange(50)
        full = family(keys)
        for row in range(4):
            assert np.array_equal(family.evaluate_row(row, keys), full[row])

    def test_row_out_of_range(self, family_cls):
        family = family_cls(rows=2, seed=5)
        with pytest.raises(IndexError):
            family.evaluate_row(5, np.arange(3))

    def test_rejects_zero_rows(self, family_cls):
        with pytest.raises(ConfigurationError):
            family_cls(rows=0)

    def test_rejects_negative_keys(self, family_cls):
        family = family_cls(rows=1, seed=1)
        with pytest.raises(DomainError):
            family(np.array([-3]))

    def test_roughly_balanced(self, family_cls):
        family = family_cls(rows=1, seed=31)
        signs = family.evaluate_row(0, np.arange(20_000)).astype(np.float64)
        # mean should be within ~5 standard errors of 0
        assert abs(signs.mean()) < 5 / np.sqrt(20_000)

    def test_rows_decorrelated(self, family_cls):
        family = family_cls(rows=2, seed=17)
        signs = family(np.arange(20_000)).astype(np.float64)
        correlation = (signs[0] * signs[1]).mean()
        assert abs(correlation) < 5 / np.sqrt(20_000)


def _empirical_kwise_bias(family, k: int, n_keys: int) -> float:
    """Max |E[ξ_{i1}···ξ_{ik}]| over random k-subsets, across many rows.

    For a k-wise independent family the product expectation over *rows* is
    0 for distinct keys; the empirical mean over R rows has standard error
    1/sqrt(R).
    """
    rows = family.rows
    keys = np.arange(n_keys)
    signs = family(keys).astype(np.float64)  # (rows, n_keys)
    rng = np.random.default_rng(1234)
    worst = 0.0
    for _ in range(30):
        subset = rng.choice(n_keys, size=k, replace=False)
        product = np.ones(rows)
        for key in subset:
            product *= signs[:, key]
        worst = max(worst, abs(product.mean()))
    return worst


def test_fourwise_family_is_4wise_unbiased():
    family = FourWiseSignFamily(rows=4000, seed=5)
    for k in (1, 2, 3, 4):
        assert _empirical_kwise_bias(family, k, 40) < 6 / np.sqrt(4000)


def test_eh3_family_is_3wise_unbiased():
    family = EH3SignFamily(rows=4000, seed=6)
    for k in (1, 2, 3):
        assert _empirical_kwise_bias(family, k, 40) < 6 / np.sqrt(4000)


def test_eh3_exact_three_wise_over_small_seed_space():
    """Exhaustive check of EH3 3-wise independence over all seeds (4 bits).

    With ``bits=4`` the seed space is s0 ∈ {0,1} × S ∈ [0,16): averaging the
    product ξ(i)ξ(j)ξ(k) over *all* seeds must give exactly 0 for distinct
    keys — that is the definition of (exact) 3-wise independence for a
    ±1 family with zero means.
    """
    keys = np.arange(16)
    products = {}
    total = np.zeros((16, 16, 16))
    for s0 in (0, 1):
        for s in range(16):
            family = EH3SignFamily(rows=1, bits=4)
            # Overwrite the random seed with the enumerated one.
            family._s0[0] = s0
            family._seeds[0] = s
            signs = family.evaluate_row(0, keys).astype(np.int64)
            total += (
                signs[:, None, None] * signs[None, :, None] * signs[None, None, :]
            )
    for i, j, k in itertools.combinations(range(16), 3):
        assert total[i, j, k] == 0, (i, j, k)
    _ = products
