"""Polynomial hash families: ranges, determinism, statistical uniformity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.hashing import MERSENNE_P31, BucketHashFamily, PolynomialHashFamily


class TestPolynomialHashFamily:
    def test_output_shape_and_range(self):
        family = PolynomialHashFamily(4, rows=3, seed=1)
        values = family(np.arange(100))
        assert values.shape == (3, 100)
        assert values.max() < MERSENNE_P31

    def test_deterministic_given_seed(self):
        keys = np.arange(50)
        a = PolynomialHashFamily(2, 2, seed=5)(keys)
        b = PolynomialHashFamily(2, 2, seed=5)(keys)
        assert np.array_equal(a, b)

    def test_rows_differ(self):
        family = PolynomialHashFamily(2, 2, seed=5)
        values = family(np.arange(1000))
        assert not np.array_equal(values[0], values[1])

    def test_evaluate_row_matches_call(self):
        family = PolynomialHashFamily(3, 4, seed=9)
        keys = np.arange(64)
        full = family(keys)
        for row in range(4):
            assert np.array_equal(family.evaluate_row(row, keys), full[row])

    def test_evaluate_row_out_of_range(self):
        family = PolynomialHashFamily(2, 2, seed=5)
        with pytest.raises(IndexError):
            family.evaluate_row(2, np.arange(4))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PolynomialHashFamily(0, 1)
        with pytest.raises(ConfigurationError):
            PolynomialHashFamily(2, 0)

    def test_rejects_out_of_range_keys(self):
        family = PolynomialHashFamily(2, 1, seed=1)
        with pytest.raises(DomainError):
            family(np.array([-1]))
        with pytest.raises(DomainError):
            family(np.array([MERSENNE_P31]))
        with pytest.raises(DomainError):
            family(np.array([[1, 2]]))
        with pytest.raises(DomainError):
            family(np.array([0.5]))

    def test_empty_keys(self):
        family = PolynomialHashFamily(2, 2, seed=1)
        assert family(np.array([], dtype=np.int64)).shape == (2, 0)

    def test_leading_coefficient_nonzero(self):
        family = PolynomialHashFamily(4, rows=200, seed=3)
        assert np.all(family.coefficients[:, 0] != 0)

    def test_matches_direct_polynomial(self):
        family = PolynomialHashFamily(3, 1, seed=13)
        a2, a1, a0 = (int(c) for c in family.coefficients[0])
        keys = np.array([0, 1, 12345, 10**6])
        expected = [
            ((a2 * x + a1) * x + a0) % MERSENNE_P31 for x in keys.tolist()
        ]
        assert family.evaluate_row(0, keys).tolist() == expected

    def test_pairwise_uniformity_chi_square(self):
        # 2-universal family should spread sequential keys uniformly.
        family = PolynomialHashFamily(2, 1, seed=77)
        values = family.evaluate_row(0, np.arange(20_000))
        bins = (values % np.uint64(16)).astype(int)
        counts = np.bincount(bins, minlength=16)
        expected = 20_000 / 16
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # 15 dof; 99.9th percentile ~ 37.7
        assert chi2 < 45


class TestBucketHashFamily:
    def test_range(self):
        family = BucketHashFamily(buckets=10, rows=3, seed=2)
        buckets = family(np.arange(1000))
        assert buckets.min() >= 0
        assert buckets.max() < 10
        assert buckets.dtype == np.int64

    def test_single_row_matches_call(self):
        family = BucketHashFamily(buckets=7, rows=2, seed=4)
        keys = np.arange(100)
        full = family(keys)
        assert np.array_equal(family.evaluate_row(1, keys), full[1])

    def test_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            BucketHashFamily(0, 1)
        with pytest.raises(ConfigurationError):
            BucketHashFamily(MERSENNE_P31, 1)

    def test_bucket_balance(self):
        family = BucketHashFamily(buckets=64, rows=1, seed=8)
        buckets = family.evaluate_row(0, np.arange(64 * 500))
        counts = np.bincount(buckets, minlength=64)
        expected = 500
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # 63 dof; 99.9th percentile ~ 103
        assert chi2 < 120
