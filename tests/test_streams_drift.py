"""Drift generators: shifted, mixture, multi-phase streams."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams import ZipfDistribution
from repro.streams.drift import (
    drifting_stream,
    mixture_relation,
    shifted_zipf_relation,
)


class TestShiftedZipf:
    def test_same_profile_different_keys(self):
        base = shifted_zipf_relation(20_000, 1_000, 1.5, shift=0, seed=1)
        moved = shifted_zipf_relation(20_000, 1_000, 1.5, shift=500, seed=1)
        base_counts = np.sort(base.frequency_vector().counts)
        moved_counts = np.sort(moved.frequency_vector().counts)
        # Identical sorted count profiles (same seed, rotated mapping).
        assert np.array_equal(base_counts, moved_counts)
        # But tiny overlap: heavy hitters moved away.
        assert base.join_size(moved) < 0.2 * base.self_join_size()

    def test_shift_wraps_domain(self):
        relation = shifted_zipf_relation(1_000, 50, 1.0, shift=49, seed=2)
        assert relation.keys.max() < 50

    def test_shift_validation(self):
        with pytest.raises(ConfigurationError):
            shifted_zipf_relation(100, 50, 1.0, shift=50)
        with pytest.raises(ConfigurationError):
            shifted_zipf_relation(100, 50, 1.0, shift=-1)


class TestMixture:
    def test_endpoints(self):
        old = ZipfDistribution(100, 2.0, shuffle_values=False)
        new = ZipfDistribution(100, 0.0, shuffle_values=False)
        pure_old = mixture_relation(5_000, old, new, weight=0.0, seed=3)
        pure_new = mixture_relation(5_000, old, new, weight=1.0, seed=3)
        # Zipf(2) concentrates mass; uniform does not.
        assert pure_old.self_join_size() > 3 * pure_new.self_join_size()

    def test_intermediate_weight_interpolates(self):
        old = ZipfDistribution(100, 2.0, shuffle_values=False)
        new = ZipfDistribution(100, 0.0, shuffle_values=False)
        f2 = {
            w: mixture_relation(20_000, old, new, weight=w, seed=4).self_join_size()
            for w in (0.0, 0.5, 1.0)
        }
        assert f2[0.0] > f2[0.5] > f2[1.0]

    def test_validation(self):
        old = ZipfDistribution(100, 1.0)
        new = ZipfDistribution(200, 1.0)
        with pytest.raises(ConfigurationError):
            mixture_relation(10, old, new, weight=0.5)
        same = ZipfDistribution(100, 1.0)
        with pytest.raises(ConfigurationError):
            mixture_relation(10, old, same, weight=1.5)

    def test_total_count(self):
        old = ZipfDistribution(10, 1.0, shuffle_values=False)
        new = ZipfDistribution(10, 0.0, shuffle_values=False)
        assert len(mixture_relation(777, old, new, weight=0.3, seed=5)) == 777


class TestDriftingStream:
    def test_phase_lengths(self):
        a = ZipfDistribution(50, 1.0, shuffle_values=False)
        b = ZipfDistribution(50, 0.0, shuffle_values=False)
        stream = drifting_stream([(100, a), (200, b), (50, a)], seed=6)
        assert len(stream) == 350
        assert stream.domain_size == 50

    def test_phase_boundary_visible_to_monitor(self):
        """A tumbling monitor flags the phase switch as drift."""
        from repro.core.windows import TumblingWindowSketcher

        heavy_low = ZipfDistribution(2_000, 1.5, shuffle_values=False)
        heavy_high = ZipfDistribution(2_000, 1.5, shuffle_values=False, seed=1)
        # Rotate the second phase's identity by building shifted keys:
        stream_a = drifting_stream([(20_000, heavy_low)], seed=7)
        stream_b = shifted_zipf_relation(20_000, 2_000, 1.5, shift=1_000, seed=8)
        keys = np.concatenate([stream_a.keys, stream_b.keys])
        monitor = TumblingWindowSketcher(20_000, buckets=2_048, seed=9)
        monitor.process(keys)
        drift = monitor.drift()
        assert drift is not None and drift < 0.5
        _ = heavy_high

    def test_validation(self):
        a = ZipfDistribution(50, 1.0)
        b = ZipfDistribution(60, 1.0)
        with pytest.raises(ConfigurationError):
            drifting_stream([])
        with pytest.raises(ConfigurationError):
            drifting_stream([(10, a), (10, b)])
        with pytest.raises(ConfigurationError):
            drifting_stream([(-5, a)])
