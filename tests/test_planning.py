"""Shedding-rate planner: monotonicity, targets, empirical validation."""

import pytest

from repro.core import plan_shedding_rate, predict_relative_error
from repro.errors import ConfigurationError, EstimationError
from repro.frequency import FrequencyVector
from repro.streams.synthetic import zipf_frequency_vector


@pytest.fixture(scope="module")
def workload():
    return zipf_frequency_vector(50_000, 2_000, 1.0, seed=80, shuffle_values=False)


class TestPrediction:
    def test_error_monotone_in_p(self, workload):
        errors = [
            predict_relative_error(workload, p, 1000)
            for p in (0.001, 0.01, 0.1, 1.0)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_error_monotone_in_n(self, workload):
        errors = [
            predict_relative_error(workload, 0.1, n) for n in (100, 1_000, 10_000)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_join_mode(self, workload):
        other = zipf_frequency_vector(
            50_000, 2_000, 1.0, seed=81, shuffle_values=False
        )
        error = predict_relative_error(workload, 0.1, 1000, g=other)
        assert 0 < error < 1

    def test_validation(self, workload):
        with pytest.raises(ConfigurationError):
            predict_relative_error(workload, 0.0, 1000)
        with pytest.raises(ConfigurationError):
            predict_relative_error(workload, 0.5, 0)
        with pytest.raises(EstimationError):
            predict_relative_error(FrequencyVector.zeros(4), 0.5, 10)


class TestPlanner:
    def test_plan_meets_target(self, workload):
        plan = plan_shedding_rate(workload, target_error=0.1, n=1000)
        assert plan.predicted_error <= 0.1
        assert 0 < plan.keep_probability <= 1
        assert plan.speedup == pytest.approx(1 / plan.keep_probability)

    def test_plan_is_nearly_tight(self, workload):
        """A slightly smaller p than recommended should miss the target."""
        plan = plan_shedding_rate(workload, target_error=0.1, n=1000)
        if plan.keep_probability > 2e-6:
            worse = predict_relative_error(
                workload, plan.keep_probability * 0.8, 1000
            )
            assert worse > 0.1 * 0.95

    def test_looser_target_allows_more_shedding(self, workload):
        tight = plan_shedding_rate(workload, target_error=0.08, n=1000)
        loose = plan_shedding_rate(workload, target_error=0.3, n=1000)
        assert loose.keep_probability < tight.keep_probability
        assert loose.speedup > tight.speedup

    def test_unreachable_target_raises(self, workload):
        with pytest.raises(EstimationError):
            plan_shedding_rate(workload, target_error=1e-9, n=10)

    def test_bad_target_rejected(self, workload):
        with pytest.raises(ConfigurationError):
            plan_shedding_rate(workload, target_error=0.0, n=100)

    @pytest.mark.statistical
    def test_plan_holds_empirically(self, workload):
        """Run the real pipeline at the planned rate: the observed error
        should violate the (confidence-level) target rarely."""
        from repro.core import estimate_self_join_size, sketch_over_sample
        from repro.sampling import BernoulliSampler
        from repro.sketches import FagmsSketch

        n = 1000
        plan = plan_shedding_rate(
            workload, target_error=0.1, n=n, confidence=0.95
        )
        truth = workload.f2
        violations = 0
        trials = 40
        for seed in range(trials):
            sketch = FagmsSketch(n, seed=600 + seed)
            info = sketch_over_sample(
                workload, BernoulliSampler(plan.keep_probability), sketch, seed=seed
            )
            estimate = estimate_self_join_size(sketch, info).value
            if abs(estimate - truth) / truth > 0.1:
                violations += 1
        # 95% confidence → ~5% violations expected; allow up to 15%.
        assert violations <= 6
