"""Set-expression estimators vs. merged-offline sketches and ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import OnlineStatisticsEngine
from repro.errors import ConfigurationError
from repro.serving.expressions import (
    EXPRESSION_OPS,
    evaluate_expression,
)
from repro.sketches import FagmsSketch


def engines_for(streams, *, buckets=512, rows=5, seed=99):
    """One engine per named stream, all sharing one seed."""
    pairs = []
    for name, keys, total in streams:
        engine = OnlineStatisticsEngine(buckets=buckets, rows=rows, seed=seed)
        engine.register(name, total)
        engine.consume(name, keys)
        pairs.append((engine.snapshot(), name))
    return pairs


class TestUnionAgainstMonoidMerge:
    """At a full scan, the row-level composition must be *identical* to
    sketching the concatenated stream directly — the sketches are linear,
    so the bag union is literally the summed sketch."""

    def test_two_stream_union_equals_merged_sketch(self):
        rng = np.random.default_rng(31)
        a = rng.integers(0, 400, size=3000)
        b = rng.integers(200, 600, size=2500)
        pairs = engines_for([("a", a, a.size), ("b", b, b.size)])
        union = evaluate_expression("union", pairs)

        merged = FagmsSketch(512, 5, seed=99)
        merged.update(np.concatenate([a, b]))
        # Shared seed => shared hash families => direct comparison is valid.
        assert union.estimate == pytest.approx(
            merged.second_moment(), rel=1e-9
        )

    def test_three_stream_union_equals_merged_sketch(self):
        rng = np.random.default_rng(32)
        chunks = [rng.integers(0, 300, size=n) for n in (1200, 900, 1500)]
        pairs = engines_for(
            [(f"s{i}", keys, keys.size) for i, keys in enumerate(chunks)]
        )
        union = evaluate_expression("union", pairs)
        merged = FagmsSketch(512, 5, seed=99)
        merged.update(np.concatenate(chunks))
        assert union.estimate == pytest.approx(
            merged.second_moment(), rel=1e-9
        )

    def test_single_row_union_equals_merged_sketch(self):
        # rows=1 exercises the degenerate combine (no median to hide in).
        rng = np.random.default_rng(33)
        a = rng.integers(0, 200, size=1000)
        b = rng.integers(100, 300, size=800)
        pairs = engines_for([("a", a, a.size), ("b", b, b.size)], rows=1)
        union = evaluate_expression("union", pairs)
        merged = FagmsSketch(512, 1, seed=99)
        merged.update(np.concatenate([a, b]))
        assert union.estimate == pytest.approx(
            merged.second_moment(), rel=1e-9
        )


class TestSetAlgebraOnIndicatorStreams:
    """Indicator (0/1 frequency) streams make the set semantics exact:
    intersection is |A ∩ B|, set_union is |A ∪ B|."""

    @staticmethod
    def indicator_pairs():
        a = np.arange(0, 600)  # {0..599}
        b = np.arange(400, 900)  # {400..899}; overlap = 200, union = 900
        return engines_for(
            [("a", a, a.size), ("b", b, b.size)], buckets=1024, rows=7
        )

    def test_intersection_estimates_overlap(self):
        result = evaluate_expression("intersection", self.indicator_pairs())
        assert result.estimate == pytest.approx(200.0, rel=0.2)
        assert result.variance_bound > 0

    def test_set_union_estimates_distinct_count(self):
        result = evaluate_expression("set_union", self.indicator_pairs())
        assert result.estimate == pytest.approx(900.0, rel=0.2)

    def test_inclusion_exclusion_consistency(self):
        # set_union + intersection == F2(A) + F2(B).  The identity is
        # row-level; with one row the combine is trivial, so it must
        # hold exactly for the final estimates too.
        a = np.arange(0, 600)
        b = np.arange(400, 900)
        pairs = engines_for(
            [("a", a, a.size), ("b", b, b.size)], buckets=1024, rows=1
        )
        union = evaluate_expression("set_union", pairs).estimate
        inter = evaluate_expression("intersection", pairs).estimate
        f2_sum = sum(snap.self_join_size(name) for snap, name in pairs)
        assert union + inter == pytest.approx(f2_sum, rel=1e-9)


class TestPartialScanComposition:
    def test_expression_uses_unbiased_prefix_terms(self):
        # Half-scanned streams: each term is WOR-corrected, so the union
        # should still land near the full-data truth.
        rng = np.random.default_rng(40)
        a = rng.integers(0, 400, size=4000)
        b = rng.integers(200, 600, size=4000)
        truth = float((np.bincount(np.concatenate([a, b])) ** 2).sum())
        pairs = []
        for name, keys in (("a", a), ("b", b)):
            engine = OnlineStatisticsEngine(buckets=2048, rows=7, seed=3)
            engine.register(name, keys.size)
            engine.consume(name, keys[: keys.size // 2])
            pairs.append((engine.snapshot(), name))
        result = evaluate_expression("union", pairs)
        assert result.estimate == pytest.approx(truth, rel=0.25)
        # Sampling at alpha=0.5 must widen the bound vs. the full scan.
        full = evaluate_expression(
            "union", engines_for([("a", a, a.size), ("b", b, b.size)])
        )
        assert result.variance_bound > full.variance_bound


class TestValidation:
    def test_unknown_op_raises(self):
        pairs = engines_for([("a", np.arange(10), 10), ("b", np.arange(10), 10)])
        with pytest.raises(ConfigurationError):
            evaluate_expression("xor", pairs)

    def test_arity_is_enforced(self):
        pairs = engines_for(
            [(name, np.arange(10), 10) for name in ("a", "b", "c")]
        )
        with pytest.raises(ConfigurationError):
            evaluate_expression("intersection", pairs)
        with pytest.raises(ConfigurationError):
            evaluate_expression("union", pairs[:1])

    def test_duplicate_streams_raise(self):
        pairs = engines_for([("a", np.arange(10), 10)])
        with pytest.raises(ConfigurationError):
            evaluate_expression("union", [pairs[0], pairs[0]])

    def test_short_prefix_raises(self):
        engine = OnlineStatisticsEngine(buckets=64, seed=1)
        engine.register("a", 10)
        engine.consume("a", np.array([1]))
        other = OnlineStatisticsEngine(buckets=64, seed=1)
        other.register("b", 10)
        other.consume("b", np.arange(5))
        with pytest.raises(ConfigurationError):
            evaluate_expression(
                "union", [(engine.snapshot(), "a"), (other.snapshot(), "b")]
            )

    def test_op_table_is_consistent(self):
        assert set(EXPRESSION_OPS) == {"union", "intersection", "set_union"}
        for low, high in EXPRESSION_OPS.values():
            assert low >= 2
            assert high is None or high >= low
