"""Concurrent ingest + query consistency.

The serving contract under concurrency, asserted end to end:

* **Generation monotonicity** — every reader thread observes a
  non-decreasing sequence of snapshot generations (no time travel, no
  torn publication).
* **Prefix bit-identity** — every estimate served DURING the live scan
  is bit-identical to an offline engine replaying exactly the same
  ``scanned``-tuple prefix of the same key stream with the same seed.
  Serving adds concurrency, not approximation.
* **Set-expression consistency** — expressions served from concurrently
  rotating snapshots match an offline evaluation over the same two
  prefixes, bit for bit.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import ConfigurationError, EstimationError
from repro.serving import RotationPolicy, SketchRegistry

BUCKETS, ROWS, SEED = 256, 3, 1234


def paced(chunks, delay=0.002):
    """Yield chunks with a small pause so readers see many generations."""
    for chunk in chunks:
        time.sleep(delay)
        yield chunk


def offline_snapshot(name, keys, total, scanned):
    """A fresh registry replaying exactly *scanned* tuples of *name*."""
    registry = SketchRegistry(buckets=BUCKETS, rows=ROWS, seed=SEED)
    registry.register_stream(name, total)
    if scanned:
        registry.ingest(name, keys[:scanned])
    return registry.snapshot(name)


class Reader(threading.Thread):
    """Polls one stream's snapshot until told to stop."""

    def __init__(self, registry, name, key):
        super().__init__(daemon=True)
        self.registry = registry
        self.stream = name
        self.key = key
        self.generations = []
        self.observations = []  # (scanned, self_join, point)
        self.stop = threading.Event()

    def run(self):
        while not self.stop.is_set():
            snapshot = self.registry.snapshot(self.stream)
            self.generations.append(snapshot.generation)
            scanned = snapshot.scanned_tuples(self.stream)
            if scanned >= 2:
                self.observations.append(
                    (
                        scanned,
                        snapshot.self_join_size(self.stream),
                        snapshot.point_frequency(self.stream, self.key),
                    )
                )


def test_concurrent_readers_see_monotone_bitexact_prefixes():
    total = 8000
    keys = np.random.default_rng(77).integers(0, 300, size=total)
    registry = SketchRegistry(buckets=BUCKETS, rows=ROWS, seed=SEED)
    registry.register_stream("s", total)

    readers = [Reader(registry, "s", key=42) for _ in range(3)]
    for reader in readers:
        reader.start()
    registry.start_ingest("s", paced(np.array_split(keys, 160)))
    registry.wait_ingest("s")
    for reader in readers:
        reader.stop.set()
        reader.join(10.0)

    # Monotone generations per reader, and real concurrency happened:
    # at least one reader saw several distinct mid-scan snapshots.
    for reader in readers:
        assert reader.generations == sorted(reader.generations)
    distinct = {g for reader in readers for g in reader.generations}
    assert len(distinct) > 5

    # One snapshot per scan position: identical scanned => identical
    # estimates across readers (published snapshots are shared state).
    by_scanned = {}
    for reader in readers:
        for scanned, sj, point in reader.observations:
            by_scanned.setdefault(scanned, set()).add((sj, point))
    assert all(len(values) == 1 for values in by_scanned.values())

    # Bit-identity against offline replay of the same prefix.  The
    # replay consumes each prefix in ONE chunk — counter updates are
    # exact integer adds in float64, so chunking cannot matter.
    for scanned in sorted(by_scanned):
        served_sj, served_point = next(iter(by_scanned[scanned]))
        offline = offline_snapshot("s", keys, total, scanned)
        assert served_sj == offline.self_join_size("s")
        assert served_point == offline.point_frequency("s", 42)


def test_expressions_match_merged_offline_evaluation():
    total_a, total_b = 6000, 5000
    rng = np.random.default_rng(5)
    keys_a = rng.integers(0, 400, size=total_a)
    keys_b = rng.integers(200, 600, size=total_b)

    registry = SketchRegistry(
        buckets=BUCKETS,
        rows=ROWS,
        seed=SEED,
        policy=RotationPolicy(every_chunks=2),
    )
    registry.register_stream("a", total_a)
    registry.register_stream("b", total_b)

    observed = []
    stop = threading.Event()

    def query_loop():
        while not stop.is_set():
            try:
                result = registry.expression_query("union", ["a", "b"])
            except (ConfigurationError, EstimationError):
                continue  # a stream is still too short — keep polling
            meta = {m.name: m.scanned for m in result.streams}
            observed.append((meta["a"], meta["b"], result.estimate))

    threads = [threading.Thread(target=query_loop, daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    registry.start_ingest("a", paced(np.array_split(keys_a, 120)))
    registry.start_ingest("b", paced(np.array_split(keys_b, 100)))
    registry.wait_ingest()
    stop.set()
    for thread in threads:
        thread.join(10.0)

    unique = sorted(set(observed))
    assert unique, "readers never caught a queryable snapshot pair"
    # Replaying every pair is wasteful; a spread of ~12 pairs (always
    # including the first and last) covers early, mid, and final scans.
    step = max(1, len(unique) // 12)
    sampled = unique[::step] + [unique[-1]]
    for scanned_a, scanned_b, served in sampled:
        offline = SketchRegistry(buckets=BUCKETS, rows=ROWS, seed=SEED)
        offline.register_stream("a", total_a)
        offline.register_stream("b", total_b)
        offline.ingest("a", keys_a[:scanned_a])
        offline.ingest("b", keys_b[:scanned_b])
        assert served == offline.expression_query("union", ["a", "b"]).estimate
