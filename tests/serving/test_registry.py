"""SketchRegistry: rotation policies, served queries, provenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, InsufficientDataError
from repro.observability import Observer
from repro.serving import QueryResult, RotationPolicy, SketchRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_registry(**kwargs):
    kwargs.setdefault("buckets", 256)
    kwargs.setdefault("rows", 3)
    kwargs.setdefault("seed", 17)
    registry = SketchRegistry(**kwargs)
    registry.register_stream("f", 1000)
    registry.register_stream("g", 800)
    return registry


def fill(registry, *, seed=5):
    rng = np.random.default_rng(seed)
    registry.ingest("f", rng.integers(0, 100, size=600))
    registry.ingest("g", rng.integers(0, 100, size=400))
    return registry


class TestRegistration:
    def test_streams_are_queryable_immediately(self):
        registry = make_registry()
        snap = registry.snapshot("f")
        assert snap.generation == 0
        assert snap.scanned_tuples("f") == 0
        with pytest.raises(InsufficientDataError):
            registry.self_join_query("f")

    def test_duplicate_registration_raises(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError):
            registry.register_stream("f", 10)

    def test_unknown_stream_raises(self):
        with pytest.raises(ConfigurationError):
            make_registry().ingest("nope", np.arange(3))

    def test_bad_policy_raises(self):
        with pytest.raises(ConfigurationError):
            RotationPolicy(every_chunks=0)
        with pytest.raises(ConfigurationError):
            RotationPolicy(min_interval=-1.0)


class TestRotation:
    def test_default_policy_rotates_every_chunk(self):
        registry = make_registry()
        registry.ingest("f", np.arange(10))
        assert registry.snapshot("f").scanned_tuples("f") == 10
        registry.ingest("f", np.arange(5))
        assert registry.snapshot("f").scanned_tuples("f") == 15

    def test_every_chunks_defers_publication(self):
        registry = make_registry(policy=RotationPolicy(every_chunks=3))
        for _ in range(3):
            # Nothing published until the third chunk lands.
            assert registry.snapshot("f").scanned_tuples("f") == 0
            registry.ingest("f", np.arange(10))
        assert registry.snapshot("f").scanned_tuples("f") == 30

    def test_min_interval_gates_rotation(self):
        clock = FakeClock()
        registry = make_registry(
            policy=RotationPolicy(min_interval=10.0), clock=clock
        )
        registry.ingest("f", np.arange(10))  # interval closed: no rotation
        assert registry.snapshot("f").scanned_tuples("f") == 0
        clock.advance(10.0)
        registry.ingest("f", np.arange(10))  # interval open: publishes all
        assert registry.snapshot("f").scanned_tuples("f") == 20

    def test_forced_rotate_bypasses_policy(self):
        registry = make_registry(policy=RotationPolicy(every_chunks=100))
        registry.ingest("f", np.arange(10))
        assert registry.snapshot("f").scanned_tuples("f") == 0
        snap = registry.rotate("f")
        assert snap.scanned_tuples("f") == 10
        assert registry.snapshot("f") is snap

    def test_per_stream_policy_override(self):
        registry = SketchRegistry(buckets=64, seed=1)
        registry.register_stream("eager", 100)
        registry.register_stream(
            "lazy", 100, policy=RotationPolicy(every_chunks=5)
        )
        registry.ingest("eager", np.arange(4))
        registry.ingest("lazy", np.arange(4))
        assert registry.snapshot("eager").scanned_tuples("eager") == 4
        assert registry.snapshot("lazy").scanned_tuples("lazy") == 0


class TestBackgroundIngest:
    def test_start_ingest_drains_and_catches_up(self):
        registry = make_registry(policy=RotationPolicy(every_chunks=3))
        chunks = np.array_split(
            np.random.default_rng(2).integers(0, 50, size=700), 7
        )
        thread = registry.start_ingest("f", chunks)
        registry.wait_ingest("f")
        assert not thread.is_alive()
        # final_rotate publishes the tail even though 7 % 3 != 0.
        assert registry.snapshot("f").scanned_tuples("f") == 700

    def test_double_start_raises(self):
        registry = make_registry()

        def slow_chunks():
            import time

            for _ in range(3):
                time.sleep(0.05)
                yield np.arange(5)

        registry.start_ingest("f", slow_chunks())
        with pytest.raises(ConfigurationError):
            registry.start_ingest("f", [np.arange(5)])
        registry.wait_ingest("f")


class TestQueries:
    def test_query_results_match_snapshot_estimates(self):
        registry = fill(make_registry())
        snap_f = registry.snapshot("f")
        result = registry.self_join_query("f")
        assert isinstance(result, QueryResult)
        assert result.op == "self_join"
        assert result.estimate == snap_f.self_join_size("f")
        assert result.variance_bound == snap_f.self_join_variance_bound("f")
        assert result.interval.low <= result.estimate <= result.interval.high

    def test_point_query(self):
        registry = fill(make_registry())
        result = registry.point_query("f", 7, method="clt")
        assert result.op == "point"
        assert result.estimate == registry.snapshot("f").point_frequency("f", 7)
        assert result.interval.method == "clt"

    def test_join_query_spans_two_streams(self):
        registry = fill(make_registry())
        result = registry.join_query("f", "g")
        assert result.op == "join"
        assert [meta.name for meta in result.streams] == ["f", "g"]
        assert result.estimate != 0.0

    def test_expression_query(self):
        registry = fill(make_registry())
        union = registry.expression_query("union", ["f", "g"])
        intersection = registry.expression_query("intersection", ["f", "g"])
        assert union.op == "union"
        assert union.estimate > intersection.estimate > 0
        assert union.variance_bound > 0

    def test_unknown_interval_method_raises(self):
        registry = fill(make_registry())
        with pytest.raises(ConfigurationError):
            registry.self_join_query("f", method="bootstrap")


class TestProvenance:
    def test_metadata_reports_frozen_scan_position(self):
        registry = fill(make_registry())
        meta = registry.self_join_query("f").streams[0]
        assert meta.name == "f"
        assert meta.scanned == 600
        assert meta.total == 1000
        assert meta.fraction == 0.6
        assert meta.generation == registry.snapshot("f").generation

    def test_staleness_tracks_time_since_rotation(self):
        clock = FakeClock()
        registry = make_registry(clock=clock)
        fill(registry)
        clock.advance(7.5)
        meta = registry.self_join_query("f").streams[0]
        assert meta.staleness_seconds == pytest.approx(7.5)

    def test_queries_see_published_not_live_state(self):
        registry = make_registry(policy=RotationPolicy(every_chunks=100))
        rng = np.random.default_rng(3)
        registry.ingest("f", rng.integers(0, 50, size=300))
        registry.rotate("f")
        published = registry.self_join_query("f")
        registry.ingest("f", rng.integers(0, 50, size=300))  # not rotated
        again = registry.self_join_query("f")
        assert again.estimate == published.estimate
        assert again.streams[0].scanned == 300


class TestDeterminismAndObservability:
    def test_same_seed_registries_serve_identical_estimates(self):
        a = fill(make_registry(seed=123))
        b = fill(make_registry(seed=123))
        assert (
            a.self_join_query("f").estimate == b.self_join_query("f").estimate
        )
        assert a.join_query("f", "g").estimate == (
            b.join_query("f", "g").estimate
        )

    def test_serving_metrics_are_emitted(self):
        observer = Observer(clock=FakeClock())
        registry = fill(make_registry(observer=observer, clock=FakeClock()))
        registry.self_join_query("f")
        registry.join_query("f", "g")
        metrics = observer.metrics.snapshot()
        assert metrics.counter_value("serving.ingest.chunks", stream="f") == 1
        assert metrics.counter_value("serving.rotations", stream="f") >= 1
        assert metrics.counter_value("serving.queries", op="self_join") == 1
        assert metrics.counter_value("serving.queries", op="join") == 1
