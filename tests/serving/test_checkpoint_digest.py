"""Checkpoint byte-stability across the snapshot refactor.

The engine/runtime seam moved checkpoint assembly behind the published
``EngineSnapshot`` path.  These digests were pinned against the
pre-refactor implementation; if either changes, serialized state on disk
is no longer byte-compatible and recovery of old checkpoints breaks.
Do not update the constants to make the test pass — fix the payload.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.engine import OnlineStatisticsEngine
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.governor import LoadGovernor
from repro.resilience.runtime import StreamRuntime, envelope_stream
from repro.sketches import FagmsSketch

ENGINE_DIGEST = "2975e0069ca1963cedb9af3efe0c4b973f2cd7fba2758ae746c4214522bb13fe"
RUNTIME_DIGEST = "3bc7dc672883c5ad645d2d8161bcc31dbd083959c6d1d8fdb200cb8ea4074252"


def _digest(position: int, state: dict, arrays: dict) -> str:
    """Canonical content hash of a checkpoint payload.

    Hashes the JSON state plus each array's name/shape/dtype/bytes —
    NOT the ``.npz`` file itself, whose zip timestamps are not
    deterministic.
    """
    h = hashlib.sha256()
    h.update(
        json.dumps({"position": position, "state": state}, sort_keys=True).encode()
    )
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.shape).encode())
        h.update(arr.dtype.str.encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def test_engine_checkpoint_state_digest_is_pinned():
    engine = OnlineStatisticsEngine(buckets=512, rows=3, seed=1234)
    engine.register("lineitem", 4000)
    engine.register("orders", 1000)
    rng = np.random.default_rng(9)
    engine.consume("lineitem", rng.integers(0, 500, size=1500))
    engine.consume("orders", rng.integers(0, 200, size=400))
    state, arrays = engine.checkpoint_state()
    assert _digest(0, state, arrays) == ENGINE_DIGEST


def test_engine_checkpoint_digest_stable_across_snapshots():
    # Taking query snapshots in between must not perturb the payload.
    engine = OnlineStatisticsEngine(buckets=512, rows=3, seed=1234)
    engine.register("lineitem", 4000)
    engine.register("orders", 1000)
    rng = np.random.default_rng(9)
    engine.consume("lineitem", rng.integers(0, 500, size=1500))
    snap = engine.snapshot()
    snap.statistics()
    engine.consume("orders", rng.integers(0, 200, size=400))
    engine.snapshot().self_join_size("lineitem")
    state, arrays = engine.checkpoint_state()
    assert _digest(0, state, arrays) == ENGINE_DIGEST


def test_stream_runtime_checkpoint_digest_is_pinned(tmp_path):
    runtime = StreamRuntime(
        FagmsSketch(256, 2, seed=77),
        p=0.5,
        seed=11,
        governor=LoadGovernor(1e-3),
        checkpoint_dir=tmp_path,
        checkpoint_every=4,
        clock=lambda: 0.0,
    )
    chunks = np.array_split(
        np.random.default_rng(21).integers(0, 300, size=800), 8
    )
    runtime.run(envelope_stream(chunks))
    latest = CheckpointManager(tmp_path).latest()
    assert latest is not None
    assert (
        _digest(latest.position, latest.state, latest.arrays) == RUNTIME_DIGEST
    )
