"""EngineSnapshot: immutability, copy-on-write publication, estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EngineSnapshot,
    OnlineStatisticsEngine,
    StatisticsSnapshot,
    join_interval_between,
    join_size_between,
)
from repro.errors import (
    ConfigurationError,
    IncompatibleSketchError,
    InsufficientDataError,
)


def make_engine(*, buckets=256, rows=3, seed=42):
    engine = OnlineStatisticsEngine(buckets=buckets, rows=rows, seed=seed)
    engine.register("f", 1000)
    engine.register("g", 800)
    return engine


def fill(engine, *, nf=600, ng=400, seed=5):
    rng = np.random.default_rng(seed)
    engine.consume("f", rng.integers(0, 100, size=nf))
    engine.consume("g", rng.integers(0, 100, size=ng))
    return engine


class TestImmutability:
    def test_counters_are_read_only(self):
        snap = fill(make_engine()).snapshot()
        with pytest.raises(ValueError):
            snap.relation("f").counters[0, 0] = 99.0

    def test_sketch_view_rejects_updates(self):
        snap = fill(make_engine()).snapshot()
        view = snap.sketch_view("f")
        with pytest.raises(ValueError):
            view.update(np.array([1, 2, 3]))

    def test_snapshot_estimates_survive_later_ingestion(self):
        engine = fill(make_engine())
        snap = engine.snapshot()
        before = snap.self_join_size("f")
        point_before = snap.point_frequency("f", 7)
        engine.consume("f", np.full(200, 7))
        assert snap.self_join_size("f") == before
        assert snap.point_frequency("f", 7) == point_before
        # The live engine, by contrast, moved on.
        assert engine.snapshot().self_join_size("f") != before


class TestCopyOnWrite:
    def test_idle_relations_share_published_arrays(self):
        engine = fill(make_engine())
        first = engine.snapshot()
        second = engine.snapshot()
        assert second.relation("f").counters is first.relation("f").counters
        assert second.relation("g").counters is first.relation("g").counters

    def test_only_mutated_relation_is_recopied(self):
        engine = fill(make_engine())
        first = engine.snapshot()
        engine.consume("f", np.array([1, 2, 3]))
        second = engine.snapshot()
        assert second.relation("f").counters is not first.relation("f").counters
        assert second.relation("g").counters is first.relation("g").counters


class TestGenerations:
    def test_generation_counts_total_mutations(self):
        engine = make_engine()
        assert engine.snapshot().generation == 0
        fill(engine)
        assert engine.snapshot().generation == 2
        engine.consume("g", np.array([4]))
        assert engine.snapshot().generation == 3

    def test_generations_are_monotone_across_snapshots(self):
        engine = make_engine()
        generations = []
        rng = np.random.default_rng(0)
        for _ in range(5):
            engine.consume("f", rng.integers(0, 50, size=20))
            generations.append(engine.snapshot().generation)
        assert generations == sorted(generations)
        assert len(set(generations)) == len(generations)


class TestEstimates:
    def test_estimates_match_live_engine_bit_for_bit(self):
        engine = fill(make_engine())
        snap = engine.snapshot()
        assert snap.self_join_size("f") == engine.self_join_size("f")
        assert snap.self_join_size("g") == engine.self_join_size("g")
        assert snap.join_size("f", "g") == engine.join_size("f", "g")

    def test_point_frequency_scales_to_full_relation(self):
        engine = make_engine()
        engine.consume("f", np.full(500, 3))  # half the relation, one key
        snap = engine.snapshot()
        # alpha = 0.5: raw prefix estimate is ~500, full-relation ~1000.
        assert snap.point_frequency("f", 3) == pytest.approx(1000.0, rel=0.05)

    def test_join_size_requires_distinct_relations(self):
        snap = fill(make_engine()).snapshot()
        with pytest.raises(ConfigurationError):
            snap.join_size("f", "f")

    def test_unknown_relation_raises(self):
        snap = fill(make_engine()).snapshot()
        with pytest.raises(ConfigurationError):
            snap.self_join_size("nope")

    def test_short_prefix_raises_insufficient_data(self):
        engine = make_engine()
        engine.consume("f", np.array([1]))
        snap = engine.snapshot()
        with pytest.raises(InsufficientDataError):
            snap.self_join_size("f")
        with pytest.raises(InsufficientDataError):
            snap.point_frequency("g", 1)  # g has zero scanned tuples


class TestIntervals:
    def test_interval_brackets_estimate(self):
        snap = fill(make_engine()).snapshot()
        estimate = snap.self_join_size("f")
        interval = snap.self_join_interval("f")
        assert interval.low <= estimate <= interval.high
        assert interval.half_width > 0

    def test_chebyshev_wider_than_clt(self):
        snap = fill(make_engine()).snapshot()
        cheb = snap.self_join_interval("f", method="chebyshev")
        clt = snap.self_join_interval("f", method="clt")
        assert cheb.half_width > clt.half_width

    def test_unknown_method_raises(self):
        snap = fill(make_engine()).snapshot()
        with pytest.raises(ConfigurationError):
            snap.self_join_interval("f", method="bootstrap")

    def test_point_and_join_intervals(self):
        snap = fill(make_engine()).snapshot()
        pt = snap.point_frequency_interval("f", 7)
        assert pt.low <= snap.point_frequency("f", 7) <= pt.high
        join = snap.join_interval("f", "g", method="clt")
        assert join.low <= snap.join_size("f", "g") <= join.high


class TestCrossSnapshotJoins:
    def test_join_between_engines_sharing_a_seed(self):
        a = OnlineStatisticsEngine(buckets=256, rows=3, seed=9)
        b = OnlineStatisticsEngine(buckets=256, rows=3, seed=9)
        a.register("f", 1000)
        b.register("g", 800)
        rng = np.random.default_rng(5)
        a.consume("f", rng.integers(0, 100, size=600))
        b.consume("g", rng.integers(0, 100, size=400))
        cross = join_size_between(a.snapshot(), "f", b.snapshot(), "g")
        # Same sketch families, same data: identical to the one-engine join.
        merged = fill(make_engine(seed=9))
        assert cross == merged.snapshot().join_size("f", "g")
        interval = join_interval_between(a.snapshot(), "f", b.snapshot(), "g")
        assert interval.low <= cross <= interval.high

    def test_mismatched_seeds_raise(self):
        a = OnlineStatisticsEngine(buckets=256, rows=3, seed=1)
        b = OnlineStatisticsEngine(buckets=256, rows=3, seed=2)
        a.register("f", 10)
        b.register("g", 10)
        a.consume("f", np.arange(5))
        b.consume("g", np.arange(5))
        with pytest.raises(IncompatibleSketchError):
            join_size_between(a.snapshot(), "f", b.snapshot(), "g")


class TestCompatibilitySurface:
    def test_statistics_view_matches_accessors(self):
        snap = fill(make_engine()).snapshot()
        stats = snap.statistics()
        assert isinstance(stats, StatisticsSnapshot)
        assert snap.fractions == stats.fractions
        assert snap.self_join_sizes == stats.self_join_sizes
        assert snap.join_sizes == stats.join_sizes
        assert stats.fractions == {"f": 0.6, "g": 0.5}
        assert set(stats.self_join_sizes) == {"f", "g"}
        assert set(stats.join_sizes) == {("f", "g")}

    def test_unscanned_relations_are_omitted_from_estimates(self):
        engine = make_engine()
        engine.consume("f", np.random.default_rng(1).integers(0, 50, 100))
        stats = engine.snapshot().statistics()
        assert set(stats.fractions) == {"f", "g"}
        assert set(stats.self_join_sizes) == {"f"}
        assert stats.join_sizes == {}

    def test_statistics_are_cached(self):
        snap = fill(make_engine()).snapshot()
        assert snap.statistics() is snap.statistics()


class TestCheckpointPayload:
    def test_payload_matches_engine_checkpoint_state(self):
        engine = fill(make_engine())
        state, arrays = engine.checkpoint_state()
        snap_state, snap_arrays = engine.snapshot().checkpoint_payload()
        assert snap_state == state
        assert set(snap_arrays) == set(arrays)
        for name in arrays:
            np.testing.assert_array_equal(snap_arrays[name], arrays[name])

    def test_roundtrip_through_from_checkpoint_state(self):
        engine = fill(make_engine())
        state, arrays = engine.snapshot().checkpoint_payload()
        restored = OnlineStatisticsEngine.from_checkpoint_state(state, arrays)
        assert restored.snapshot().self_join_size("f") == (
            engine.self_join_size("f")
        )
        assert restored.snapshot().join_size("f", "g") == (
            engine.join_size("f", "g")
        )


def test_repr_mentions_generation_and_progress():
    snap = fill(make_engine()).snapshot()
    assert isinstance(snap, EngineSnapshot)
    text = repr(snap)
    assert "generation=2" in text
    assert "f=60%" in text
