"""HTTP front end: routes, JSON shapes, admission responses, errors."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import (
    AdmissionController,
    SketchRegistry,
    TenantPolicy,
    serve_in_thread,
)


def get(url, tenant=None):
    request = urllib.request.Request(url)
    if tenant:
        request.add_header("X-Tenant", tenant)
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(url, payload, tenant=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    if tenant:
        request.add_header("X-Tenant", tenant)
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def error_of(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    err = excinfo.value
    return err.code, json.loads(err.read()), dict(err.headers)


@pytest.fixture(scope="module")
def service():
    registry = SketchRegistry(buckets=512, rows=5, seed=42)
    registry.register_stream("a", 10_000)
    registry.register_stream("b", 8_000)
    rng = np.random.default_rng(1)
    registry.ingest("a", rng.integers(0, 1000, size=5000))
    registry.ingest("b", rng.integers(500, 1500, size=4000))
    with serve_in_thread(registry) as handle:
        yield registry, handle


class TestRoutes:
    def test_healthz(self, service):
        _, handle = service
        status, payload = get(f"{handle.url}/healthz")
        assert status == 200
        assert payload == {"status": "ok", "streams": ["a", "b"]}

    def test_streams_listing(self, service):
        registry, handle = service
        _, payload = get(f"{handle.url}/v1/streams")
        assert payload["streams"]["a"]["scanned"] == 5000
        assert payload["streams"]["a"]["total"] == 10_000
        assert payload["streams"]["a"]["generation"] == (
            registry.snapshot("a").generation
        )

    def test_self_join_matches_in_process_query(self, service):
        registry, handle = service
        status, payload = get(f"{handle.url}/v1/query/self_join?stream=a")
        assert status == 200
        result = registry.self_join_query("a")
        assert payload["op"] == "self_join"
        assert payload["estimate"] == result.estimate
        assert payload["variance_bound"] == result.variance_bound
        assert payload["interval"]["low"] == result.interval.low
        assert payload["interval"]["method"] == "chebyshev"

    def test_point_with_clt_interval(self, service):
        registry, handle = service
        _, payload = get(
            f"{handle.url}/v1/query/point?stream=a&key=7&method=clt"
        )
        assert payload["estimate"] == registry.point_query("a", 7).estimate
        assert payload["interval"]["method"] == "clt"

    def test_join_carries_both_streams_provenance(self, service):
        _, handle = service
        _, payload = get(f"{handle.url}/v1/query/join?left=a&right=b")
        assert set(payload["streams"]) == {"a", "b"}
        meta = payload["streams"]["b"]
        assert meta["scanned"] == 4000
        assert meta["fraction"] == 0.5
        assert meta["staleness_seconds"] >= 0.0

    def test_expression_post(self, service):
        registry, handle = service
        status, payload = post(
            f"{handle.url}/v1/query/expression",
            {"op": "union", "streams": ["a", "b"]},
        )
        assert status == 200
        assert payload["op"] == "union"
        assert payload["estimate"] == (
            registry.expression_query("union", ["a", "b"]).estimate
        )

    def test_tenant_header_is_echoed(self, service):
        _, handle = service
        _, payload = get(
            f"{handle.url}/v1/query/self_join?stream=a", tenant="acme"
        )
        assert payload["tenant"] == "acme"


class TestErrors:
    def test_unknown_route_is_404(self, service):
        _, handle = service
        code, payload, _ = error_of(lambda: get(f"{handle.url}/nope"))
        assert code == 404
        assert "error" in payload

    def test_unknown_stream_is_400(self, service):
        _, handle = service
        code, payload, _ = error_of(
            lambda: get(f"{handle.url}/v1/query/self_join?stream=zzz")
        )
        assert code == 400
        assert "zzz" in payload["error"]

    def test_missing_parameter_is_400(self, service):
        _, handle = service
        code, _, _ = error_of(lambda: get(f"{handle.url}/v1/query/point?stream=a"))
        assert code == 400

    def test_non_integer_key_is_400(self, service):
        _, handle = service
        code, payload, _ = error_of(
            lambda: get(f"{handle.url}/v1/query/point?stream=a&key=x")
        )
        assert code == 400
        assert "integer" in payload["error"]

    def test_expression_get_is_405(self, service):
        _, handle = service
        code, _, _ = error_of(
            lambda: get(f"{handle.url}/v1/query/expression")
        )
        assert code == 405

    def test_bad_expression_body_is_400(self, service):
        _, handle = service
        code, _, _ = error_of(
            lambda: post(f"{handle.url}/v1/query/expression", {"op": "union"})
        )
        assert code == 400

    def test_unknown_interval_method_is_400(self, service):
        _, handle = service
        code, _, _ = error_of(
            lambda: get(
                f"{handle.url}/v1/query/self_join?stream=a&method=bootstrap"
            )
        )
        assert code == 400


class TestAdmission:
    def test_quota_shed_returns_429_with_retry_after(self):
        registry = SketchRegistry(buckets=128, seed=3)
        registry.register_stream("s", 100)
        registry.ingest("s", np.arange(50))
        admission = AdmissionController(
            {"acme": TenantPolicy(qps=1.0, burst=1.0)}
        )
        with serve_in_thread(registry, admission=admission) as handle:
            status, _ = get(
                f"{handle.url}/v1/query/self_join?stream=s", tenant="acme"
            )
            assert status == 200
            code, payload, headers = error_of(
                lambda: get(
                    f"{handle.url}/v1/query/self_join?stream=s", tenant="acme"
                )
            )
            assert code == 429
            assert "quota" in payload["error"]
            assert float(headers["Retry-After"]) > 0
            # Other tenants are not affected by acme's quota.
            status, _ = get(
                f"{handle.url}/v1/query/self_join?stream=s", tenant="other"
            )
            assert status == 200

    def test_health_checks_bypass_admission(self):
        registry = SketchRegistry(buckets=128, seed=3)
        registry.register_stream("s", 100)
        admission = AdmissionController(
            default_policy=TenantPolicy(qps=0.001)
        )
        with serve_in_thread(registry, admission=admission) as handle:
            for _ in range(3):
                status, _ = get(f"{handle.url}/healthz")
                assert status == 200


class TestLifecycle:
    def test_stop_frees_the_port(self):
        registry = SketchRegistry(buckets=64, seed=1)
        registry.register_stream("s", 10)
        handle = serve_in_thread(registry)
        get(f"{handle.url}/healthz")
        handle.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            get(f"{handle.url}/healthz")

    def test_queries_while_ingesting(self):
        registry = SketchRegistry(buckets=256, rows=3, seed=5)
        registry.register_stream("live", 20_000)
        chunks = np.array_split(
            np.random.default_rng(8).integers(0, 500, size=20_000), 100
        )
        with serve_in_thread(registry) as handle:
            registry.start_ingest("live", chunks)
            seen = []
            while True:
                try:
                    _, payload = get(
                        f"{handle.url}/v1/query/self_join?stream=live"
                    )
                    seen.append(payload["streams"]["live"]["generation"])
                except urllib.error.HTTPError:
                    pass  # early snapshots may be too short to estimate
                if seen and seen[-1] >= 100:
                    break
            registry.wait_ingest("live")
            assert seen == sorted(seen)  # served generations are monotone
