"""Admission control: tenant quotas, overload thinning, observability."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.observability import Observer
from repro.resilience.governor import LoadGovernor
from repro.serving import AdmissionController, TenantPolicy


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTenantPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantPolicy(qps=0.0)
        with pytest.raises(ConfigurationError):
            TenantPolicy(qps=1.0, burst=0.5)


class TestQuotaGate:
    def test_burst_then_shed_with_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(
            {"acme": TenantPolicy(qps=2.0, burst=2.0)}, clock=clock
        )
        assert controller.admit("acme").admitted
        assert controller.admit("acme").admitted
        shed = controller.admit("acme")
        assert not shed.admitted
        assert shed.reason == "quota"
        # Bucket empty: the next token arrives in 1/qps seconds.
        assert shed.retry_after == pytest.approx(0.5)

    def test_tokens_refill_with_the_clock(self):
        clock = FakeClock()
        controller = AdmissionController(
            {"acme": TenantPolicy(qps=2.0)}, clock=clock
        )
        assert controller.admit("acme").admitted
        assert not controller.admit("acme").admitted
        clock.advance(0.5)  # one token refilled
        assert controller.admit("acme").admitted

    def test_quotas_are_per_tenant(self):
        clock = FakeClock()
        controller = AdmissionController(
            {"a": TenantPolicy(qps=1.0), "b": TenantPolicy(qps=1.0)},
            clock=clock,
        )
        assert controller.admit("a").admitted
        assert not controller.admit("a").admitted
        assert controller.admit("b").admitted  # b's bucket is untouched

    def test_default_policy_covers_unlisted_tenants(self):
        clock = FakeClock()
        controller = AdmissionController(
            default_policy=TenantPolicy(qps=1.0), clock=clock
        )
        assert controller.admit("anyone").admitted
        assert not controller.admit("anyone").admitted

    def test_no_policy_admits_freely(self):
        controller = AdmissionController(clock=FakeClock())
        assert all(controller.admit("guest").admitted for _ in range(100))


class TestOverloadGate:
    @staticmethod
    def overloaded_controller(clock):
        # Budget of 1ms/query against observed 100ms latencies: the
        # governor proposes a keep-probability well below 1.
        controller = AdmissionController(
            governor=LoadGovernor(1e-3, deadband=0.0),
            clock=clock,
        )
        for _ in range(5):
            controller.admit("t")
            controller.observe(0.1)
        return controller

    def test_latency_overload_triggers_thinning(self):
        controller = self.overloaded_controller(FakeClock())
        p = controller.keep_probability
        assert p < 1.0
        decisions = [controller.admit("t") for _ in range(200)]
        admitted = sum(d.admitted for d in decisions)
        # Deterministic thinning tracks p within one query.
        assert admitted == pytest.approx(200 * p, abs=1.0)
        shed = next(d for d in decisions if not d.admitted)
        assert shed.reason == "overload"
        assert shed.retry_after > 0

    def test_thinning_is_deterministic(self):
        a = self.overloaded_controller(FakeClock())
        b = self.overloaded_controller(FakeClock())
        pattern_a = [a.admit("t").admitted for _ in range(50)]
        pattern_b = [b.admit("t").admitted for _ in range(50)]
        assert pattern_a == pattern_b

    def test_recovery_restores_admission(self):
        controller = self.overloaded_controller(FakeClock())
        assert controller.keep_probability < 1.0
        # Cheap queries let the governor walk the rate back up.
        for _ in range(200):
            controller.observe(1e-5)
            controller.admit("t")
        assert controller.keep_probability == 1.0

    def test_observe_without_governor_is_a_noop(self):
        controller = AdmissionController(clock=FakeClock())
        controller.observe(10.0)
        assert controller.keep_probability == 1.0
        assert controller.admit("t").admitted


class TestObservability:
    def test_decisions_are_counted_by_tenant_and_reason(self):
        clock = FakeClock()
        observer = Observer(clock=clock)
        controller = AdmissionController(
            {"acme": TenantPolicy(qps=1.0)}, clock=clock, observer=observer
        )
        controller.admit("acme")
        controller.admit("acme")
        metrics = observer.metrics.snapshot()
        assert (
            metrics.counter_value("serving.admission", tenant="acme", reason="ok")
            == 1
        )
        assert (
            metrics.counter_value(
                "serving.admission", tenant="acme", reason="quota"
            )
            == 1
        )
