"""Fused multi-sketch updates: bit-identity with the separate path.

The contract (``src/repro/kernels/fused.py``): for every backend, sketch
mix, sign family, key dtype, and weighting, ``fused_update(sketches,
keys, weights)`` leaves every counter array **bit-identical** to calling
each sketch's ``update()`` individually — fusion changes how many passes
the chunk takes, never a single bit of the result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.kernels import (
    FusedPlan,
    available_backends,
    fused_update,
    make_fused_plan,
    use_backend,
)
from repro.observability import Observer, profile_kernels
from repro.sketches.agms import AgmsSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.fagms import FagmsSketch


def _usable_backends() -> list:
    usable = []
    for name in available_backends():
        try:
            with use_backend(name):
                pass
        except Exception:
            continue
        usable.append(name)
    return usable


BACKENDS = _usable_backends()


def _trio(sign_family: str = "fourwise") -> list:
    """The canonical co-maintained mix: AGMS + F-AGMS + Count-Min."""
    return [
        AgmsSketch(16, seed=7, sign_family=sign_family),
        FagmsSketch(512, rows=5, seed=7, sign_family=sign_family),
        CountMinSketch(256, rows=3, seed=7),
    ]


def _keys(n: int = 20_000, dtype=np.int64) -> np.ndarray:
    rng = np.random.default_rng(0xFACE)
    return rng.integers(0, 2**20, size=n).astype(dtype)


def _assert_fused_matches_separate(sketches, keys, weights=None):
    separate = [s.copy_empty() for s in sketches]
    for sketch in separate:
        sketch.update(keys.astype(np.int64, copy=False), weights)
    fused_update(sketches, keys, weights)
    for fused, plain in zip(sketches, separate):
        assert np.array_equal(fused._state(), plain._state()), type(fused).__name__


# ----------------------------------------------------------------------
# Bit-identity across the whole matrix
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("sign_family", ["fourwise", "eh3"])
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
def test_fused_trio_bit_identical(backend, sign_family, weighted):
    keys = _keys()
    weights = (
        np.random.default_rng(3).standard_normal(keys.size) if weighted else None
    )
    with use_backend(backend):
        _assert_fused_matches_separate(_trio(sign_family), keys, weights)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", [np.int32, np.uint32, np.int64, np.uint64])
def test_fused_key_dtypes_bit_identical(backend, dtype):
    """int32/uint32 take the unwidened fast path on capable backends."""
    with use_backend(backend):
        _assert_fused_matches_separate(_trio(), _keys(dtype=dtype))


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_mixed_bucket_counts(backend):
    """Entries with different bucket widths stack and scatter correctly."""
    sketches = [
        FagmsSketch(128, rows=2, seed=5),
        FagmsSketch(1024, rows=3, seed=6),
        CountMinSketch(64, rows=4, seed=7),
        CountMinSketch(512, rows=1, seed=8),
    ]
    with use_backend(backend):
        _assert_fused_matches_separate(sketches, _keys())


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_single_sketch_each_kind(backend):
    for sketch in _trio():
        with use_backend(backend):
            _assert_fused_matches_separate([sketch], _keys(4_096))


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_plan_reused_across_chunks(backend):
    """One plan, many chunks — the streaming pattern the engine runs."""
    keys = _keys(32_768)
    with use_backend(backend):
        sketches = _trio()
        separate = [s.copy_empty() for s in sketches]
        plan = make_fused_plan(sketches)
        for start in range(0, keys.size, 4_096):
            chunk = keys[start : start + 4_096]
            fused_update(plan, chunk)
            for sketch in separate:
                sketch.update(chunk)
        for fused, plain in zip(sketches, separate):
            assert np.array_equal(fused._state(), plain._state())


def test_fused_is_order_equivalent_to_sequential_updates():
    """A fused call == updating each sketch in entry order, any backend."""
    keys = _keys(2_000)
    results = {}
    for backend in BACKENDS:
        with use_backend(backend):
            sketches = _trio()
            fused_update(sketches, keys)
            results[backend] = [np.array(s._state()) for s in sketches]
    baseline = results[BACKENDS[0]]
    for backend, states in results.items():
        for a, b in zip(baseline, states):
            assert np.array_equal(a, b), backend


# ----------------------------------------------------------------------
# Validation and edge cases
# ----------------------------------------------------------------------


def test_fused_rejects_out_of_range_keys():
    with pytest.raises(DomainError):
        fused_update(_trio(), np.asarray([2**31 - 1], dtype=np.int64))
    with pytest.raises(DomainError):
        fused_update(_trio(), np.asarray([-1], dtype=np.int64))


def test_fused_rejects_unfusable_objects():
    with pytest.raises(ConfigurationError):
        make_fused_plan([object()])
    with pytest.raises(ConfigurationError):
        make_fused_plan([])


def test_fused_empty_chunk_is_a_noop():
    sketches = _trio()
    fused_update(sketches, np.empty(0, dtype=np.int64))
    for sketch in sketches:
        assert not sketch._state().any()


def test_empty_plan_is_a_noop():
    fused_update(FusedPlan(entries=()), _keys(16))


def test_fused_weight_shape_mismatch_raises():
    with pytest.raises(DomainError):
        fused_update(_trio(), _keys(16), np.ones(4))


# ----------------------------------------------------------------------
# Profiling seam visibility (the fused call is metered, not bypassed)
# ----------------------------------------------------------------------


def test_profiled_fused_update_is_metered_and_bit_identical():
    keys = _keys(8_192)
    plain = _trio()
    fused_update(plain, keys)
    profiled = _trio()
    obs = Observer()
    with profile_kernels(obs) as wrapper:
        fused_update(profiled, keys)
        backend = wrapper.inner.name
    for a, b in zip(plain, profiled):
        assert np.array_equal(a._state(), b._state())
    snapshot = obs.metrics.snapshot()
    ops = snapshot.counter_value("kernels.ops", op="fused_update", backend=backend)
    assert ops == 1
    rows = snapshot.counter_value(
        "kernels.rows", op="fused_update", backend=backend
    )
    total_rows = sum(s.rows for s in plain)
    assert rows == total_rows * keys.size


def test_profiling_wrapper_forwards_int32_capability():
    from repro.kernels.backend import get_backend
    from repro.observability import ProfilingKernelBackend

    inner = get_backend()
    wrapper = ProfilingKernelBackend(inner, Observer())
    assert wrapper.fused_accepts_int32 == getattr(
        inner, "fused_accepts_int32", False
    )
