"""Cross-seed replication meta-runner (+ markdown export)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentScale, fig2_self_join_variance_decomposition
from repro.experiments.figures import fig4_self_join_error_bernoulli
from repro.experiments.replication import replicate

SCALE = ExperimentScale.small().with_(trials=4)


def _fig4_tiny(scale):
    return fig4_self_join_error_bernoulli(
        scale, skews=(1.0,), probabilities=(0.1,)
    )


def test_replicate_structure():
    result = replicate(_fig4_tiny, SCALE, seeds=(1, 2, 3))
    assert "×3 seeds" in result.figure
    assert result.columns[:2] == ("skew", "p")
    assert "mean_rel_error_mean" in result.columns
    assert "mean_rel_error_std" in result.columns
    assert len(result.rows) == 1


def test_replicate_statistics_are_cross_seed():
    result = replicate(_fig4_tiny, SCALE, seeds=(1, 2, 3, 4))
    row = result.rows[0]
    mean_index = result.columns.index("mean_rel_error_mean")
    std_index = result.columns.index("mean_rel_error_std")
    assert row[mean_index] > 0
    assert row[std_index] >= 0


def test_replicate_detects_seed_sensitivity():
    """Individual-seed values differ; the std must reflect that."""
    singles = [
        _fig4_tiny(SCALE.with_(seed=s)).rows[0][2] for s in (1, 2, 3, 4)
    ]
    assert len(set(singles)) > 1
    result = replicate(_fig4_tiny, SCALE, seeds=(1, 2, 3, 4))
    std_index = result.columns.index("mean_rel_error_std")
    assert result.rows[0][std_index] > 0


def test_replicate_decomposition_builder():
    def builder(scale):
        return fig2_self_join_variance_decomposition(
            scale, skews=(0.0, 2.0), probabilities=(0.1,)
        )

    result = replicate(builder, SCALE, seeds=(5, 6))
    assert len(result.rows) == 2
    assert "sampling_share_mean" in result.columns


def test_replicate_validation():
    with pytest.raises(ConfigurationError):
        replicate(_fig4_tiny, SCALE, seeds=(1,))


def test_markdown_export():
    result = _fig4_tiny(SCALE)
    markdown = result.to_markdown()
    assert markdown.startswith("**Fig 4**")
    assert "| skew | p |" in markdown
    lines = markdown.splitlines()
    rule_lines = [line for line in lines if line and set(line) <= {"|", "-"}]
    assert len(rule_lines) == 1
    assert rule_lines[0].count("---") == 4  # one per column
