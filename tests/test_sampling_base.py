"""SampleInfo validation and the coefficients dataclass."""

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.sampling import SampleInfo, SamplingCoefficients


class TestSampleInfo:
    def test_bernoulli_requires_probability(self):
        with pytest.raises(ConfigurationError):
            SampleInfo("bernoulli", 100, 10)
        with pytest.raises(ConfigurationError):
            SampleInfo("bernoulli", 100, 10, probability=0.0)
        with pytest.raises(ConfigurationError):
            SampleInfo("bernoulli", 100, 10, probability=1.2)
        info = SampleInfo("bernoulli", 100, 10, probability=0.1)
        assert info.fraction == pytest.approx(0.1)

    def test_fixed_size_rejects_probability(self):
        with pytest.raises(ConfigurationError):
            SampleInfo("with_replacement", 100, 10, probability=0.1)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            SampleInfo("stratified", 100, 10)

    def test_negative_sizes(self):
        with pytest.raises(ConfigurationError):
            SampleInfo("with_replacement", -1, 5)

    def test_wor_cannot_exceed_population(self):
        with pytest.raises(ConfigurationError):
            SampleInfo("without_replacement", 10, 11)
        # WR may exceed (replacement)
        SampleInfo("with_replacement", 10, 11)

    def test_fraction_of_empty_population(self):
        info = SampleInfo("with_replacement", 0, 0)
        assert info.fraction == 0.0

    def test_coefficients_round_trip(self):
        info = SampleInfo("without_replacement", 100, 10)
        coefficients = info.coefficients()
        assert coefficients.sample_size == 10
        assert coefficients.population_size == 100


class TestSamplingCoefficients:
    def test_exact_values(self):
        c = SamplingCoefficients(sample_size=10, population_size=40)
        assert c.alpha == Fraction(1, 4)
        assert c.alpha1 == Fraction(9, 39)
        assert c.alpha2 == Fraction(9, 40)

    def test_full_sample(self):
        c = SamplingCoefficients(40, 40)
        assert c.alpha == 1
        assert c.alpha1 == 1
        assert c.alpha2 == Fraction(39, 40)

    def test_as_floats(self):
        c = SamplingCoefficients(10, 40)
        alpha, alpha1, alpha2 = c.as_floats()
        assert alpha == pytest.approx(0.25)
        assert alpha1 == pytest.approx(9 / 39)
        assert alpha2 == pytest.approx(0.225)

    def test_alpha1_undefined_for_singleton_population(self):
        c = SamplingCoefficients(1, 1)
        with pytest.raises(ConfigurationError):
            _ = c.alpha1

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            SamplingCoefficients(0, 10)
        with pytest.raises(ConfigurationError):
            SamplingCoefficients(1, 0)
