"""Figure builders: structure, determinism, and the paper's shape claims.

Shapes are asserted at a reduced-but-meaningful scale (seconds, fixed
seeds); the benchmark suite regenerates the full tables.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentScale,
    fig1_join_variance_decomposition,
    fig2_self_join_variance_decomposition,
    fig3_join_error_bernoulli,
    fig4_self_join_error_bernoulli,
    fig5_join_error_wr,
    fig6_self_join_error_wr,
    fig7_join_error_wor_tpch,
    fig8_self_join_error_wor_tpch,
)

SCALE = ExperimentScale.small()


def test_scale_presets_and_override():
    assert ExperimentScale.small().n_tuples < ExperimentScale.default().n_tuples
    assert ExperimentScale.paper().buckets == 5_000
    bigger = SCALE.with_(trials=99)
    assert bigger.trials == 99
    assert bigger.n_tuples == SCALE.n_tuples
    with pytest.raises(ConfigurationError):
        ExperimentScale(trials=0)


class TestFig1:
    def test_structure_and_shares_sum_to_one(self):
        result = fig1_join_variance_decomposition(
            SCALE, skews=(0.0, 1.0), probabilities=(0.1,)
        )
        assert result.figure == "Fig 1"
        assert len(result.rows) == 2
        for row in result.rows:
            assert sum(row[2:]) == pytest.approx(1.0)

    def test_paper_shape(self):
        """Interaction dominates at skew 0; sketch dominates at skew 2."""
        result = fig1_join_variance_decomposition(
            SCALE, skews=(0.0, 2.0), probabilities=(0.01,)
        )
        low_skew = result.rows[0]
        high_skew = result.rows[1]
        assert low_skew[4] > low_skew[2] and low_skew[4] > low_skew[3]
        assert high_skew[3] > 0.8


class TestFig2:
    def test_paper_shape(self):
        """Sampling term dominates the self-join variance at high skew."""
        result = fig2_self_join_variance_decomposition(
            SCALE, skews=(0.0, 2.0), probabilities=(0.01,)
        )
        low_skew, high_skew = result.rows
        assert low_skew[4] > 0.4  # interaction significant at skew 0
        assert high_skew[2] > 0.5  # sampling dominates at skew 2


class TestFig3:
    def test_structure(self):
        result = fig3_join_error_bernoulli(
            SCALE, skews=(1.0,), probabilities=(1.0, 0.1)
        )
        assert result.columns[2] == "mean_rel_error"
        assert len(result.rows) == 2

    def test_paper_shape_sampling_rate_insensitive_at_moderate_skew(self):
        """p=0.1 costs little accuracy vs p=1 for skewed joins."""
        result = fig3_join_error_bernoulli(
            SCALE.with_(trials=15), skews=(1.0,), probabilities=(1.0, 0.1)
        )
        full = result.series(1.0)[0][2]
        sampled = result.series(0.1)[0][2]
        assert sampled < max(5 * full, 0.2)


class TestFig4:
    def test_paper_shape_error_drops_with_skew_for_full_sketch(self):
        result = fig4_self_join_error_bernoulli(
            SCALE, skews=(0.0, 2.0), probabilities=(1.0,)
        )
        errors = result.column("mean_rel_error")
        assert errors[1] < errors[0]


class TestFig5And6:
    def test_error_decreases_then_stabilizes(self):
        result = fig6_self_join_error_wr(
            SCALE.with_(trials=15), fractions=(0.01, 0.1, 1.0), skews=(1.0,)
        )
        errors = result.column("mean_rel_error")
        assert errors[0] > errors[1]  # 1% worse than 10%
        # 10% is already within a small factor of the full-sample error
        assert errors[1] < 6 * max(errors[2], 0.02)

    def test_fig5_runs_and_has_series_per_skew(self):
        result = fig5_join_error_wr(
            SCALE.with_(trials=5), fractions=(0.1, 1.0), skews=(0.5, 1.0)
        )
        assert len(result.rows) == 4
        assert len(result.series(0.5)) == 2


class TestFig7And8:
    def test_fig8_error_decreases_with_rate(self):
        result = fig8_self_join_error_wor_tpch(
            SCALE.with_(trials=10), fractions=(0.01, 0.1, 1.0)
        )
        errors = result.column("mean_rel_error")
        assert errors[0] > errors[1] > 0
        assert errors[1] < 4 * max(errors[2], 0.02)

    def test_fig7_parameters_record_tpch_sizes(self):
        result = fig7_join_error_wor_tpch(
            SCALE.with_(trials=3, tpch_orders=2_000), fractions=(0.1,)
        )
        assert result.parameters["orders"] == 2_000
        assert result.parameters["lineitem"] > 2_000


def test_figures_are_deterministic():
    a = fig4_self_join_error_bernoulli(SCALE, skews=(1.0,), probabilities=(0.1,))
    b = fig4_self_join_error_bernoulli(SCALE, skews=(1.0,), probabilities=(0.1,))
    assert a.rows == b.rows
