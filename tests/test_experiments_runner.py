"""Trial runner and error statistics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import TrialStats, relative_error, run_trials


def test_relative_error():
    assert relative_error(110, 100) == pytest.approx(0.1)
    assert relative_error(90, 100) == pytest.approx(0.1)
    assert relative_error(-50, -100) == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        relative_error(1, 0)


def test_run_trials_counts_and_determinism():
    def estimator(rng):
        return 100 + rng.normal(0, 10)

    a = run_trials(estimator, 100, trials=20, seed=5)
    b = run_trials(estimator, 100, trials=20, seed=5)
    assert a.trials == 20
    assert np.array_equal(a.errors, b.errors)


def test_run_trials_independent_seeds():
    values = []

    def estimator(rng):
        value = rng.random()
        values.append(value)
        return 1 + value

    run_trials(estimator, 1.0, trials=10, seed=3)
    assert len(set(values)) == 10


def test_run_trials_rejects_zero_trials():
    with pytest.raises(ConfigurationError):
        run_trials(lambda rng: 1.0, 1.0, trials=0)


def test_stats_properties():
    stats = TrialStats(errors=np.array([0.1, 0.2, 0.3, 1.0]), truth=50.0)
    assert stats.trials == 4
    assert stats.mean_error == pytest.approx(0.4)
    assert stats.median_error == pytest.approx(0.25)
    assert stats.max_error == pytest.approx(1.0)
    assert stats.std_error == pytest.approx(np.std([0.1, 0.2, 0.3, 1.0], ddof=1))


def test_stats_single_trial_std():
    stats = TrialStats(errors=np.array([0.5]), truth=1.0)
    assert stats.std_error == 0.0


def test_exact_estimator_has_zero_error():
    stats = run_trials(lambda rng: 42.0, 42.0, trials=5, seed=1)
    assert stats.mean_error == 0.0
    assert stats.max_error == 0.0
