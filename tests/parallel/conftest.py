"""Shared fixtures for the parallel-engine suite.

``REPRO_PARALLEL_WORKERS`` sets the process-pool width used by the
multiprocess tests (CI sets 2; the default of 2 also keeps local runs
honest about crossing a real process boundary even on small machines).
``REPRO_CHAOS_SEEDS`` widens the parallel chaos matrix exactly like the
resilience suite's (CI sets 3; the default of 2 keeps local runs quick).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel import WorkerPool


def _worker_count() -> int:
    return int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))


def pytest_generate_tests(metafunc):
    """Parametrize ``chaos_seed`` over the configured seed matrix."""
    if "chaos_seed" in metafunc.fixturenames:
        count = int(os.environ.get("REPRO_CHAOS_SEEDS", "2"))
        metafunc.parametrize("chaos_seed", range(count))


@pytest.fixture(scope="module")
def process_pool():
    """One real multiprocess pool shared across a test module."""
    with WorkerPool(_worker_count()) as pool:
        yield pool


@pytest.fixture
def inline_pool():
    """The synchronous in-process fallback pool."""
    with WorkerPool(0) as pool:
        yield pool


@pytest.fixture
def skewed_keys() -> np.ndarray:
    """A deterministic mid-sized skewed key stream."""
    rng = np.random.default_rng(0xBEEF)
    return rng.zipf(1.2, size=40_000).clip(0, 4_999).astype(np.int64)
