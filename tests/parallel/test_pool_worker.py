"""Pool lifecycle and per-shard worker semantics (checkpoints, resume)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels import backend_name
from repro.parallel import ShardTask, WorkerPool, run_shard
from repro.parallel.worker import PartialUpdateTask, run_partial_update
from repro.resilience.chaos import ChaosInjector, SimulatedCrash
from repro.sketches.fagms import FagmsSketch
from repro.sketches.serialization import sketch_header


def _task(keys, **overrides) -> ShardTask:
    template = FagmsSketch(128, rows=3, seed=21)
    fields = dict(
        index=0,
        keys=np.asarray(keys, dtype=np.int64),
        header=sketch_header(template),
        p=0.5,
        seed_entropy=1234,
        seed_spawn_key=(0,),
        chunk_size=256,
    )
    fields.update(overrides)
    return ShardTask(**fields)


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------


def test_pool_rejects_negative_workers():
    with pytest.raises(ConfigurationError):
        WorkerPool(-1)


def test_inline_pool_runs_synchronously(inline_pool):
    assert inline_pool.inline
    assert inline_pool.submit(len, [1, 2, 3]).result() == 3


def test_inline_pool_propagates_errors(inline_pool):
    future = inline_pool.submit(int, "not a number")
    with pytest.raises(ValueError):
        future.result()


def test_pool_map_preserves_order(inline_pool):
    assert inline_pool.map(abs, [-3, 1, -2]) == [3, 1, 2]


def test_process_pool_executes_remotely(process_pool):
    assert not process_pool.inline
    assert process_pool.workers >= 1
    assert process_pool.map(abs, [-5, -6]) == [5, 6]


def test_process_pool_pins_backend(process_pool):
    results = process_pool.map(_report_backend, range(process_pool.workers))
    assert set(results) == {process_pool.backend}


def _report_backend(_index):
    return backend_name()


def test_pool_close_is_idempotent():
    pool = WorkerPool(0)
    pool.close()
    pool.close()
    assert pool.inline


# ----------------------------------------------------------------------
# run_shard
# ----------------------------------------------------------------------


def test_run_shard_deterministic(skewed_keys):
    a = run_shard(_task(skewed_keys))
    b = run_shard(_task(skewed_keys))
    assert np.array_equal(a.counters, b.counters)
    assert (a.seen, a.kept, a.p) == (b.seen, b.kept, b.p)


def test_run_shard_result_ledger(skewed_keys):
    result = run_shard(_task(skewed_keys))
    assert result.seen == skewed_keys.size
    assert 0 < result.kept < result.seen
    info = result.info()
    assert info.scheme == "bernoulli"
    assert info.population_size == result.seen
    assert info.sample_size == result.kept


def test_run_shard_unshedded_matches_plain_sketch(skewed_keys):
    result = run_shard(_task(skewed_keys, p=1.0))
    plain = FagmsSketch(128, rows=3, seed=21)
    plain.update(skewed_keys)
    assert np.array_equal(result.counters, plain.counters)
    assert result.kept == result.seen


def test_run_shard_checkpoints(tmp_path, skewed_keys):
    run_shard(_task(skewed_keys, checkpoint_dir=str(tmp_path), checkpoint_every=8))
    shard_dir = tmp_path / "shard-000"
    assert shard_dir.is_dir()
    assert any(shard_dir.iterdir())


def test_killed_shard_resumes_bit_identically(tmp_path, skewed_keys):
    """Crash mid-shard, resume from the checkpoint: same bytes out."""
    baseline = run_shard(_task(skewed_keys))
    injector = ChaosInjector(seed=3, crash_rate=0.1, max_faults=1)
    with pytest.raises(SimulatedCrash):
        run_shard(
            _task(skewed_keys, checkpoint_dir=str(tmp_path), checkpoint_every=4),
            injector=injector,
        )
    resumed = run_shard(
        _task(
            skewed_keys,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=4,
            resume=True,
        )
    )
    assert np.array_equal(baseline.counters, resumed.counters)
    assert (baseline.seen, baseline.kept) == (resumed.seen, resumed.kept)


def test_resume_without_any_checkpoint_starts_clean(tmp_path, skewed_keys):
    """A worker killed before its first snapshot restarts from scratch."""
    baseline = run_shard(_task(skewed_keys))
    resumed = run_shard(
        _task(
            skewed_keys,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=4,
            resume=True,
        )
    )
    assert np.array_equal(baseline.counters, resumed.counters)


def test_resume_needs_checkpoint_dir(skewed_keys):
    with pytest.raises(ConfigurationError):
        run_shard(_task(skewed_keys, resume=True))


# ----------------------------------------------------------------------
# run_partial_update
# ----------------------------------------------------------------------


def test_partial_update_matches_direct_update(skewed_keys):
    template = FagmsSketch(128, rows=3, seed=21)
    counters = run_partial_update(
        PartialUpdateTask(index=0, keys=skewed_keys, header=sketch_header(template))
    )
    plain = template.copy_empty()
    plain.update(skewed_keys)
    assert np.array_equal(counters, plain.counters)


def test_partial_update_empty_shard():
    template = FagmsSketch(64, rows=2, seed=4)
    counters = run_partial_update(
        PartialUpdateTask(
            index=0,
            keys=np.empty(0, dtype=np.int64),
            header=sketch_header(template),
        )
    )
    assert not counters.any()
