"""Chaos matrix for the supervised sharded engine.

The contract: whatever the fault schedule does to individual dispatches
— SIGKILLed workers (which break the whole ``ProcessPoolExecutor``),
hangs culled by deadline, stragglers raced by hedges, dropped results,
torn counter slots — a run that completes is **bit-identical** to the
sequential scan, leaves zero ``/dev/shm`` segments behind, and a run
that degrades returns honestly widened intervals that cover the truth.

Faults are scheduled by seeded :class:`ParallelChaosPlan`s keyed on
``(shard, attempt)``; ``REPRO_CHAOS_SEEDS`` widens the matrix in CI.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.observability import Observer
from repro.parallel import DegradedScanResult, WorkerPool, run_sharded_sketch
from repro.resilience.chaos import (
    ChaosShardWorker,
    ParallelChaosPlan,
    WorkerFault,
    make_parallel_chaos_plan,
)
from repro.resilience.distributed import BackoffPolicy
from repro.sketches.fagms import FagmsSketch


def _shm_entries() -> list:
    try:
        return sorted(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError):
        return []


@pytest.fixture
def shm_ledger():
    """Snapshot ``/dev/shm`` and assert it is unchanged after the test."""
    before = _shm_entries()
    yield
    leaked = set(_shm_entries()) - set(before)
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _template() -> FagmsSketch:
    return FagmsSketch(64, rows=3, seed=17)


def _sequential_state(keys) -> np.ndarray:
    sketch = _template()
    sketch.update(keys)
    return sketch._state()


def _always_fail(shard: int, attempts: int = 8) -> tuple:
    """Faults exhausting every retry of *shard* (inline-safe: no kill)."""
    return tuple(
        ((shard, attempt), WorkerFault("hang", 0.0)) for attempt in range(attempts)
    )


# ----------------------------------------------------------------------
# Complete runs are bit-identical to the sequential scan
# ----------------------------------------------------------------------


class TestChaosMatrix:
    @pytest.mark.parametrize("shards", [3, 5])
    def test_seeded_chaos_is_bit_identical_over_processes(
        self, shm_ledger, process_pool, skewed_keys, chaos_seed, shards
    ):
        plan = make_parallel_chaos_plan(
            1000 + chaos_seed,
            shards,
            kinds=("kill", "slow", "drop", "corrupt_slot"),
            rate=0.5,
            duration=0.02,
        )
        result = run_sharded_sketch(
            skewed_keys,
            _template(),
            shards=shards,
            pool=process_pool,
            max_retries=4,
            backoff=BackoffPolicy(base=0.01, cap=0.05, seed=chaos_seed),
            _worker=ChaosShardWorker(plan),
        )
        assert np.array_equal(result.sketch._state(), _sequential_state(skewed_keys))
        assert result.retries >= plan.total_faults
        assert result.surviving_shards() == tuple(range(shards))

    def test_seeded_chaos_is_bit_identical_inline(
        self, shm_ledger, skewed_keys, chaos_seed
    ):
        # The inline matrix adds hang faults (no SIGKILL in-process) and
        # forces the shared-memory transport so slot rebinding is hit.
        plan = make_parallel_chaos_plan(
            2000 + chaos_seed,
            4,
            kinds=("hang", "slow", "drop", "corrupt_slot"),
            rate=0.6,
            duration=0.0,
        )
        result = run_sharded_sketch(
            skewed_keys,
            _template(),
            shards=4,
            shared_memory=True,
            max_retries=4,
            _worker=ChaosShardWorker(plan),
        )
        assert np.array_equal(result.sketch._state(), _sequential_state(skewed_keys))

    def test_sigkill_revives_the_pool(self, shm_ledger, skewed_keys):
        plan = ParallelChaosPlan(faults=(((1, 0), WorkerFault("kill")),))
        with WorkerPool(2) as pool:
            result = run_sharded_sketch(
                skewed_keys,
                _template(),
                shards=3,
                pool=pool,
                max_retries=3,
                _worker=ChaosShardWorker(plan),
            )
            assert pool.revivals >= 1
        assert np.array_equal(result.sketch._state(), _sequential_state(skewed_keys))

    def test_hang_is_culled_by_deadline(self, shm_ledger, process_pool, skewed_keys):
        # The hang sleeps far longer than the test budget; only the
        # no-progress deadline gets the shard retried in time.
        plan = ParallelChaosPlan(faults=(((0, 0), WorkerFault("hang", 30.0)),))
        result = run_sharded_sketch(
            skewed_keys,
            _template(),
            shards=3,
            pool=process_pool,
            max_retries=2,
            deadline=0.4,
            poll_interval=0.02,
            _worker=ChaosShardWorker(plan),
        )
        assert np.array_equal(result.sketch._state(), _sequential_state(skewed_keys))
        assert result.retries >= 1

    def test_hedge_races_the_straggler_without_changing_bits(
        self, shm_ledger, process_pool, skewed_keys
    ):
        plan = ParallelChaosPlan(faults=(((1, 0), WorkerFault("slow", 15.0)),))
        result = run_sharded_sketch(
            skewed_keys,
            _template(),
            shards=3,
            pool=process_pool,
            hedge_after=0.3,
            poll_interval=0.02,
            _worker=ChaosShardWorker(plan),
        )
        assert np.array_equal(result.sketch._state(), _sequential_state(skewed_keys))
        # The slow shard is hedged; on a narrow pool, queue-delayed
        # innocent shards may legitimately pick up a hedge of their own.
        assert result.hedges >= 1
        assert result.retries == 0


# ----------------------------------------------------------------------
# Degraded runs: survivors scaled, intervals honestly widened
# ----------------------------------------------------------------------


class TestDegradedRuns:
    def test_lost_shard_degrades_instead_of_failing(self, shm_ledger, skewed_keys):
        plan = ParallelChaosPlan(faults=_always_fail(1))
        result = run_sharded_sketch(
            skewed_keys,
            _template(),
            shards=4,
            max_retries=1,
            degradation="degrade",
            _worker=ChaosShardWorker(plan),
        )
        assert isinstance(result, DegradedScanResult)
        assert result.lost_shards == (1,)
        assert result.surviving_shards() == (0, 2, 3)
        assert result.survived_fraction == pytest.approx(0.75)
        assert result.failures[0].shard == 1
        # Survivor counters exclude the lost slice, so the raw sketch
        # moment underestimates; the 1/q scaling must push it back up.
        assert result.self_join_size() > result.sketch.second_moment() * 0.99

    def test_degraded_interval_covers_truth_at_nominal_rate(self):
        """Monte Carlo over streams: coverage >= the nominal confidence."""
        confidence, trials, covered = 0.9, 25, 0
        plan = ParallelChaosPlan(faults=_always_fail(2))
        for trial in range(trials):
            rng = np.random.default_rng(7000 + trial)
            keys = rng.integers(0, 2_000, size=6_000).astype(np.int64)
            true_f2 = float((np.bincount(keys) ** 2).sum())
            result = run_sharded_sketch(
                keys,
                FagmsSketch(1024, rows=7, seed=5),
                shards=4,
                max_retries=0,
                degradation="degrade",
                _worker=ChaosShardWorker(plan),
            )
            interval = result.self_join_interval(confidence)
            covered += interval.contains(true_f2)
        assert covered / trials >= confidence

    def test_degraded_join_uses_common_survivors(self, shm_ledger):
        rng = np.random.default_rng(99)
        keys_f = rng.integers(0, 1_000, size=8_000).astype(np.int64)
        keys_g = rng.integers(0, 1_000, size=8_000).astype(np.int64)
        template = FagmsSketch(2048, rows=7, seed=21)
        lost_f = run_sharded_sketch(
            keys_f,
            template,
            shards=4,
            max_retries=0,
            degradation="degrade",
            _worker=ChaosShardWorker(ParallelChaosPlan(faults=_always_fail(0))),
        )
        lost_g = run_sharded_sketch(
            keys_g,
            template,
            shards=4,
            max_retries=0,
            degradation="degrade",
            _worker=ChaosShardWorker(ParallelChaosPlan(faults=_always_fail(3))),
        )
        assert isinstance(lost_f, DegradedScanResult)
        common = set(lost_f.surviving_shards()) & set(lost_g.surviving_shards())
        assert common == {1, 2}
        true_join = float(
            (np.bincount(keys_f, minlength=1_000) * np.bincount(keys_g, minlength=1_000)).sum()
        )
        estimate = lost_f.join_size(lost_g)
        interval = lost_f.join_interval(lost_g, 0.9)
        assert interval.contains(true_join)
        assert interval.contains(estimate)
        # Symmetric delegation: a complete result joined against a
        # degraded one routes through the degraded estimator.
        assert lost_g.join_size(lost_f) == pytest.approx(estimate, rel=1e-9)

    def test_losing_every_shard_still_raises(self, shm_ledger, skewed_keys):
        faults = _always_fail(0) + _always_fail(1)
        with pytest.raises(RetryExhaustedError, match="nothing to degrade to"):
            run_sharded_sketch(
                skewed_keys,
                _template(),
                shards=2,
                max_retries=1,
                degradation="degrade",
                _worker=ChaosShardWorker(ParallelChaosPlan(faults=faults)),
            )

    def test_degrade_requires_hash_partitioning(self, skewed_keys):
        with pytest.raises(ConfigurationError, match="hash"):
            run_sharded_sketch(
                skewed_keys,
                _template(),
                shards=2,
                mode="range",
                degradation="degrade",
            )

    def test_degradation_knob_is_validated(self, skewed_keys):
        with pytest.raises(ConfigurationError, match="degradation"):
            run_sharded_sketch(
                skewed_keys, _template(), shards=2, degradation="panic"
            )


# ----------------------------------------------------------------------
# Observability: the supervisor's metrics and spans thread through
# ----------------------------------------------------------------------


class TestObservability:
    def test_retry_and_degraded_metrics(self, shm_ledger, skewed_keys):
        obs = Observer()
        faults = (((0, 0), WorkerFault("drop")),) + _always_fail(2)
        result = run_sharded_sketch(
            skewed_keys,
            _template(),
            shards=3,
            max_retries=1,
            degradation="degrade",
            shared_memory=True,
            backoff=BackoffPolicy(base=0.001, jitter=0.5, seed=3),
            observer=obs,
            _worker=ChaosShardWorker(ParallelChaosPlan(faults=faults)),
        )
        assert isinstance(result, DegradedScanResult)
        snapshot = obs.metrics.snapshot()
        assert snapshot.counter_value("parallel.shard.retries") >= 2
        assert snapshot.counter_value("parallel.shard.degraded") == 1
        assert snapshot.counter_value("parallel.backoff.wait_seconds") > 0
        assert snapshot.counter_value("parallel.shm.segments") >= 1
        span_names = {record.name for record in obs.tracer.finished}
        assert "parallel.supervise" in span_names
        assert "parallel.scan" in span_names

    def test_hedge_metric_over_processes(self, shm_ledger, process_pool, skewed_keys):
        obs = Observer()
        plan = ParallelChaosPlan(faults=(((2, 0), WorkerFault("slow", 15.0)),))
        run_sharded_sketch(
            skewed_keys,
            _template(),
            shards=3,
            pool=process_pool,
            hedge_after=0.3,
            poll_interval=0.02,
            observer=obs,
            _worker=ChaosShardWorker(plan),
        )
        snapshot = obs.metrics.snapshot()
        assert snapshot.counter_value("parallel.shard.hedges") >= 1
        assert snapshot.counter_value("parallel.shards.completed") == 3
