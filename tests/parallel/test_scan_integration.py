"""Engine integration: sharded consume / run_lockstep_scan parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.scan import run_lockstep_scan
from repro.engine.statistics import OnlineStatisticsEngine
from repro.parallel import WorkerPool
from repro.streams.base import Relation


@pytest.fixture
def relations() -> dict:
    rng = np.random.default_rng(0xABCD)
    return {
        "lineitem": Relation(rng.integers(0, 800, size=6_000), 800),
        "orders": Relation(rng.integers(0, 800, size=2_000), 800),
    }


def _engine() -> OnlineStatisticsEngine:
    return OnlineStatisticsEngine(buckets=512, rows=3, seed=123)


def _counters(engine: OnlineStatisticsEngine, name: str) -> np.ndarray:
    return engine._relations[name].sketch._state()


def test_consume_sharded_matches_sequential(relations):
    sequential = _engine()
    sharded = _engine()
    for name, relation in relations.items():
        sequential.register(name, len(relation))
        sharded.register(name, len(relation))
        sequential.consume(name, relation.keys)
        sharded.consume(name, relation.keys, shards=4)
    for name in relations:
        assert np.array_equal(
            _counters(sequential, name), _counters(sharded, name)
        )
        assert sequential.self_join_size(name) == sharded.self_join_size(name)


def test_consume_with_pool_reuses_it(relations, process_pool):
    sequential = _engine()
    pooled = _engine()
    for name, relation in relations.items():
        sequential.register(name, len(relation))
        pooled.register(name, len(relation))
        sequential.consume(name, relation.keys)
        pooled.consume(name, relation.keys, pool=process_pool)
    for name in relations:
        assert np.array_equal(
            _counters(sequential, name), _counters(pooled, name)
        )


def test_lockstep_scan_sharded_snapshots_identical(relations):
    checkpoints = (0.1, 0.5, 1.0)
    plain = list(
        run_lockstep_scan(_engine(), relations, checkpoints=checkpoints)
    )
    sharded = list(
        run_lockstep_scan(
            _engine(), relations, checkpoints=checkpoints, shards=3
        )
    )
    assert len(plain) == len(sharded) == len(checkpoints)
    for a, b in zip(plain, sharded):
        assert a.fractions == b.fractions
        assert a.self_join_sizes == b.self_join_sizes
        assert a.join_sizes == b.join_sizes


def test_lockstep_scan_pool_defaults_shards(relations):
    checkpoints = (0.5, 1.0)
    plain = list(
        run_lockstep_scan(_engine(), relations, checkpoints=checkpoints)
    )
    with WorkerPool(0) as pool:
        pooled = list(
            run_lockstep_scan(
                _engine(), relations, checkpoints=checkpoints, pool=pool
            )
        )
    for a, b in zip(plain, pooled):
        assert a.self_join_sizes == b.self_join_sizes


def test_lockstep_scan_sharded_resume_bit_identical(tmp_path, relations):
    """Sharded scanning composes with durable checkpoint/resume."""
    checkpoints = (0.25, 0.5, 1.0)
    full = list(
        run_lockstep_scan(
            _engine(), relations, checkpoints=checkpoints, shards=3
        )
    )
    partial = run_lockstep_scan(
        _engine(),
        relations,
        checkpoints=checkpoints,
        checkpoint_dir=tmp_path,
        shards=3,
    )
    next(partial)  # complete only the first fraction, then "crash"
    partial.close()
    resumed = list(
        run_lockstep_scan(
            _engine(),
            relations,
            checkpoints=checkpoints,
            checkpoint_dir=tmp_path,
            resume=True,
            shards=3,
        )
    )
    assert len(resumed) == len(checkpoints) - 1
    for a, b in zip(full[1:], resumed):
        assert a.self_join_sizes == b.self_join_sizes
        assert a.join_sizes == b.join_sizes
