"""Shared-memory transport: block lifecycle, leak-freedom, bit-identity.

The contract under test (see ``src/repro/parallel/shm.py``): every
segment the coordinator creates is destroyed in a ``finally`` — after a
normal run, after a worker dies to SIGKILL mid-task, and after retries
exhaust into :class:`~repro.errors.RetryExhaustedError` — so no code path
leaves an entry behind in ``/dev/shm``.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.errors import ConfigurationError, RetryExhaustedError
from repro.parallel import (
    SharedBlock,
    WorkerPool,
    merge_tree,
    parallel_update,
    reduce_counter_tree,
    run_sharded_sketch,
)
from repro.resilience.chaos import ChaosInjector
from repro.sketches.fagms import FagmsSketch


def _shm_entries() -> list:
    """Current ``/dev/shm`` names (empty list where the OS has none)."""
    try:
        return sorted(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError):
        return []


@pytest.fixture
def shm_ledger():
    """Snapshot ``/dev/shm`` and assert it is unchanged after the test."""
    before = _shm_entries()
    yield
    leaked = set(_shm_entries()) - set(before)
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _kill_worker(task, **kwargs):
    """A shard 'worker' that dies like a segfaulting process would."""
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# SharedBlock unit behavior
# ----------------------------------------------------------------------


def test_block_roundtrip_through_descriptor(shm_ledger):
    block = SharedBlock.create((3, 4), np.float64)
    try:
        assert not block.array.any()  # created zero-filled
        block.array[...] = np.arange(12, dtype=np.float64).reshape(3, 4)
        attached = SharedBlock.attach(block.descriptor)
        try:
            assert np.array_equal(attached.array, block.array)
            attached.array[1, 2] = -5.0
            assert block.array[1, 2] == -5.0  # same physical memory
        finally:
            attached.close()
    finally:
        block.destroy()


def test_block_descriptor_is_plain_data(shm_ledger):
    block = SharedBlock.create((8,), np.int64)
    try:
        name, shape, dtype = block.descriptor
        assert isinstance(name, str)
        assert shape == (8,)
        assert np.dtype(dtype) == np.int64
    finally:
        block.destroy()


def test_block_itself_refuses_to_pickle(shm_ledger):
    import pickle

    block = SharedBlock.create((4,), np.float64)
    try:
        with pytest.raises(TypeError):
            pickle.dumps(block)
    finally:
        block.destroy()


def test_close_and_destroy_are_idempotent(shm_ledger):
    block = SharedBlock.create((4,), np.float64)
    block.destroy()
    block.destroy()
    block.close()
    with pytest.raises(ConfigurationError):
        block.array


def test_close_survives_a_live_view(shm_ledger):
    block = SharedBlock.create((16,), np.float64)
    view = block.array
    block.destroy()  # BufferError from the live view is swallowed
    assert view.size == 16  # the mapping outlives the name until GC


# ----------------------------------------------------------------------
# reduce_counter_tree ≡ merge_tree
# ----------------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 3, 5, 8])
def test_reduce_counter_tree_matches_merge_tree(shards):
    """Same pairing at every level — bit-identical floats, odd counts too."""
    rng = np.random.default_rng(shards)
    sketches = []
    for _ in range(shards):
        sketch = FagmsSketch(32, rows=3, seed=11)
        sketch.update(
            rng.integers(0, 500, size=1_000),
            rng.standard_normal(1_000),  # float weights: association matters
        )
        sketches.append(sketch)
    stack = np.stack([sketch._state() for sketch in sketches])
    assert np.array_equal(
        reduce_counter_tree(stack), merge_tree(sketches)._state()
    )


def test_reduce_counter_tree_rejects_empty():
    with pytest.raises(ConfigurationError):
        reduce_counter_tree(np.empty((0, 3)))


def test_reduce_counter_tree_does_not_mutate_input():
    stack = np.arange(12, dtype=np.float64).reshape(4, 3)
    original = stack.copy()
    reduce_counter_tree(stack)
    assert np.array_equal(stack, original)


# ----------------------------------------------------------------------
# Normal-exit lifecycle: segments unlinked, results bit-identical
# ----------------------------------------------------------------------


def test_sharded_scan_over_processes_leaves_no_segments(
    shm_ledger, process_pool, skewed_keys
):
    template = FagmsSketch(64, rows=3, seed=17)
    sequential = template.copy_empty()
    sequential.update(skewed_keys)
    result = run_sharded_sketch(skewed_keys, template, shards=4, pool=process_pool)
    assert np.array_equal(sequential._state(), result.sketch._state())
    # Counters were backfilled from the block before it was destroyed.
    merged = result.shard_results[0].counters.copy()
    for shard in result.shard_results[1:]:
        assert shard.counters is not None
        merged += shard.counters
    assert np.allclose(merged, result.sketch._state())


def test_parallel_update_over_processes_leaves_no_segments(
    shm_ledger, process_pool, skewed_keys
):
    direct = FagmsSketch(64, rows=3, seed=17)
    direct.update(skewed_keys)
    sharded = FagmsSketch(64, rows=3, seed=17)
    parallel_update(sharded, skewed_keys, pool=process_pool, chunk_size=4_096)
    assert np.array_equal(direct._state(), sharded._state())


def test_forced_shared_memory_inline_is_bit_identical(shm_ledger, skewed_keys):
    """shared_memory=True exercises the whole segment path in-process."""
    template = FagmsSketch(64, rows=3, seed=17)
    plain = run_sharded_sketch(skewed_keys, template, shards=3)
    forced = run_sharded_sketch(
        skewed_keys, template, shards=3, shared_memory=True
    )
    assert np.array_equal(plain.sketch._state(), forced.sketch._state())
    direct = FagmsSketch(64, rows=3, seed=17)
    direct.update(skewed_keys)
    sharded = FagmsSketch(64, rows=3, seed=17)
    parallel_update(
        sharded, skewed_keys, shards=4, shared_memory=True, chunk_size=2_048
    )
    assert np.array_equal(direct._state(), sharded._state())


def test_shared_memory_false_disables_transport(shm_ledger, skewed_keys):
    template = FagmsSketch(64, rows=3, seed=17)
    result = run_sharded_sketch(
        skewed_keys, template, shards=2, shared_memory=False
    )
    sequential = template.copy_empty()
    sequential.update(skewed_keys)
    assert np.array_equal(sequential._state(), result.sketch._state())


def test_shedding_with_processes_matches_inline(shm_ledger, process_pool, skewed_keys):
    """HT-weighted (float) counters also survive the shm round-trip exactly."""
    template = FagmsSketch(64, rows=3, seed=17)
    inline = run_sharded_sketch(skewed_keys, template, shards=4, p=0.3, seed=99)
    pooled = run_sharded_sketch(
        skewed_keys, template, shards=4, p=0.3, seed=99, pool=process_pool
    )
    assert np.array_equal(inline.sketch._state(), pooled.sketch._state())
    assert inline.info() == pooled.info()


# ----------------------------------------------------------------------
# Failure lifecycles: SIGKILL'd workers and exhausted retries
# ----------------------------------------------------------------------


def test_sigkilled_worker_leaves_no_segments(shm_ledger, skewed_keys):
    """A worker dying like a segfault must not leak the transport blocks.

    The pool breaks permanently (BrokenProcessPool), run_sharded_sketch
    propagates the failure, and the coordinator's ``finally`` still
    destroys both segments.
    """
    with WorkerPool(2) as pool:
        with pytest.raises(Exception) as excinfo:
            run_sharded_sketch(
                skewed_keys,
                FagmsSketch(64, rows=3, seed=17),
                shards=2,
                pool=pool,
                max_retries=1,
                _worker=_kill_worker,
            )
    assert not isinstance(excinfo.value, AssertionError)


def test_retry_exhaustion_leaves_no_segments(shm_ledger, skewed_keys):
    """Chaos crashes through every retry; the finally still unlinks."""
    injector = ChaosInjector(seed=1, crash_rate=1.0, max_faults=10_000)
    with pytest.raises(RetryExhaustedError):
        run_sharded_sketch(
            skewed_keys,
            FagmsSketch(64, rows=3, seed=17),
            shards=2,
            chunk_size=512,
            max_retries=2,
            injector=injector,
            shared_memory=True,
        )


def test_chaos_retries_with_shared_slots_stay_bit_identical(
    shm_ledger, tmp_path, skewed_keys
):
    """A retried shard re-binds its slot over the crashed attempt's bytes."""
    template = FagmsSketch(64, rows=3, seed=17)
    baseline = run_sharded_sketch(
        skewed_keys, template, shards=3, p=0.5, seed=7, chunk_size=512
    )
    injector = ChaosInjector(seed=13, crash_rate=0.15, max_faults=3)
    survived = run_sharded_sketch(
        skewed_keys,
        template,
        shards=3,
        p=0.5,
        seed=7,
        chunk_size=512,
        checkpoint_dir=tmp_path,
        checkpoint_every=4,
        max_retries=5,
        injector=injector,
        shared_memory=True,
    )
    assert survived.retries > 0
    assert np.array_equal(baseline.sketch._state(), survived.sketch._state())


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no tmpfs segment directory"
)
def test_destroy_survives_external_unlink(shm_ledger):
    """An externally removed segment must not mask the caller's error path.

    ``destroy()`` runs in coordinator ``finally`` blocks; if an operator
    (or the OS) already removed the ``/dev/shm`` entry, the resulting
    ``FileNotFoundError`` would shadow whatever exception was actually
    unwinding.  It is swallowed instead.
    """
    block = SharedBlock.create((4,), np.float64)
    name = block.descriptor[0]
    os.unlink(f"/dev/shm/{name}")
    block.destroy()  # must not raise
    with pytest.raises(ConfigurationError):
        block.array


def test_triple_destroy_and_interleaved_close(shm_ledger):
    block = SharedBlock.create((4,), np.int64)
    block.close()
    block.destroy()
    block.destroy()
    block.destroy()
    block.close()


def test_attached_view_destroy_never_unlinks(shm_ledger):
    """Only the owner unlinks; a view's destroy() is just a close()."""
    owner = SharedBlock.create((4,), np.float64)
    try:
        view = SharedBlock.attach(owner.descriptor)
        view.destroy()
        view.destroy()
        # The segment must still exist for the owner.
        again = SharedBlock.attach(owner.descriptor)
        again.close()
    finally:
        owner.destroy()
