"""Coordinator guarantees: bit-identity, reproducibility, retries, estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError, RetryExhaustedError
from repro.kernels import available_backends, use_backend
from repro.parallel import (
    WorkerPool,
    parallel_update,
    run_sharded_sketch,
)
from repro.resilience.chaos import ChaosInjector
from repro.sketches.agms import AgmsSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.fagms import FagmsSketch


def _usable_backends() -> list:
    """Backends that activate on this machine (native may lack a compiler)."""
    usable = []
    for name in available_backends():
        try:
            with use_backend(name):
                pass
        except Exception:
            continue
        usable.append(name)
    return usable


def _templates() -> list:
    return [
        FagmsSketch(64, rows=3, seed=17),
        AgmsSketch(16, seed=17),
        CountMinSketch(64, rows=3, seed=17),
    ]


# ----------------------------------------------------------------------
# The headline guarantee: hash mode is bit-identical to sequential, for
# every sketch type and every kernel backend.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", _usable_backends())
@pytest.mark.parametrize(
    "template", _templates(), ids=lambda t: type(t).__name__
)
def test_hash_mode_bit_identical_to_sequential(skewed_keys, template, backend):
    with use_backend(backend):
        sequential = template.copy_empty()
        sequential.update(skewed_keys)
        result = run_sharded_sketch(skewed_keys, template, shards=4, mode="hash")
        assert np.array_equal(sequential._state(), result.sketch._state())


@pytest.mark.parametrize(
    "template", _templates(), ids=lambda t: type(t).__name__
)
def test_range_mode_bit_identical_without_shedding(skewed_keys, template):
    """At p=1 even range shards add back exactly (integer accumulation)."""
    sequential = template.copy_empty()
    sequential.update(skewed_keys)
    result = run_sharded_sketch(skewed_keys, template, shards=4, mode="range")
    assert np.array_equal(sequential._state(), result.sketch._state())


def test_shard_count_does_not_change_bits(skewed_keys):
    template = FagmsSketch(64, rows=3, seed=17)
    one = run_sharded_sketch(skewed_keys, template, shards=1)
    many = run_sharded_sketch(skewed_keys, template, shards=7)
    assert np.array_equal(one.sketch._state(), many.sketch._state())


def test_process_pool_matches_inline(skewed_keys, process_pool):
    """The process boundary adds nothing: same plan, same bytes."""
    template = FagmsSketch(64, rows=3, seed=17)
    inline = run_sharded_sketch(
        skewed_keys, template, shards=4, p=0.3, seed=99
    )
    pooled = run_sharded_sketch(
        skewed_keys, template, shards=4, p=0.3, seed=99, pool=process_pool
    )
    assert np.array_equal(inline.sketch._state(), pooled.sketch._state())
    assert inline.info() == pooled.info()


# ----------------------------------------------------------------------
# Shedding: reproducibility, independence, estimator correctness
# ----------------------------------------------------------------------


def test_shedding_reproducible_for_fixed_seed(skewed_keys):
    template = FagmsSketch(64, rows=3, seed=17)
    a = run_sharded_sketch(skewed_keys, template, shards=4, p=0.2, seed=5)
    b = run_sharded_sketch(skewed_keys, template, shards=4, p=0.2, seed=5)
    assert np.array_equal(a.sketch._state(), b.sketch._state())
    assert a.sample_sizes().tolist() == b.sample_sizes().tolist()


def test_shard_substreams_are_independent(skewed_keys):
    """Different shards draw different Bernoulli patterns from one root."""
    template = FagmsSketch(64, rows=3, seed=17)
    result = run_sharded_sketch(skewed_keys, template, shards=4, p=0.5, seed=5)
    sizes = result.sample_sizes()
    assert len(set(sizes.tolist())) > 1  # astronomically unlikely to collide


def test_combined_ledger_aggregates_shards(skewed_keys):
    result = run_sharded_sketch(
        skewed_keys, FagmsSketch(64, rows=3, seed=17), shards=4, p=0.25, seed=8
    )
    info = result.info()
    assert info.population_size == skewed_keys.size
    assert info.sample_size == int(result.sample_sizes().sum())
    assert info.probability == pytest.approx(0.25)


def test_self_join_estimate_tracks_truth(skewed_keys):
    truth = float((np.bincount(skewed_keys).astype(np.float64) ** 2).sum())
    template = FagmsSketch(2_048, rows=5, seed=17)
    result = run_sharded_sketch(skewed_keys, template, shards=4, p=0.3, seed=2)
    assert result.self_join_size() == pytest.approx(truth, rel=0.25)


def test_unshedded_estimate_has_no_correction(skewed_keys):
    template = FagmsSketch(2_048, rows=5, seed=17)
    result = run_sharded_sketch(skewed_keys, template, shards=4)
    assert result.self_join_size() == pytest.approx(
        result.sketch.second_moment()
    )


def test_join_size_between_sharded_scans(skewed_keys):
    rng = np.random.default_rng(31)
    other_keys = rng.permutation(skewed_keys)
    template = FagmsSketch(2_048, rows=5, seed=17)
    res_f = run_sharded_sketch(skewed_keys, template, shards=3, p=0.5, seed=1)
    res_g = run_sharded_sketch(other_keys, template, shards=3, p=0.5, seed=2)
    truth = float((np.bincount(skewed_keys).astype(np.float64) ** 2).sum())
    assert res_f.join_size(res_g) == pytest.approx(truth, rel=0.3)


def test_countmin_second_moment_still_raises(skewed_keys):
    result = run_sharded_sketch(
        skewed_keys, CountMinSketch(64, rows=3, seed=17), shards=2
    )
    with pytest.raises(EstimationError):
        result.self_join_size()


def test_shard_sketch_reconstruction(skewed_keys):
    template = FagmsSketch(64, rows=3, seed=17)
    result = run_sharded_sketch(skewed_keys, template, shards=3)
    rebuilt = result.shard_sketch(1)
    assert np.array_equal(rebuilt._state(), result.shard_results[1].counters)
    # Shard sketches merge back to the reduced sketch.
    total = result.shard_sketch(0)
    total.merge(result.shard_sketch(1))
    total.merge(result.shard_sketch(2))
    assert np.array_equal(total._state(), result.sketch._state())


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------


def test_chaos_killed_workers_resume_bit_identically(tmp_path, skewed_keys):
    template = FagmsSketch(64, rows=3, seed=17)
    baseline = run_sharded_sketch(
        skewed_keys, template, shards=3, p=0.5, seed=7, chunk_size=512
    )
    injector = ChaosInjector(seed=13, crash_rate=0.15, max_faults=3)
    survived = run_sharded_sketch(
        skewed_keys,
        template,
        shards=3,
        p=0.5,
        seed=7,
        chunk_size=512,
        checkpoint_dir=tmp_path,
        checkpoint_every=4,
        max_retries=5,
        injector=injector,
    )
    assert survived.retries > 0
    assert np.array_equal(baseline.sketch._state(), survived.sketch._state())
    assert baseline.info() == survived.info()


def test_retries_exhaust_into_typed_error(skewed_keys):
    injector = ChaosInjector(seed=1, crash_rate=1.0, max_faults=10_000)
    with pytest.raises(RetryExhaustedError):
        run_sharded_sketch(
            skewed_keys,
            FagmsSketch(64, rows=3, seed=17),
            shards=2,
            chunk_size=512,
            max_retries=2,
            injector=injector,
        )


def test_injector_requires_inline_pool(skewed_keys, process_pool):
    with pytest.raises(ConfigurationError):
        run_sharded_sketch(
            skewed_keys,
            FagmsSketch(64, rows=3, seed=17),
            shards=2,
            pool=process_pool,
            injector=ChaosInjector(seed=1, crash_rate=0.5),
        )


def test_rejects_bad_shard_count(skewed_keys):
    with pytest.raises(ConfigurationError):
        run_sharded_sketch(
            skewed_keys, FagmsSketch(64, rows=3, seed=17), shards=0
        )


# ----------------------------------------------------------------------
# parallel_update
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_parallel_update_equals_sequential_update(skewed_keys, mode):
    direct = FagmsSketch(64, rows=3, seed=17)
    direct.update(skewed_keys)
    sharded = FagmsSketch(64, rows=3, seed=17)
    parallel_update(sharded, skewed_keys, shards=4, mode=mode)
    assert np.array_equal(direct._state(), sharded._state())


def test_parallel_update_accumulates(skewed_keys):
    """Repeated parallel updates keep adding, like repeated update calls."""
    direct = FagmsSketch(64, rows=3, seed=17)
    direct.update(skewed_keys)
    direct.update(skewed_keys)
    sharded = FagmsSketch(64, rows=3, seed=17)
    parallel_update(sharded, skewed_keys, shards=3)
    parallel_update(sharded, skewed_keys, shards=5)
    assert np.array_equal(direct._state(), sharded._state())


def test_parallel_update_with_process_pool(skewed_keys, process_pool):
    direct = FagmsSketch(64, rows=3, seed=17)
    direct.update(skewed_keys)
    sharded = FagmsSketch(64, rows=3, seed=17)
    parallel_update(sharded, skewed_keys, pool=process_pool)
    assert np.array_equal(direct._state(), sharded._state())


def test_pool_alone_defaults_shard_count(skewed_keys):
    with WorkerPool(0) as pool:
        sketch = FagmsSketch(64, rows=3, seed=17)
        parallel_update(sketch, skewed_keys, pool=pool)
    direct = FagmsSketch(64, rows=3, seed=17)
    direct.update(skewed_keys)
    assert np.array_equal(direct._state(), sketch._state())
