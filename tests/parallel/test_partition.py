"""Partitioner invariants: determinism, order preservation, completeness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.frequency import FrequencyVector
from repro.parallel import (
    hash_partition,
    make_shard_plan,
    range_partition,
    shard_ids,
)
from repro.variance import (
    bernoulli_self_join_variance,
    sharded_bernoulli_self_join_variance,
)


@pytest.fixture
def keys() -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.integers(0, 300, size=5_000)


# ----------------------------------------------------------------------
# shard_ids / hash mode
# ----------------------------------------------------------------------


def test_shard_ids_deterministic(keys):
    a = shard_ids(keys, 4)
    b = shard_ids(keys.copy(), 4)
    assert np.array_equal(a, b)


def test_shard_ids_key_consistent(keys):
    """Every occurrence of a key maps to the same shard."""
    ids = shard_ids(keys, 4)
    mapping = {}
    for key, sid in zip(keys.tolist(), ids.tolist()):
        assert mapping.setdefault(key, sid) == sid


def test_shard_ids_range(keys):
    ids = shard_ids(keys, 7)
    assert ids.min() >= 0 and ids.max() < 7


def test_shard_ids_spread():
    """splitmix64 spreads even consecutive keys roughly evenly."""
    counts = np.bincount(shard_ids(np.arange(40_000), 4), minlength=4)
    assert counts.min() > 8_000


def test_hash_partition_is_a_partition(keys):
    parts = hash_partition(keys, 5)
    assert sum(p.size for p in parts) == keys.size
    rebuilt = np.sort(np.concatenate(parts))
    assert np.array_equal(rebuilt, np.sort(keys))


def test_hash_partition_disjoint_supports(keys):
    parts = hash_partition(keys, 5)
    supports = [set(np.unique(p).tolist()) for p in parts]
    for i in range(len(supports)):
        for j in range(i + 1, len(supports)):
            assert not (supports[i] & supports[j])


def test_hash_partition_preserves_order(keys):
    """Within a shard, tuples appear in original arrival order."""
    parts = hash_partition(keys, 3)
    ids = shard_ids(keys, 3)
    for sid, part in enumerate(parts):
        assert np.array_equal(part, keys[ids == sid])


def test_hash_partition_single_shard(keys):
    (only,) = hash_partition(keys, 1)
    assert np.array_equal(only, keys)


def test_hash_partition_empty():
    parts = hash_partition(np.empty(0, dtype=np.int64), 3)
    assert len(parts) == 3 and all(p.size == 0 for p in parts)


# ----------------------------------------------------------------------
# range mode
# ----------------------------------------------------------------------


def test_range_partition_contiguous(keys):
    parts = range_partition(keys, 4)
    assert np.array_equal(np.concatenate(parts), keys)
    sizes = [p.size for p in parts]
    assert max(sizes) - min(sizes) <= 1


# ----------------------------------------------------------------------
# plans and validation
# ----------------------------------------------------------------------


def test_make_shard_plan_counts(keys):
    plan = make_shard_plan(keys, 4, mode="hash")
    assert plan.shards == 4
    assert plan.counts.sum() == keys.size
    assert plan.mode == "hash"


def test_make_shard_plan_rejects_unknown_mode(keys):
    with pytest.raises(ConfigurationError):
        make_shard_plan(keys, 4, mode="roundrobin")


def test_partition_rejects_bad_shards(keys):
    with pytest.raises(ConfigurationError):
        hash_partition(keys, 0)
    with pytest.raises(ConfigurationError):
        range_partition(keys, -1)


def test_partition_rejects_float_keys():
    with pytest.raises(DomainError):
        hash_partition(np.array([1.5, 2.5]), 2)


def test_partition_rejects_2d_keys():
    with pytest.raises(DomainError):
        range_partition(np.zeros((2, 2), dtype=np.int64), 2)


# ----------------------------------------------------------------------
# per-shard variance accounting telescopes (hash mode)
# ----------------------------------------------------------------------


def test_sharded_variance_telescopes_to_whole_stream(keys):
    """Eq. 7 is linear in F1/F2/F3, so disjoint-shard variances sum exactly."""
    whole = FrequencyVector(np.bincount(keys, minlength=300))
    parts = hash_partition(keys, 4)
    shard_fvs = [FrequencyVector(np.bincount(p, minlength=300)) for p in parts]
    p = 0.2
    assert sharded_bernoulli_self_join_variance(
        shard_fvs, p
    ) == bernoulli_self_join_variance(whole, p)


def test_sharded_variance_needs_shards():
    with pytest.raises(ValueError):
        sharded_bernoulli_self_join_variance([], 0.5)
