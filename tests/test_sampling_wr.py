"""With-replacement sampler: sizes, multinomial distribution, both paths."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.frequency import FrequencyVector
from repro.sampling import WithReplacementSampler


def test_requires_exactly_one_of_size_fraction():
    with pytest.raises(ConfigurationError):
        WithReplacementSampler()
    with pytest.raises(ConfigurationError):
        WithReplacementSampler(size=5, fraction=0.5)


def test_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        WithReplacementSampler(size=0)
    with pytest.raises(ConfigurationError):
        WithReplacementSampler(fraction=0.0)


def test_resolve_size():
    assert WithReplacementSampler(size=7).resolve_size(100) == 7
    assert WithReplacementSampler(fraction=0.1).resolve_size(100) == 10
    assert WithReplacementSampler(fraction=1e-9).resolve_size(100) == 1
    # WR fractions may exceed 1 (paper's Figs 5-6 sweep beyond the population)
    assert WithReplacementSampler(fraction=2.0).resolve_size(100) == 200
    with pytest.raises(ConfigurationError):
        WithReplacementSampler(size=5).resolve_size(0)


def test_sample_items_exact_size_and_membership(rng):
    keys = np.array([10, 20, 30])
    sampled, info = WithReplacementSampler(size=50).sample_items(keys, rng)
    assert sampled.size == 50
    assert set(sampled.tolist()) <= {10, 20, 30}
    assert info.scheme == "with_replacement"
    assert info.sample_size == 50
    assert info.population_size == 3


def test_replacement_allows_oversampling(rng):
    keys = np.array([5])
    sampled, _ = WithReplacementSampler(size=10).sample_items(keys, rng)
    assert np.all(sampled == 5)
    assert sampled.size == 10


def test_sample_frequencies_total_is_sample_size(rng):
    fv = FrequencyVector([7, 3, 5])
    sample, info = WithReplacementSampler(size=9).sample_frequencies(fv, rng)
    assert sample.total == 9
    assert info.population_size == 15


@pytest.mark.statistical
def test_frequency_path_is_multinomial():
    """E[f'_i] = m f_i / N and Var matches the multinomial."""
    fv = FrequencyVector([60, 30, 10])
    sampler = WithReplacementSampler(size=50)
    trials = 2000
    draws = np.array(
        [sampler.sample_frequencies(fv, seed=s)[0].counts for s in range(trials)]
    )
    probabilities = fv.counts / 100
    expected_mean = 50 * probabilities
    expected_var = 50 * probabilities * (1 - probabilities)
    assert np.allclose(draws.mean(axis=0), expected_mean, rtol=0.05)
    assert np.allclose(draws.var(axis=0), expected_var, rtol=0.2)


@pytest.mark.statistical
def test_item_path_matches_frequency_path():
    fv = FrequencyVector([60, 30, 10])
    keys = fv.to_items()
    sampler = WithReplacementSampler(size=40)
    trials = 1000
    item_counts = np.zeros(3)
    for s in range(trials):
        sampled, _ = sampler.sample_items(keys, seed=s)
        item_counts += np.bincount(sampled, minlength=3)
    item_counts /= trials
    assert np.allclose(item_counts, 40 * fv.counts / 100, rtol=0.08)
