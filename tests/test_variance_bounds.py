"""Confidence-interval helpers and the normal quantile approximation."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.errors import ConfigurationError
from repro.variance.bounds import (
    chebyshev_interval,
    clt_interval,
    normal_quantile,
)


class TestNormalQuantile:
    def test_matches_scipy_across_range(self):
        for p in (1e-9, 1e-4, 0.01, 0.025, 0.3, 0.5, 0.7, 0.975, 0.99, 1 - 1e-6):
            assert normal_quantile(p) == pytest.approx(
                stats.norm.ppf(p), abs=1e-6
            )

    def test_symmetry(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.9) == pytest.approx(-normal_quantile(0.1), rel=1e-8)

    def test_rejects_out_of_range(self):
        for p in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ConfigurationError):
                normal_quantile(p)


class TestIntervals:
    def test_clt_halfwidth(self):
        interval = clt_interval(100.0, variance=25.0, confidence=0.95)
        assert interval.half_width == pytest.approx(1.959964 * 5, rel=1e-5)
        assert interval.contains(100.0)
        assert interval.method == "clt"

    def test_chebyshev_halfwidth(self):
        interval = chebyshev_interval(100.0, variance=25.0, confidence=0.95)
        assert interval.half_width == pytest.approx(5 / math.sqrt(0.05), rel=1e-12)
        assert interval.method == "chebyshev"

    def test_chebyshev_wider_than_clt(self):
        clt = clt_interval(0.0, 1.0, 0.95)
        chebyshev = chebyshev_interval(0.0, 1.0, 0.95)
        assert chebyshev.half_width > clt.half_width

    def test_zero_variance_collapses(self):
        interval = clt_interval(7.0, 0.0)
        assert interval.low == interval.high == 7.0
        assert interval.contains(7.0)
        assert not interval.contains(7.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            clt_interval(0.0, -1.0)
        with pytest.raises(ConfigurationError):
            chebyshev_interval(0.0, 1.0, confidence=1.0)
        with pytest.raises(ConfigurationError):
            chebyshev_interval(0.0, 1.0, confidence=0.0)

    @pytest.mark.statistical
    def test_clt_coverage_on_gaussian_estimates(self):
        rng = np.random.default_rng(5)
        truth, sigma = 50.0, 3.0
        hits = 0
        trials = 2000
        for _ in range(trials):
            estimate = rng.normal(truth, sigma)
            if clt_interval(estimate, sigma**2, 0.95).contains(truth):
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.02)

    @pytest.mark.statistical
    def test_chebyshev_coverage_at_least_nominal(self):
        rng = np.random.default_rng(6)
        truth, sigma = 10.0, 2.0
        trials = 2000
        hits = sum(
            chebyshev_interval(rng.normal(truth, sigma), sigma**2, 0.9).contains(truth)
            for _ in range(trials)
        )
        assert hits / trials >= 0.9
