"""Cross-cutting coverage: smaller paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.errors import ConfigurationError


class TestCliCsvDir:
    def test_all_with_csv_dir(self, tmp_path, capsys):
        from repro.experiments.cli import main

        code = main(
            [
                "fig2",
                "--scale",
                "small",
                "--trials",
                "3",
                "--csv-dir",
                str(tmp_path / "out"),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert (tmp_path / "out" / "fig2.csv").exists()


class TestEngineCheckpointEdges:
    def test_tiny_first_checkpoint_bumped_to_two_tuples(self):
        from repro.engine import OnlineSelfJoinAggregator
        from repro.sketches import FagmsSketch
        from repro.streams import Relation

        relation = Relation(np.arange(100) % 7)
        aggregator = OnlineSelfJoinAggregator(
            relation, FagmsSketch(32, seed=1), checkpoints=(0.001, 1.0)
        )
        points = list(aggregator.run())
        # The 0.1% checkpoint would be a single tuple; the unbiasing needs
        # at least 2, so the aggregator scans 2.
        assert points[0].tuples_scanned == 2
        assert points[-1].tuples_scanned == 100


class TestCombinerPaths:
    def test_agms_point_estimates_with_median_of_means(self):
        from repro.frequency import FrequencyVector
        from repro.sketches import AgmsSketch

        fv = FrequencyVector(np.array([0, 21, 0, 0]))
        sketch = AgmsSketch(rows=12, seed=2, combine="median-of-means", groups=3)
        sketch.update_frequency_vector(fv)
        assert sketch.point_estimate(1) == pytest.approx(21.0)

    def test_fagms_mean_combining(self):
        from repro.frequency import FrequencyVector
        from repro.sketches import FagmsSketch

        fv = FrequencyVector(np.array([3, 1, 4]))
        sketch = FagmsSketch(buckets=64, rows=4, seed=3, combine="mean")
        sketch.update_frequency_vector(fv)
        rows = sketch.row_second_moments()
        assert sketch.second_moment() == pytest.approx(float(rows.mean()))


class TestScaleAndReport:
    def test_with_rejects_unknown_field(self):
        from repro.experiments import ExperimentScale

        with pytest.raises(TypeError):
            ExperimentScale.small().with_(bogus=1)

    def test_format_table_without_title(self):
        from repro.experiments import format_table

        table = format_table(("a",), [(1,)])
        assert table.splitlines()[0].strip() == "a"

    def test_scale_validates_every_field(self):
        from repro.experiments import ExperimentScale

        for field in ("n_tuples", "domain_size", "buckets", "trials", "tpch_orders"):
            with pytest.raises(ConfigurationError):
                ExperimentScale(**{field: 0})


class TestSamplerEdgeCases:
    def test_wor_fraction_rounds_to_at_least_one(self, rng):
        from repro.sampling import WithoutReplacementSampler

        sampler = WithoutReplacementSampler(fraction=1e-9)
        sampled, info = sampler.sample_items(np.arange(100), rng)
        assert info.sample_size == 1

    def test_wor_fraction_never_exceeds_population(self, rng):
        from repro.sampling import WithoutReplacementSampler

        sampler = WithoutReplacementSampler(fraction=0.999999)
        assert sampler.resolve_size(3) <= 3

    def test_bernoulli_info_fraction_zero_population(self):
        from repro.sampling import SampleInfo

        info = SampleInfo("bernoulli", 0, 0, probability=0.5)
        assert info.fraction == 0.0


class TestMersenneConstants:
    def test_primes_are_prime(self):
        import sympy

        from repro.hashing import MERSENNE_P31, MERSENNE_P61

        assert sympy.isprime(MERSENNE_P31)
        assert sympy.isprime(MERSENNE_P61)
        assert MERSENNE_P31 == 2**31 - 1
        assert MERSENNE_P61 == 2**61 - 1


class TestWindowProcessEmptyChunk:
    def test_empty_chunk_is_noop(self):
        from repro.core.windows import TumblingWindowSketcher

        sketcher = TumblingWindowSketcher(10, buckets=8, seed=4)
        assert sketcher.process(np.array([], dtype=np.int64)) == []
        assert sketcher.current_fill == 0


class TestStatisticsEngineSeedSharing:
    def test_cross_relation_sketches_share_families(self):
        from repro.engine import OnlineStatisticsEngine

        engine = OnlineStatisticsEngine(buckets=64, seed=5)
        engine.register("a", 10)
        engine.register("b", 10)
        sketch_a = engine._relations["a"].sketch
        sketch_b = engine._relations["b"].sketch
        sketch_a.check_compatible(sketch_b)  # must not raise
