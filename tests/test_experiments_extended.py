"""Extended studies (averaging floor, interval coverage) — structure tests.

The statistical shape assertions run in the benchmark suite at higher
trial counts; here we test structure, determinism, and basic sanity at
tiny scale.
"""

import pytest

from repro.experiments import (
    ExperimentScale,
    ext1_error_vs_buckets,
    ext2_interval_coverage,
)

SCALE = ExperimentScale.small().with_(trials=5)


class TestExt1:
    def test_structure(self):
        result = ext1_error_vs_buckets(SCALE, buckets_sweep=(32, 128))
        assert result.figure == "Ext 1"
        assert len(result.rows) == 2
        assert result.columns[-1] == "sampling_floor_1sigma"

    def test_floor_constant_across_rows(self):
        result = ext1_error_vs_buckets(SCALE, buckets_sweep=(32, 128, 512))
        floors = result.column("sampling_floor_1sigma")
        assert len(set(floors)) == 1
        assert floors[0] > 0

    def test_floor_scales_with_rate(self):
        loose = ext1_error_vs_buckets(SCALE, buckets_sweep=(32,), p=0.02)
        tight = ext1_error_vs_buckets(SCALE, buckets_sweep=(32,), p=0.5)
        assert loose.column("sampling_floor_1sigma")[0] > tight.column(
            "sampling_floor_1sigma"
        )[0]

    def test_deterministic(self):
        a = ext1_error_vs_buckets(SCALE, buckets_sweep=(64,))
        b = ext1_error_vs_buckets(SCALE, buckets_sweep=(64,))
        assert a.rows == b.rows


class TestExt2:
    def test_structure(self):
        result = ext2_interval_coverage(SCALE)
        assert result.figure == "Ext 2"
        schemes = result.column("scheme")
        assert schemes == [
            "bernoulli",
            "with_replacement",
            "without_replacement",
        ]
        for coverage in result.column("coverage"):
            assert 0.0 <= coverage <= 1.0

    def test_respects_confidence_argument(self):
        result = ext2_interval_coverage(SCALE, confidence=0.5)
        assert result.column("nominal") == [0.5, 0.5, 0.5]

    @pytest.mark.statistical
    def test_coverage_close_to_nominal_at_moderate_trials(self):
        scale = ExperimentScale.small().with_(trials=40)
        result = ext2_interval_coverage(scale, confidence=0.9)
        for coverage in result.column("coverage"):
            assert coverage >= 0.7
