"""Online aggregation: scan mechanics, convergence, intervals."""

import pytest

from repro.engine import OnlineJoinAggregator, OnlineSelfJoinAggregator
from repro.engine.online_aggregation import _checkpoint_counts, _validate_checkpoints
from repro.errors import ConfigurationError
from repro.sketches import FagmsSketch
from repro.streams import generate_tpch, zipf_relation


@pytest.fixture
def shuffled_relation():
    return zipf_relation(20_000, 1_000, skew=0.8, seed=40).shuffled(seed=41)


class TestCheckpointHelpers:
    def test_validate_sorts_and_dedups(self):
        assert _validate_checkpoints([0.5, 0.1, 0.5]) == [0.1, 0.5]

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            _validate_checkpoints([0.0, 0.5])
        with pytest.raises(ConfigurationError):
            _validate_checkpoints([0.5, 1.5])
        with pytest.raises(ConfigurationError):
            _validate_checkpoints([])

    def test_counts(self):
        assert _checkpoint_counts([0.1, 1.0], 100) == [10, 100]
        assert _checkpoint_counts([0.001], 100) == [1]


class TestSelfJoinAggregator:
    def test_yields_one_point_per_checkpoint(self, shuffled_relation):
        aggregator = OnlineSelfJoinAggregator(
            shuffled_relation,
            FagmsSketch(512, seed=1),
            checkpoints=(0.1, 0.5, 1.0),
        )
        points = list(aggregator.run())
        assert [point.fraction for point in points] == [0.1, 0.5, 1.0]
        assert points[-1].tuples_scanned == len(shuffled_relation)

    def test_estimates_converge_to_plain_sketch(self, shuffled_relation):
        sketch = FagmsSketch(512, seed=2)
        aggregator = OnlineSelfJoinAggregator(
            shuffled_relation, sketch, checkpoints=(0.1, 1.0)
        )
        final = list(aggregator.run())[-1]
        plain = FagmsSketch(512, seed=2)
        plain.update(shuffled_relation.keys)
        assert final.estimate == pytest.approx(plain.second_moment())

    def test_estimates_reasonable_at_ten_percent(self, shuffled_relation):
        truth = shuffled_relation.self_join_size()
        aggregator = OnlineSelfJoinAggregator(
            shuffled_relation, FagmsSketch(1024, seed=3), checkpoints=(0.1,)
        )
        point = next(iter(aggregator.run()))
        assert point.estimate == pytest.approx(truth, rel=0.4)

    def test_intervals_present_with_true_frequencies(self, shuffled_relation):
        aggregator = OnlineSelfJoinAggregator(
            shuffled_relation,
            FagmsSketch(512, seed=4),
            checkpoints=(0.2, 1.0),
            true_frequencies=shuffled_relation.frequency_vector(),
        )
        points = list(aggregator.run())
        assert all(point.interval is not None for point in points)
        # Interval width shrinks as more data is scanned.
        assert points[-1].interval.half_width < points[0].interval.half_width

    def test_intervals_absent_without_true_frequencies(self, shuffled_relation):
        aggregator = OnlineSelfJoinAggregator(
            shuffled_relation, FagmsSketch(256, seed=5), checkpoints=(0.5,)
        )
        assert next(iter(aggregator.run())).interval is None

    def test_rejects_tiny_relation(self):
        from repro.streams import Relation

        with pytest.raises(ConfigurationError):
            OnlineSelfJoinAggregator(Relation([1]), FagmsSketch(16, seed=1))

    @pytest.mark.statistical
    def test_interval_coverage(self):
        relation = zipf_relation(5_000, 500, 0.8, seed=50)
        truth = relation.self_join_size()
        fv = relation.frequency_vector()
        hits = total = 0
        for seed in range(15):
            shuffled = relation.shuffled(seed=seed)
            aggregator = OnlineSelfJoinAggregator(
                shuffled,
                FagmsSketch(256, seed=700 + seed),
                checkpoints=(0.1, 0.3),
                true_frequencies=fv,
                confidence=0.95,
            )
            for point in aggregator.run():
                hits += point.interval.contains(truth)
                total += 1
        assert hits / total >= 0.8


class TestJoinAggregator:
    def test_lockstep_scan_on_tpch(self):
        tables = generate_tpch(scale_factor=0.004, seed=60)
        truth = tables.exact_join_size()
        sketch = FagmsSketch(1024, seed=6)
        aggregator = OnlineJoinAggregator(
            tables.lineitem,
            tables.orders,
            sketch,
            sketch.copy_empty(),
            checkpoints=(0.1, 0.5, 1.0),
            true_frequencies=(
                tables.lineitem.frequency_vector(),
                tables.orders.frequency_vector(),
            ),
        )
        points = list(aggregator.run())
        assert len(points) == 3
        final = points[-1]
        assert final.estimate == pytest.approx(truth, rel=0.25)
        assert all(point.interval is not None for point in points)

    def test_domain_mismatch_rejected(self):
        f = zipf_relation(100, 50, 0.5, seed=1)
        g = zipf_relation(100, 60, 0.5, seed=2)
        sketch = FagmsSketch(64, seed=1)
        with pytest.raises(ConfigurationError):
            OnlineJoinAggregator(f, g, sketch, sketch.copy_empty())

    def test_incompatible_sketches_rejected(self):
        f = zipf_relation(100, 50, 0.5, seed=1)
        g = zipf_relation(100, 50, 0.5, seed=2)
        from repro.errors import IncompatibleSketchError

        with pytest.raises(IncompatibleSketchError):
            OnlineJoinAggregator(
                f, g, FagmsSketch(64, seed=1), FagmsSketch(64, seed=2)
            )

    def test_scanned_counts_scale_with_relation_sizes(self):
        f = zipf_relation(1_000, 100, 0.5, seed=3)
        g = zipf_relation(500, 100, 0.5, seed=4)
        sketch = FagmsSketch(64, seed=5)
        aggregator = OnlineJoinAggregator(
            f, g, sketch, sketch.copy_empty(), checkpoints=(0.5,)
        )
        point = next(iter(aggregator.run()))
        assert point.tuples_scanned == 500 + 250
