"""Sampling-only baselines (Props 3–6): correctness and the classic
sampling-vs-sketching trade-off."""

import numpy as np
import pytest

from repro.core.sampling_estimators import (
    sample_join_interval,
    sample_join_size,
    sample_self_join_interval,
    sample_self_join_size,
)
from repro.errors import DomainError
from repro.sampling import (
    BernoulliSampler,
    WithReplacementSampler,
    WithoutReplacementSampler,
)
from repro.streams.synthetic import zipf_frequency_vector

F = zipf_frequency_vector(20_000, 1_000, 1.0, seed=85, shuffle_values=False)
G = zipf_frequency_vector(20_000, 1_000, 1.0, seed=86, shuffle_values=False)

SAMPLERS = [
    BernoulliSampler(0.2),
    WithReplacementSampler(fraction=0.2),
    WithoutReplacementSampler(fraction=0.2),
]


@pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.scheme)
def test_full_information_recovers_truth_for_exact_schemes(sampler):
    """With a 100% Bernoulli/WOR sample the estimators are exact."""
    if sampler.scheme == "with_replacement":
        pytest.skip("WR never reduces to the identity")
    full = (
        BernoulliSampler(1.0)
        if sampler.scheme == "bernoulli"
        else WithoutReplacementSampler(fraction=1.0)
    )
    sample, info = full.sample_frequencies(F, seed=1)
    assert sample_self_join_size(sample, info, F.domain_size) == pytest.approx(F.f2)
    sample_g, info_g = full.sample_frequencies(G, seed=2)
    assert sample_join_size(
        sample, info, sample_g, info_g, F.domain_size
    ) == pytest.approx(F.join_size(G))


@pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.scheme)
@pytest.mark.statistical
def test_self_join_unbiased(sampler):
    estimates = []
    for seed in range(200):
        sample, info = sampler.sample_frequencies(F, seed=seed)
        estimates.append(sample_self_join_size(sample, info, F.domain_size))
    estimates = np.asarray(estimates)
    standard_error = estimates.std(ddof=1) / np.sqrt(estimates.size)
    assert abs(estimates.mean() - F.f2) < 5 * standard_error


@pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.scheme)
@pytest.mark.statistical
def test_join_unbiased(sampler):
    truth = F.join_size(G)
    estimates = []
    for seed in range(200):
        sample_f, info_f = sampler.sample_frequencies(F, seed=2 * seed)
        sample_g, info_g = sampler.sample_frequencies(G, seed=2 * seed + 1)
        estimates.append(
            sample_join_size(sample_f, info_f, sample_g, info_g, F.domain_size)
        )
    estimates = np.asarray(estimates)
    standard_error = estimates.std(ddof=1) / np.sqrt(estimates.size)
    assert abs(estimates.mean() - truth) < 5 * standard_error


def test_accepts_key_arrays():
    sampler = BernoulliSampler(0.5)
    keys = F.to_items()
    sampled, info = sampler.sample_items(keys, seed=3)
    estimate = sample_self_join_size(sampled, info, F.domain_size)
    assert estimate == pytest.approx(F.f2, rel=0.25)


def test_rejects_domain_mismatch():
    sampler = BernoulliSampler(0.5)
    sample, info = sampler.sample_frequencies(F, seed=4)
    with pytest.raises(DomainError):
        sample_self_join_size(sample, info, F.domain_size + 1)


def test_intervals_cover_truth_typically():
    hits_self = hits_join = 0
    trials = 12
    sampler = WithoutReplacementSampler(fraction=0.2)
    for seed in range(trials):
        sample_f, info_f = sampler.sample_frequencies(F, seed=seed)
        sample_g, info_g = sampler.sample_frequencies(G, seed=100 + seed)
        estimate_self = sample_self_join_size(sample_f, info_f, F.domain_size)
        interval_self = sample_self_join_interval(estimate_self, F, info_f)
        hits_self += interval_self.contains(F.f2)
        estimate_join = sample_join_size(
            sample_f, info_f, sample_g, info_g, F.domain_size
        )
        interval_join = sample_join_interval(
            estimate_join, F, G, info_f, info_g
        )
        hits_join += interval_join.contains(F.join_size(G))
    assert hits_self >= trials - 2
    assert hits_join >= trials - 2


def test_chebyshev_interval_method():
    sampler = BernoulliSampler(0.3)
    sample, info = sampler.sample_frequencies(F, seed=5)
    estimate = sample_self_join_size(sample, info, F.domain_size)
    clt = sample_self_join_interval(estimate, F, info, method="clt")
    chebyshev = sample_self_join_interval(estimate, F, info, method="chebyshev")
    assert chebyshev.half_width > clt.half_width


def test_classic_tradeoff_sampling_better_for_join_sketch_for_f2():
    """The paper's §V-B remark (citing ref [2]): at equal budgets, sampling
    is the stronger primitive for size of join while sketching is stronger
    for the second frequency moment.

    Verified on the *exact theoretical variances* — WOR sample of ``m``
    tuples vs ``m`` averaged AGMS estimators — so the comparison is
    deterministic.
    """
    from repro.sampling.base import SampleInfo
    from repro.sampling.coefficients import SamplingCoefficients
    from repro.sampling.moments import WithoutReplacementMoments
    from repro.sampling.unbiasing import self_join_correction
    from repro.variance.generic import sampling_self_join_variance
    from repro.variance.sampling import wor_join_variance
    from repro.variance.sketch import agms_join_variance, agms_self_join_variance

    f = zipf_frequency_vector(20_000, 1_000, 0.8, seed=87, shuffle_values=True)
    g = zipf_frequency_vector(20_000, 1_000, 0.8, seed=88, shuffle_values=True)
    budget = 1_000  # tuples for the sample == basic estimators for the sketch
    coeff_f = SamplingCoefficients(budget, f.total)
    coeff_g = SamplingCoefficients(budget, g.total)

    join_sample_var = float(wor_join_variance(f, g, coeff_f, coeff_g))
    join_sketch_var = agms_join_variance(f, g) / budget
    assert join_sample_var < join_sketch_var

    correction = self_join_correction(
        SampleInfo("without_replacement", f.total, budget)
    )
    model = WithoutReplacementMoments(budget, f.total)
    f2_sample_var = float(
        sampling_self_join_variance(model, f, correction.scale)
    )
    f2_sketch_var = agms_self_join_variance(f) / budget
    assert f2_sketch_var < f2_sample_var
