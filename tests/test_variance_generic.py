"""Generic evaluator API: modes, limits, validation, model dispatch."""

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.sampling import SampleInfo
from repro.sampling.moments import (
    BernoulliMoments,
    WithReplacementMoments,
    WithoutReplacementMoments,
)
from repro.variance.generic import (
    combined_join_expectation,
    combined_join_variance,
    combined_self_join_expectation,
    combined_self_join_variance,
    moment_model_for,
    sampling_join_variance,
)

P = Fraction(1, 4)


class TestModelDispatch:
    def test_bernoulli(self):
        info = SampleInfo("bernoulli", 100, 25, probability=0.25)
        model = moment_model_for(info)
        assert isinstance(model, BernoulliMoments)
        assert model.p == Fraction(1, 4)

    def test_wr(self):
        info = SampleInfo("with_replacement", 100, 25)
        model = moment_model_for(info)
        assert isinstance(model, WithReplacementMoments)
        assert model.sample_size == 25

    def test_wor(self):
        info = SampleInfo("without_replacement", 100, 25)
        assert isinstance(moment_model_for(info), WithoutReplacementMoments)

    def test_unknown(self):
        info = SampleInfo("with_replacement", 100, 25)
        object.__setattr__(info, "scheme", "bogus")
        with pytest.raises(ConfigurationError):
            moment_model_for(info)


class TestModes:
    def test_float_mode_matches_exact(self, small_f, small_g):
        model_f, model_g = BernoulliMoments(P), BernoulliMoments(P)
        scale = 1 / (P * P)
        for n in (None, 1, 7):
            exact = combined_join_variance(
                model_f, small_f, model_g, small_g, scale, n, exact=True
            )
            floats = combined_join_variance(
                model_f, small_f, model_g, small_g, float(scale), n, exact=False
            )
            assert floats == pytest.approx(float(exact), rel=1e-10)

    def test_self_join_float_mode_matches_exact(self, small_f):
        model = BernoulliMoments(P)
        scale = 1 / P**2
        c = (1 - P) / P**2
        exact = combined_self_join_variance(
            model, small_f, scale, 3, correction=c, exact=True
        )
        floats = combined_self_join_variance(
            model, small_f, float(scale), 3, correction=float(c), exact=False
        )
        assert floats == pytest.approx(float(exact), rel=1e-10)


class TestLimitsAndValidation:
    def test_variance_decreases_with_n(self, small_f, small_g):
        model = BernoulliMoments(P)
        scale = 1 / (P * P)
        variances = [
            float(
                combined_join_variance(
                    model, small_f, model, small_g, scale, n, exact=True
                )
            )
            for n in (1, 4, 64)
        ]
        assert variances[0] > variances[1] > variances[2]

    def test_sampling_variance_is_lower_bound(self, small_f, small_g):
        model = BernoulliMoments(P)
        scale = 1 / (P * P)
        sampling_only = float(
            sampling_join_variance(model, small_f, model, small_g, scale, exact=True)
        )
        with_sketch = float(
            combined_join_variance(
                model, small_f, model, small_g, scale, 1000, exact=True
            )
        )
        assert with_sketch > sampling_only

    def test_rejects_nonpositive_n(self, small_f, small_g):
        model = BernoulliMoments(P)
        with pytest.raises(ConfigurationError):
            combined_join_variance(model, small_f, model, small_g, 1, 0)
        with pytest.raises(ConfigurationError):
            combined_self_join_variance(model, small_f, 1, -3)

    def test_full_bernoulli_sample_reduces_to_sketch_variance(self, small_f):
        """p=1: sampling contributes nothing; Prop 12 -> Eq 16 / n."""
        from repro.variance.sketch import agms_self_join_variance

        model = BernoulliMoments(Fraction(1))
        n = 5
        variance = combined_self_join_variance(model, small_f, 1, n, exact=True)
        assert variance == Fraction(agms_self_join_variance(small_f), n)

    def test_full_wor_sample_reduces_to_sketch_variance(self, small_f, small_g):
        from repro.variance.sketch import agms_join_variance

        total_f, total_g = small_f.total, small_g.total
        model_f = WithoutReplacementMoments(total_f, total_f)
        model_g = WithoutReplacementMoments(total_g, total_g)
        n = 3
        variance = combined_join_variance(
            model_f, small_f, model_g, small_g, 1, n, exact=True
        )
        assert variance == Fraction(agms_join_variance(small_f, small_g), n)


class TestExpectations:
    def test_join_expectation_unbiased_with_inverse_scale(self, small_f, small_g):
        model = BernoulliMoments(P)
        scale = 1 / (P * P)
        assert combined_join_expectation(
            model, small_f, model, small_g, scale, exact=True
        ) == small_f.join_size(small_g)

    def test_join_expectation_biased_without_scale(self, small_f, small_g):
        model = BernoulliMoments(P)
        value = combined_join_expectation(
            model, small_f, model, small_g, 1, exact=True
        )
        assert value == P * P * small_f.join_size(small_g)

    def test_self_join_expectation_with_constant(self, small_f):
        model = WithReplacementMoments(6, small_f.total)
        from repro.sampling.coefficients import SamplingCoefficients

        coefficients = SamplingCoefficients(6, small_f.total)
        scale = 1 / (coefficients.alpha * coefficients.alpha2)
        constant = small_f.total / coefficients.alpha2
        assert (
            combined_self_join_expectation(
                model, small_f, scale, constant=constant, exact=True
            )
            == small_f.f2
        )
