"""The experiments CLI and CSV export."""

import csv
import io

import pytest

from repro.experiments.cli import FIGURES, main
from repro.experiments.figures import fig2_self_join_variance_decomposition
from repro.experiments.config import ExperimentScale


def _tiny_args(extra):
    return ["--scale", "small", "--trials", "3", *extra]


def test_figure_registry_complete():
    expected = [f"fig{i}" for i in range(1, 9)] + ["ext1", "ext2", "ext3"]
    assert sorted(FIGURES) == sorted(expected)


def test_single_figure_to_stdout(capsys):
    assert main(["fig2", *_tiny_args([])]) == 0
    out = capsys.readouterr().out
    assert "[Fig 2]" in out
    assert "sampling_share" in out


def test_out_file(tmp_path, capsys):
    out_file = tmp_path / "fig2.txt"
    assert main(["fig2", *_tiny_args(["--out", str(out_file)])]) == 0
    capsys.readouterr()
    assert "[Fig 2]" in out_file.read_text()


def test_csv_export(tmp_path, capsys):
    csv_file = tmp_path / "fig2.csv"
    assert main(["fig2", *_tiny_args(["--csv", str(csv_file)])]) == 0
    capsys.readouterr()
    rows = list(csv.reader(io.StringIO(csv_file.read_text())))
    assert rows[0] == ["skew", "p", "sampling_share", "sketch_share", "interaction_share"]
    assert len(rows) > 1


def test_csv_rejected_for_all(tmp_path, capsys):
    code = main(["all", *_tiny_args(["--csv", str(tmp_path / "x.csv")])])
    capsys.readouterr()
    assert code == 2


def test_seed_override_changes_results(capsys):
    main(["fig4", "--scale", "small", "--trials", "3", "--seed", "1"])
    first = capsys.readouterr().out
    main(["fig4", "--scale", "small", "--trials", "3", "--seed", "2"])
    second = capsys.readouterr().out
    assert first != second


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_figure_result_csv_round_trip():
    scale = ExperimentScale.small().with_(trials=3)
    result = fig2_self_join_variance_decomposition(
        scale, skews=(0.0,), probabilities=(0.1,)
    )
    parsed = list(csv.reader(io.StringIO(result.to_csv())))
    assert parsed[0] == list(result.columns)
    assert len(parsed) == 1 + len(result.rows)
    assert float(parsed[1][0]) == result.rows[0][0]
