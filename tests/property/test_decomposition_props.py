"""Property tests of the variance decomposition invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import FrequencyVector
from repro.sampling.base import SampleInfo
from repro.variance.decomposition import decompose_combined_variance

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=10), min_size=2, max_size=12
).map(lambda values: np.array(values, dtype=np.int64))

probabilities = st.floats(min_value=0.05, max_value=1.0)
n_averages = st.integers(min_value=1, max_value=200)


def _nonempty(counts):
    if counts.sum() < 2:
        counts = counts.copy()
        counts[0] = 2
    return FrequencyVector(counts)


def _bernoulli_info(fv, p):
    return SampleInfo(
        "bernoulli", fv.total, max(1, int(p * fv.total)), probability=p
    )


@given(counts_arrays, probabilities, n_averages)
@settings(max_examples=40, deadline=None)
def test_self_join_terms_nonnegative_and_shares_sum_to_one(counts, p, n):
    f = _nonempty(counts)
    parts = decompose_combined_variance(f, _bernoulli_info(f, p), n)
    assert parts.sampling >= -1e-9
    assert parts.sketch >= 0
    total = parts.total
    if total > 0:
        shares = parts.shares()
        assert abs(sum(shares) - 1.0) < 1e-9
        # Interaction can't be more negative than rounding noise relative
        # to the other terms (it is a sum of non-negative off-diagonal
        # moment products for Bernoulli sampling).
        assert parts.interaction >= -1e-6 * max(total, 1.0)


@given(counts_arrays, probabilities, n_averages)
@settings(max_examples=30, deadline=None)
def test_join_decomposition_consistency(counts, p, n):
    f = _nonempty(counts)
    rng = np.random.default_rng(counts.size)
    g = _nonempty(rng.integers(0, 10, size=counts.size))
    info_f = _bernoulli_info(f, p)
    info_g = _bernoulli_info(g, p)
    parts = decompose_combined_variance(f, info_f, n, g=g, info_g=info_g)
    assert parts.total >= -1e-9
    assert parts.sketch >= 0
    assert parts.sampling >= -1e-9


@given(counts_arrays, probabilities)
@settings(max_examples=30, deadline=None)
def test_more_averaging_shifts_share_toward_sampling(counts, p):
    """Growing n shrinks the sketch+interaction terms, so the sampling
    share is non-decreasing in n (whenever the total stays positive)."""
    f = _nonempty(counts)
    info = _bernoulli_info(f, p)
    small_n = decompose_combined_variance(f, info, 2)
    large_n = decompose_combined_variance(f, info, 128)
    if small_n.total > 0 and large_n.total > 0:
        assert large_n.shares()[0] >= small_n.shares()[0] - 1e-9


@given(counts_arrays, n_averages)
@settings(max_examples=30, deadline=None)
def test_full_sample_leaves_only_sketch_variance(counts, n):
    f = _nonempty(counts)
    info = SampleInfo("bernoulli", f.total, f.total, probability=1.0)
    parts = decompose_combined_variance(f, info, n)
    assert parts.sampling == 0
    assert abs(parts.interaction) < 1e-9 * max(parts.total, 1.0) + 1e-9
    # With p = 1 the combined estimator IS the plain sketch: the total
    # variance equals the sketch term (up to float subtraction noise).
    assert parts.total == pytest.approx(parts.sketch, rel=1e-9, abs=1e-9)
