"""Property-based tests of the factorial-moment models."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.moments import (
    BernoulliMoments,
    WithReplacementMoments,
    WithoutReplacementMoments,
    falling_factorial,
)

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=10
).map(lambda values: np.array(values, dtype=np.int64))

probabilities = st.fractions(min_value=Fraction(1, 50), max_value=1)


def _models(counts, p, sample_size):
    total = max(1, int(counts.sum()))
    m = max(1, min(sample_size, total))
    return [
        BernoulliMoments(p),
        WithReplacementMoments(m, total),
        WithoutReplacementMoments(m, total),
    ]


@given(counts_arrays, probabilities, st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_kappa_decreasing_in_order(counts, p, sample_size):
    """κ_k is non-increasing in k for every scheme (κ_k ∈ [0, 1])."""
    for model in _models(counts, p, sample_size):
        kappas = [model.kappa(k) for k in range(1, 5)]
        assert all(0 <= kappa <= 1 for kappa in kappas)
        assert all(a >= b for a, b in zip(kappas, kappas[1:]))


@given(counts_arrays, probabilities, st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_first_moment_is_scaled_count_sum(counts, p, sample_size):
    for model in _models(counts, p, sample_size):
        expected = model.kappa(1) * int(counts.sum())
        assert model.sum_raw_moment(counts, 1, exact=True) == expected


@given(counts_arrays, probabilities, st.integers(min_value=2, max_value=20))
@settings(max_examples=40, deadline=None)
def test_second_moment_at_least_squared_mean_per_value(counts, p, sample_size):
    """E[X²] >= E[X]² per domain value (Jensen)."""
    for model in _models(counts, p, sample_size):
        e1 = model.raw_moment_array(counts, 1, exact=True)
        e2 = model.raw_moment_array(counts, 2, exact=True)
        assert np.all(e2 >= e1 * e1)


@given(counts_arrays, probabilities, st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_moments_vanish_outside_support(counts, p, sample_size):
    for model in _models(counts, p, sample_size):
        for order in (1, 2, 3, 4):
            values = model.raw_moment_array(counts, order, exact=True)
            assert np.all(values[counts == 0] == 0)


@given(counts_arrays, probabilities, st.integers(min_value=1, max_value=20))
@settings(max_examples=30, deadline=None)
def test_offdiag_sum_symmetry(counts, p, sample_size):
    for model in _models(counts, p, sample_size):
        assert model.offdiag_joint_sum(
            counts, 2, 1, exact=True
        ) == model.offdiag_joint_sum(counts, 1, 2, exact=True)


@given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=6))
def test_falling_factorial_recurrence(x, k):
    if k > 0:
        assert falling_factorial(x, k) == falling_factorial(x, k - 1) * (x - k + 1)


@given(counts_arrays)
@settings(max_examples=40, deadline=None)
def test_full_wor_sample_moments_are_deterministic(counts):
    """Sampling the whole population WOR: f' = f, so E[f'^r] = f^r."""
    total = int(counts.sum())
    if total == 0:
        return
    model = WithoutReplacementMoments(total, total)
    for order in (1, 2, 3, 4):
        expected = int((counts.astype(object) ** order).sum())
        assert model.sum_raw_moment(counts, order, exact=True) == expected
