"""Property-based tests of sketch invariants (linearity, exactness)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import FrequencyVector
from repro.sketches import AgmsSketch, CountMinSketch, FagmsSketch

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=20), min_size=1, max_size=16
).map(lambda values: np.array(values, dtype=np.int64))

seeds = st.integers(min_value=0, max_value=2**31)


def _sketch_pair(cls, seed, **kwargs):
    a = cls(seed=seed, **kwargs)
    return a, a.copy_empty()


SKETCH_FACTORIES = [
    lambda seed: AgmsSketch(rows=5, seed=seed),
    lambda seed: FagmsSketch(buckets=8, rows=2, seed=seed),
    lambda seed: CountMinSketch(buckets=8, rows=2, seed=seed),
]


@given(counts_arrays, counts_arrays, seeds)
@settings(max_examples=30, deadline=None)
def test_merge_equals_union_for_all_sketches(a, b, seed):
    size = min(a.size, b.size)
    fa, fb = FrequencyVector(a[:size]), FrequencyVector(b[:size])
    for factory in SKETCH_FACTORIES:
        one = factory(seed)
        two = one.copy_empty()
        union = one.copy_empty()
        one.update_frequency_vector(fa)
        two.update_frequency_vector(fb)
        union.update_frequency_vector(fa + fb)
        one.merge(two)
        assert np.allclose(one._state(), union._state())


@given(counts_arrays, seeds)
@settings(max_examples=30, deadline=None)
def test_insert_then_delete_leaves_empty_sketch(counts, seed):
    fv = FrequencyVector(counts)
    for factory in SKETCH_FACTORIES:
        sketch = factory(seed)
        support = np.flatnonzero(fv.counts)
        if support.size == 0:
            continue
        weights = fv.counts[support].astype(np.float64)
        sketch.update(support, weights)
        sketch.update(support, -weights)
        assert np.allclose(sketch._state(), 0.0)


@given(counts_arrays, seeds)
@settings(max_examples=30, deadline=None)
def test_frequency_and_item_updates_agree(counts, seed):
    fv = FrequencyVector(counts)
    for factory in SKETCH_FACTORIES:
        by_items = factory(seed)
        by_vector = by_items.copy_empty()
        by_items.update(fv.to_items())
        by_vector.update_frequency_vector(fv)
        assert np.allclose(by_items._state(), by_vector._state())


@given(counts_arrays, seeds)
@settings(max_examples=30, deadline=None)
def test_agms_single_value_estimates_exact(counts, seed):
    """A relation concentrated on one value is estimated exactly by AGMS:
    S = ±f so S² = f² with zero variance."""
    if counts.sum() == 0:
        return
    single = np.zeros_like(counts)
    single[int(np.argmax(counts))] = counts.max()
    fv = FrequencyVector(single)
    sketch = AgmsSketch(rows=3, seed=seed)
    sketch.update_frequency_vector(fv)
    assert sketch.second_moment() == float(fv.f2)


@given(counts_arrays, seeds)
@settings(max_examples=30, deadline=None)
def test_fagms_row_estimates_bounded_below_by_zero(counts, seed):
    fv = FrequencyVector(counts)
    sketch = FagmsSketch(buckets=4, rows=3, seed=seed)
    sketch.update_frequency_vector(fv)
    assert np.all(sketch.row_second_moments() >= 0)


@given(counts_arrays, seeds)
@settings(max_examples=30, deadline=None)
def test_countmin_point_estimates_dominate_counts(counts, seed):
    fv = FrequencyVector(counts)
    sketch = CountMinSketch(buckets=4, rows=2, seed=seed)
    sketch.update_frequency_vector(fv)
    for key in range(fv.domain_size):
        assert sketch.point_estimate(key) >= fv[key]
