"""Property-based tests of sampler invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import FrequencyVector
from repro.sampling import (
    BernoulliSampler,
    WithReplacementSampler,
    WithoutReplacementSampler,
)

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=20), min_size=1, max_size=16
).map(lambda values: np.array(values, dtype=np.int64))

seeds = st.integers(min_value=0, max_value=2**31)
probabilities = st.floats(min_value=0.05, max_value=1.0)


def _nonempty(counts):
    if counts.sum() == 0:
        counts = counts.copy()
        counts[0] = 1
    return FrequencyVector(counts)


@given(counts_arrays, probabilities, seeds)
@settings(max_examples=40, deadline=None)
def test_bernoulli_sample_dominated_by_base(counts, p, seed):
    fv = _nonempty(counts)
    sample, info = BernoulliSampler(p).sample_frequencies(fv, seed)
    assert np.all(sample.counts <= fv.counts)
    assert info.sample_size == sample.total
    assert info.population_size == fv.total


@given(counts_arrays, seeds, st.data())
@settings(max_examples=40, deadline=None)
def test_wor_sample_dominated_and_exact_size(counts, seed, data):
    fv = _nonempty(counts)
    size = data.draw(st.integers(min_value=1, max_value=fv.total))
    sample, info = WithoutReplacementSampler(size=size).sample_frequencies(fv, seed)
    assert sample.total == size
    assert np.all(sample.counts <= fv.counts)
    assert info.fraction <= 1.0


@given(counts_arrays, seeds, st.integers(min_value=1, max_value=60))
@settings(max_examples=40, deadline=None)
def test_wr_sample_support_within_base(counts, seed, size):
    fv = _nonempty(counts)
    sample, info = WithReplacementSampler(size=size).sample_frequencies(fv, seed)
    assert sample.total == size
    # WR can only draw values present in the base relation.
    assert np.all((sample.counts > 0) <= (fv.counts > 0))
    assert info.sample_size == size


@given(counts_arrays, probabilities, seeds)
@settings(max_examples=40, deadline=None)
def test_item_and_frequency_paths_share_info_semantics(counts, p, seed):
    fv = _nonempty(counts)
    keys = fv.to_items()
    sampler = BernoulliSampler(p)
    _, info_items = sampler.sample_items(keys, seed)
    _, info_freq = sampler.sample_frequencies(fv, seed)
    assert info_items.scheme == info_freq.scheme == "bernoulli"
    assert info_items.population_size == info_freq.population_size == fv.total


@given(counts_arrays, seeds)
@settings(max_examples=40, deadline=None)
def test_full_wor_sample_is_identity(counts, seed):
    fv = _nonempty(counts)
    sample, _ = WithoutReplacementSampler(fraction=1.0).sample_frequencies(fv, seed)
    assert sample == fv


@given(counts_arrays, seeds)
@settings(max_examples=40, deadline=None)
def test_samplers_are_deterministic_given_seed(counts, seed):
    fv = _nonempty(counts)
    for sampler in (
        BernoulliSampler(0.5),
        WithReplacementSampler(size=5),
        WithoutReplacementSampler(size=min(5, fv.total)),
    ):
        a, _ = sampler.sample_frequencies(fv, seed)
        b, _ = sampler.sample_frequencies(fv, seed)
        assert a == b
