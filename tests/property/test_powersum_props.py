"""Property test: the O(1) power-sum evaluator is exactly the generic one."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import FrequencyVector
from repro.sampling.base import SampleInfo
from repro.sampling.unbiasing import join_scale, self_join_correction
from repro.variance.generic import (
    combined_join_variance,
    combined_self_join_variance,
    moment_model_for,
)
from repro.variance.powersum import (
    FrequencyProfile,
    JoinProfile,
    join_variance_from_profile,
    self_join_variance_from_profile,
)

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=10), min_size=2, max_size=12
).map(lambda values: np.array(values, dtype=np.int64))


def _nonempty(counts):
    if counts.sum() < 2:
        counts = counts.copy()
        counts[0] = 2
    return FrequencyVector(counts)


def _info(scheme, total, data):
    if scheme == "bernoulli":
        p = data.draw(st.floats(min_value=0.05, max_value=1.0))
        return SampleInfo(scheme, total, max(1, total // 2), probability=p)
    size = data.draw(st.integers(min_value=2, max_value=total))
    return SampleInfo(scheme, total, size)


SCHEMES = ("bernoulli", "with_replacement", "without_replacement")


@given(counts_arrays, st.sampled_from(SCHEMES), st.integers(1, 30), st.data())
@settings(max_examples=40, deadline=None)
def test_self_join_profile_identity(counts, scheme, n, data):
    f = _nonempty(counts)
    info = _info(scheme, f.total, data)
    profile = FrequencyProfile.from_vector(f)
    correction = self_join_correction(info)
    expected = combined_self_join_variance(
        moment_model_for(info),
        f,
        correction.scale,
        n,
        correction=correction.random_coefficient,
        exact=True,
    )
    assert self_join_variance_from_profile(profile, info, n) == expected


@given(
    counts_arrays,
    st.sampled_from(SCHEMES),
    st.sampled_from(SCHEMES),
    st.integers(1, 30),
    st.data(),
)
@settings(max_examples=30, deadline=None)
def test_join_profile_identity(counts, scheme_f, scheme_g, n, data):
    f = _nonempty(counts)
    rng = np.random.default_rng(counts.size)
    g = _nonempty(rng.integers(0, 10, size=counts.size))
    info_f = _info(scheme_f, f.total, data)
    info_g = _info(scheme_g, g.total, data)
    profile = JoinProfile.from_vectors(f, g)
    expected = combined_join_variance(
        moment_model_for(info_f),
        f,
        moment_model_for(info_g),
        g,
        join_scale(info_f, info_g),
        n,
        exact=True,
    )
    assert join_variance_from_profile(profile, info_f, info_g, n) == expected
