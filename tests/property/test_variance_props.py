"""Property-based tests of the variance theory.

The central property: for random frequency vectors, random sampling
parameters, and random averaging counts, the paper's closed forms and the
generic moment evaluator agree *exactly* as rationals — i.e. the identity
holds over the whole input space, not just at hand-picked points.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import FrequencyVector
from repro.sampling.coefficients import SamplingCoefficients
from repro.sampling.moments import (
    BernoulliMoments,
    WithReplacementMoments,
    WithoutReplacementMoments,
)
from repro.variance import closed_form as closed
from repro.variance import generic
from repro.variance import sampling as sampling_var

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=12), min_size=2, max_size=12
).map(lambda values: np.array(values, dtype=np.int64))

probabilities = st.fractions(min_value=Fraction(1, 100), max_value=1)
n_averages = st.integers(min_value=1, max_value=50)


def _nonempty(counts):
    if counts.sum() == 0:
        counts = counts.copy()
        counts[0] = 1
    return FrequencyVector(counts)


@given(counts_arrays, counts_arrays, probabilities, probabilities, n_averages)
@settings(max_examples=40, deadline=None)
def test_bernoulli_join_identity(a, b, p, q, n):
    size = min(a.size, b.size)
    f, g = _nonempty(a[:size]), _nonempty(b[:size])
    model_f, model_g = BernoulliMoments(p), BernoulliMoments(q)
    assert closed.bernoulli_combined_join_variance(
        f, g, p, q, n
    ) == generic.combined_join_variance(
        model_f, f, model_g, g, 1 / (p * q), n, exact=True
    )


@given(counts_arrays, probabilities, n_averages)
@settings(max_examples=40, deadline=None)
def test_bernoulli_self_join_identity(a, p, n):
    f = _nonempty(a)
    model = BernoulliMoments(p)
    assert closed.bernoulli_combined_self_join_variance(
        f, p, n
    ) == generic.combined_self_join_variance(
        model, f, 1 / p**2, n, correction=(1 - p) / p**2, exact=True
    )


@given(counts_arrays, counts_arrays, st.data())
@settings(max_examples=30, deadline=None)
def test_fixed_size_join_identities(a, b, data):
    size = min(a.size, b.size)
    f, g = _nonempty(a[:size]), _nonempty(b[:size])
    m_f = data.draw(st.integers(min_value=2, max_value=max(2, f.total)))
    m_g = data.draw(st.integers(min_value=2, max_value=max(2, g.total)))
    m_f = min(m_f, f.total) if f.total >= 2 else 2
    m_g = min(m_g, g.total) if g.total >= 2 else 2
    if f.total < 2 or g.total < 2:
        return
    n = data.draw(n_averages)
    coeff_f = SamplingCoefficients(m_f, f.total)
    coeff_g = SamplingCoefficients(m_g, g.total)
    scale = 1 / (coeff_f.alpha * coeff_g.alpha)
    # WR
    assert closed.wr_combined_join_variance(
        f, g, coeff_f, coeff_g, n
    ) == generic.combined_join_variance(
        WithReplacementMoments(m_f, f.total),
        f,
        WithReplacementMoments(m_g, g.total),
        g,
        scale,
        n,
        exact=True,
    )
    # WOR
    assert closed.wor_combined_join_variance(
        f, g, coeff_f, coeff_g, n
    ) == generic.combined_join_variance(
        WithoutReplacementMoments(m_f, f.total),
        f,
        WithoutReplacementMoments(m_g, g.total),
        g,
        scale,
        n,
        exact=True,
    )


@given(counts_arrays, probabilities, probabilities)
@settings(max_examples=40, deadline=None)
def test_sampling_only_identities(a, p, q):
    f = _nonempty(a)
    rng = np.random.default_rng(f.domain_size)
    g = _nonempty(rng.integers(0, 12, size=f.domain_size))
    assert sampling_var.bernoulli_join_variance(
        f, g, p, q
    ) == generic.sampling_join_variance(
        BernoulliMoments(p), f, BernoulliMoments(q), g, 1 / (p * q), exact=True
    )
    assert sampling_var.bernoulli_self_join_variance(
        f, p
    ) == generic.sampling_self_join_variance(
        BernoulliMoments(p), f, 1 / p**2, correction=(1 - p) / p**2, exact=True
    )


@given(counts_arrays, probabilities, n_averages)
@settings(max_examples=40, deadline=None)
def test_variances_are_non_negative(a, p, n):
    f = _nonempty(a)
    model = BernoulliMoments(p)
    assert closed.bernoulli_combined_self_join_variance(f, p, n) >= 0
    assert generic.sampling_self_join_variance(
        model, f, 1 / p**2, correction=(1 - p) / p**2, exact=True
    ) >= 0


@given(counts_arrays, probabilities)
@settings(max_examples=40, deadline=None)
def test_expectations_unbiased_for_any_input(a, p):
    f = _nonempty(a)
    model = BernoulliMoments(p)
    assert (
        generic.combined_self_join_expectation(
            model, f, 1 / p**2, correction=(1 - p) / p**2, exact=True
        )
        == f.f2
    )


@given(counts_arrays, probabilities, n_averages)
@settings(max_examples=30, deadline=None)
def test_averaging_never_increases_variance(a, p, n):
    f = _nonempty(a)
    model = BernoulliMoments(p)
    scale = 1 / p**2
    c = (1 - p) / p**2
    v_n = generic.combined_self_join_variance(
        model, f, scale, n, correction=c, exact=True
    )
    v_2n = generic.combined_self_join_variance(
        model, f, scale, 2 * n, correction=c, exact=True
    )
    assert v_2n <= v_n
