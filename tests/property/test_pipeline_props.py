"""Property-based tests of streaming pipeline components.

Covers the stateful pieces: the skip-ahead load shedder, the reservoir,
file-backed streams, and sketch serialization.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LoadShedder
from repro.sampling import ReservoirSampler
from repro.sketches import FagmsSketch, load_sketch, save_sketch
from repro.streams.io import read_stream, stream_length, write_stream

key_arrays = st.lists(
    st.integers(min_value=0, max_value=99), min_size=0, max_size=200
).map(lambda values: np.array(values, dtype=np.int64))

seeds = st.integers(min_value=0, max_value=2**31)
probabilities = st.floats(min_value=0.05, max_value=1.0)
chunk_plans = st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=6)


def _chunks(keys, sizes):
    out = []
    start = 0
    for size in sizes:
        out.append(keys[start : start + size])
        start += size
    if start < keys.size:
        out.append(keys[start:])
    return out


@given(key_arrays, probabilities, seeds, chunk_plans)
@settings(max_examples=40, deadline=None)
def test_shedder_output_is_ordered_subsequence(keys, p, seed, sizes):
    shedder = LoadShedder(p, seed=seed)
    kept = [shedder.filter(chunk) for chunk in _chunks(keys, sizes)]
    flat = np.concatenate(kept) if kept else np.empty(0, dtype=np.int64)
    assert shedder.seen == keys.size
    assert shedder.kept == flat.size
    assert flat.size <= keys.size
    # Every kept run is a subsequence of its chunk: total multiset subset.
    kept_sorted = np.sort(flat)
    keys_sorted = np.sort(keys)
    # subsequence of a multiset: every kept value count <= original count
    kept_values, kept_counts = np.unique(kept_sorted, return_counts=True)
    for value, count in zip(kept_values, kept_counts):
        assert count <= int((keys_sorted == value).sum())


@given(key_arrays, seeds, st.integers(min_value=1, max_value=30), chunk_plans)
@settings(max_examples=40, deadline=None)
def test_reservoir_size_invariant(keys, seed, capacity, sizes):
    reservoir = ReservoirSampler(capacity, seed=seed)
    for chunk in _chunks(keys, sizes):
        reservoir.extend(chunk)
    sample = reservoir.sample()
    assert sample.size == min(capacity, keys.size)
    assert reservoir.seen == keys.size
    if keys.size:
        assert set(sample.tolist()) <= set(keys.tolist())


@given(key_arrays, chunk_plans)
@settings(max_examples=40, deadline=None)
def test_stream_file_round_trip(tmp_path_factory, keys, sizes):
    path = tmp_path_factory.mktemp("streams") / "s.rprs"
    write_stream(path, _chunks(keys, sizes), 100)
    assert stream_length(path) == keys.size
    back = (
        np.concatenate(list(read_stream(path, chunk_size=7)))
        if keys.size
        else np.empty(0, dtype=np.int64)
    )
    assert np.array_equal(back, keys)


@given(key_arrays, seeds)
@settings(max_examples=25, deadline=None)
def test_serialization_round_trip_property(tmp_path_factory, keys, seed):
    path = tmp_path_factory.mktemp("sketches") / "sk.npz"
    sketch = FagmsSketch(buckets=16, rows=2, seed=seed)
    sketch.update(keys)
    save_sketch(sketch, path)
    loaded = load_sketch(path)
    assert np.array_equal(loaded._state(), sketch._state())
    # Post-load updates agree (families reconstructed).
    more = np.arange(10)
    sketch.update(more)
    loaded.update(more)
    assert np.array_equal(loaded._state(), sketch._state())
