"""Property-based tests of the frequency-domain toolkit."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency import FrequencyVector

counts_arrays = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=30
).map(lambda values: np.array(values, dtype=np.int64))


@given(counts_arrays)
def test_round_trip_through_items(counts):
    fv = FrequencyVector(counts)
    assert FrequencyVector.from_items(fv.to_items(), fv.domain_size) == fv


@given(counts_arrays)
def test_power_sum_monotone_in_order_for_counts_ge_one(counts):
    fv = FrequencyVector(counts)
    # For counts >= 1 per present value: f^k <= f^(k+1), so sums are ordered.
    assert fv.f1 <= fv.f2 <= fv.f3 <= fv.f4


@given(counts_arrays)
def test_cauchy_schwarz_on_join(counts):
    rng = np.random.default_rng(int(counts.sum()) + counts.size)
    other = FrequencyVector(rng.integers(0, 50, size=counts.size))
    fv = FrequencyVector(counts)
    # (Σ f g)² <= Σf² Σg²
    assert fv.join_size(other) ** 2 <= fv.f2 * other.f2


@given(counts_arrays)
def test_self_join_bounds(counts):
    fv = FrequencyVector(counts)
    total = fv.total
    support = fv.support_size
    # F₁²/F₀ <= F₂ <= F₁² (Cauchy-Schwarz / trivial bound)
    if support:
        assert fv.f2 * support >= total * total
    assert fv.f2 <= total * total or total <= 1


@given(counts_arrays, counts_arrays)
def test_addition_is_linear_in_totals(a, b):
    size = min(a.size, b.size)
    fa = FrequencyVector(a[:size])
    fb = FrequencyVector(b[:size])
    combined = fa + fb
    assert combined.total == fa.total + fb.total
    assert combined.domain_size == size


@given(counts_arrays, st.integers(min_value=0, max_value=9))
def test_scaling_scales_moments(counts, factor):
    fv = FrequencyVector(counts)
    scaled = fv.scaled(factor)
    assert scaled.f1 == factor * fv.f1
    assert scaled.f2 == factor**2 * fv.f2
    assert scaled.f4 == factor**4 * fv.f4


@given(counts_arrays, st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
@settings(max_examples=50)
def test_cross_power_sum_symmetry(counts, a, b):
    rng = np.random.default_rng(counts.size)
    other = FrequencyVector(rng.integers(0, 50, size=counts.size))
    fv = FrequencyVector(counts)
    assert fv.cross_power_sum(other, a, b) == other.cross_power_sum(fv, b, a)


@given(counts_arrays)
def test_join_with_self_is_f2(counts):
    fv = FrequencyVector(counts)
    assert fv.join_size(fv) == fv.f2
