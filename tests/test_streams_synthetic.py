"""Zipf generators: distribution shape, determinism, scale invariants."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams import (
    ZipfDistribution,
    uniform_relation,
    zipf_frequency_vector,
    zipf_relation,
)
from repro.streams.synthetic import make_join_pair


class TestZipfDistribution:
    def test_probabilities_sum_to_one(self):
        dist = ZipfDistribution(100, 1.2, shuffle_values=False)
        assert dist.probabilities().sum() == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        dist = ZipfDistribution(50, 0.0, shuffle_values=False)
        assert np.allclose(dist.probabilities(), 1 / 50)

    def test_probabilities_follow_power_law(self):
        dist = ZipfDistribution(100, 2.0, shuffle_values=False)
        probabilities = dist.probabilities()
        # p(r) / p(2r) = (2r/r)^z = 4 for z = 2
        assert probabilities[0] / probabilities[1] == pytest.approx(4.0)
        assert probabilities[1] / probabilities[3] == pytest.approx(4.0)

    def test_shuffle_permutes_probabilities(self):
        plain = ZipfDistribution(64, 1.5, shuffle_values=False).probabilities()
        shuffled = ZipfDistribution(64, 1.5, shuffle_values=True, seed=5).probabilities()
        assert sorted(plain) == pytest.approx(sorted(shuffled))
        assert not np.allclose(plain, shuffled)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(0, 1.0)
        with pytest.raises(ConfigurationError):
            ZipfDistribution(10, -0.5)

    def test_sample_length_and_domain(self):
        dist = ZipfDistribution(30, 1.0, shuffle_values=False)
        keys = dist.sample(5000, seed=2)
        assert keys.size == 5000
        assert keys.min() >= 0 and keys.max() < 30

    def test_sample_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(10, 1.0).sample(-1)

    def test_frequency_vector_total(self):
        dist = ZipfDistribution(30, 1.0, shuffle_values=False)
        fv = dist.frequency_vector(777, seed=3)
        assert fv.total == 777

    def test_expected_frequency_vector_exact_total_and_monotone(self):
        dist = ZipfDistribution(40, 1.3, shuffle_values=False)
        fv = dist.expected_frequency_vector(12_345)
        assert fv.total == 12_345
        counts = np.asarray(list(fv))
        assert np.all(np.diff(counts) <= 0)  # decreasing by rank

    @pytest.mark.statistical
    def test_empirical_frequencies_match_probabilities(self):
        dist = ZipfDistribution(10, 1.0, shuffle_values=False)
        fv = dist.frequency_vector(200_000, seed=4)
        empirical = np.asarray(list(fv)) / 200_000
        assert np.allclose(empirical, dist.probabilities(), atol=0.01)


class TestRelationGenerators:
    def test_zipf_relation_shape(self):
        relation = zipf_relation(1000, 100, 1.0, seed=1)
        assert len(relation) == 1000
        assert relation.domain_size == 100

    def test_zipf_relation_deterministic(self):
        a = zipf_relation(500, 50, 0.8, seed=6).keys
        b = zipf_relation(500, 50, 0.8, seed=6).keys
        assert np.array_equal(a, b)

    def test_zipf_frequency_vector_variants(self):
        expected = zipf_frequency_vector(1000, 100, 1.0, expected=True)
        assert expected.total == 1000
        aligned = zipf_frequency_vector(1000, 100, 1.0, seed=2, shuffle_values=False)
        assert aligned.total == 1000
        shuffled = zipf_frequency_vector(1000, 100, 1.0, seed=2, shuffle_values=True)
        assert shuffled.total == 1000

    def test_aligned_vectors_correlate_more_than_shuffled(self):
        f1 = zipf_frequency_vector(50_000, 500, 2.0, seed=1, shuffle_values=False)
        f2 = zipf_frequency_vector(50_000, 500, 2.0, seed=2, shuffle_values=False)
        s1 = zipf_frequency_vector(50_000, 500, 2.0, seed=3, shuffle_values=True)
        s2 = zipf_frequency_vector(50_000, 500, 2.0, seed=4, shuffle_values=True)
        assert f1.join_size(f2) > 10 * s1.join_size(s2)

    def test_uniform_relation(self):
        relation = uniform_relation(5000, 25, seed=9)
        counts = relation.frequency_vector().counts
        assert counts.sum() == 5000
        # Uniform: each value near 200.
        assert counts.min() > 100 and counts.max() < 320

    def test_make_join_pair_independent(self):
        f, g = make_join_pair(1000, 100, 1.0, seed=4)
        assert len(f) == len(g) == 1000
        assert f.domain_size == g.domain_size == 100
        assert not np.array_equal(f.keys, g.keys)
