"""(ε, δ) sizing rules."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.variance.tail import (
    SketchSizing,
    mean_rows_needed,
    median_of_means_sizing,
)


class TestMeanSizing:
    def test_formula(self):
        assert mean_rows_needed(0.1, 0.05) == math.ceil(2 / (0.01 * 0.05))

    def test_monotonicity(self):
        assert mean_rows_needed(0.05, 0.1) > mean_rows_needed(0.1, 0.1)
        assert mean_rows_needed(0.1, 0.01) > mean_rows_needed(0.1, 0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_rows_needed(0.0, 0.1)
        with pytest.raises(ConfigurationError):
            mean_rows_needed(0.1, 0.0)
        with pytest.raises(ConfigurationError):
            mean_rows_needed(0.1, 1.0)


class TestMedianOfMeansSizing:
    def test_structure(self):
        sizing = median_of_means_sizing(0.1, 0.01)
        assert isinstance(sizing, SketchSizing)
        assert sizing.rows == sizing.groups * sizing.rows_per_group
        assert sizing.groups % 2 == 1

    def test_delta_dependence_is_logarithmic(self):
        mild = median_of_means_sizing(0.1, 0.1)
        strict = median_of_means_sizing(0.1, 1e-6)
        # 10^5 tighter delta costs well under 10^5 more rows.
        assert strict.rows < 20 * mild.rows

    def test_beats_mean_sizing_for_tiny_delta(self):
        epsilon, delta = 0.1, 1e-6
        assert median_of_means_sizing(epsilon, delta).rows < mean_rows_needed(
            epsilon, delta
        )

    def test_configuration_is_valid_for_agms(self):
        from repro.sketches import AgmsSketch

        sizing = median_of_means_sizing(0.5, 0.1)
        sketch = AgmsSketch(
            sizing.rows, seed=1, combine="median-of-means", groups=sizing.groups
        )
        assert sketch.rows == sizing.rows

    @pytest.mark.statistical
    def test_guarantee_holds_empirically(self):
        """The sized sketch meets its (ε, δ) promise on adversarial-ish data."""
        import numpy as np

        from repro.frequency import FrequencyVector
        from repro.sketches import AgmsSketch

        epsilon, delta = 0.4, 0.2
        sizing = median_of_means_sizing(epsilon, delta)
        fv = FrequencyVector(np.array([7, 7, 7, 7, 7, 7, 7, 7]))  # worst-ish F2/F4
        truth = fv.f2
        failures = 0
        trials = 60
        for seed in range(trials):
            sketch = AgmsSketch(
                sizing.rows,
                seed=seed,
                combine="median-of-means",
                groups=sizing.groups,
            )
            sketch.update_frequency_vector(fv)
            if abs(sketch.second_moment() - truth) > epsilon * truth:
                failures += 1
        assert failures / trials <= delta
