"""Smoke tests: every shipped example runs clean and prints its story.

Each example is executed in-process (import + ``main()``) with stdout
captured; assertions check the narrative landmarks, not exact numbers.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def _run(module_name, capsys):
    module = importlib.import_module(module_name)
    module.main()
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys):
    out = _run("quickstart", capsys)
    assert "Self-join size of F" in out
    assert "covers truth: True" in out


@pytest.mark.slow
def test_load_shedding_monitor(capsys):
    out = _run("load_shedding_network_monitor", capsys)
    assert "true F2" in out
    assert "adaptive governor" in out
    assert "BURST" in out  # the governor must actually hit the burst phase
    assert "interval covers truth: True" in out
    assert "DDoS check" in out
    assert "ALERT" in out  # the injected attack must be detected


@pytest.mark.slow
def test_online_aggregation(capsys):
    out = _run("online_aggregation_tpch", capsys)
    assert "TPC-H dbgen-lite" in out
    assert "100%" in out


@pytest.mark.slow
def test_iid_generative_model(capsys):
    out = _run("iid_generative_model", capsys)
    assert "hidden population" in out
    assert "100.0%" in out


@pytest.mark.slow
def test_shedding_planner(capsys):
    out = _run("shedding_planner", capsys)
    assert "keep p =" in out
    assert "validation on fresh streams" in out


@pytest.mark.slow
def test_distributed_sketching(capsys):
    out = _run("distributed_sketching", capsys)
    assert "coordinator estimate" in out
    assert "relative error" in out
    assert "bit-identical to sequential: True" in out


@pytest.mark.slow
def test_traffic_drift_monitor(capsys):
    out = _run("traffic_drift_monitor", capsys)
    assert "DRIFT" in out


@pytest.mark.slow
def test_serving_demo(capsys):
    out = _run("serving_demo", capsys)
    assert "estimates while the scan is in flight" in out
    assert "95% CI" in out
    assert "scanned 100%" in out
    assert "shed with 429" in out
    assert "analyst: still served" in out
