"""F-AGMS (Count-Sketch): structure, linearity, estimation quality."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.frequency import FrequencyVector
from repro.sketches import AgmsSketch, FagmsSketch, join_size, self_join_size


def test_counters_shape_and_single_touch_per_row():
    sketch = FagmsSketch(buckets=16, rows=3, seed=1)
    sketch.update(np.array([5]))
    # Exactly one counter per row is touched, with value ±1.
    touched = np.abs(sketch.counters).sum(axis=1)
    assert np.allclose(touched, 1.0)


def test_counter_placement_matches_hashes():
    sketch = FagmsSketch(buckets=8, rows=2, seed=3)
    keys = np.array([2, 2, 7])
    sketch.update(keys)
    for row in range(2):
        buckets = sketch._bucket_hash.evaluate_row(row, np.array([2, 7]))
        signs = sketch._signs.evaluate_row(row, np.array([2, 7]))
        expected = np.zeros(8)
        expected[buckets[0]] += 2 * signs[0]
        expected[buckets[1]] += signs[1]
        assert np.allclose(sketch.counters[row], expected)


def test_update_frequency_vector_equals_item_updates():
    fv = FrequencyVector([2, 0, 3, 1, 4])
    a = FagmsSketch(buckets=32, rows=2, seed=11)
    b = a.copy_empty()
    a.update(fv.to_items())
    b.update_frequency_vector(fv)
    assert np.allclose(a.counters, b.counters)


def test_merge_is_linear():
    fv1 = FrequencyVector([1, 2, 0, 1])
    fv2 = FrequencyVector([0, 1, 3, 2])
    a = FagmsSketch(buckets=16, rows=2, seed=4)
    b = a.copy_empty()
    combined = a.copy_empty()
    a.update_frequency_vector(fv1)
    b.update_frequency_vector(fv2)
    combined.update_frequency_vector(fv1 + fv2)
    a.merge(b)
    assert np.allclose(a.counters, combined.counters)


def test_incompatible_merges_and_products():
    a = FagmsSketch(buckets=16, rows=2, seed=4)
    b = FagmsSketch(buckets=16, rows=2, seed=5)
    with pytest.raises(IncompatibleSketchError):
        a.merge(b)
    with pytest.raises(IncompatibleSketchError):
        a.row_inner_products(b)
    agms = AgmsSketch(rows=2, seed=4)
    with pytest.raises(IncompatibleSketchError):
        a.merge(agms)
    with pytest.raises(TypeError):
        a.inner_product(agms)


def test_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        FagmsSketch(buckets=0)
    with pytest.raises(ConfigurationError):
        FagmsSketch(buckets=8, rows=0)
    with pytest.raises(ConfigurationError):
        FagmsSketch(buckets=8, sign_family="nope")


@pytest.mark.statistical
def test_second_moment_unbiased(small_f):
    """Each F-AGMS row's Σ_b counter² is unbiased for F₂."""
    trials = 2000
    estimates = np.empty(trials)
    for t in range(trials):
        sketch = FagmsSketch(buckets=4, rows=1, seed=9000 + t)
        sketch.update_frequency_vector(small_f)
        estimates[t] = sketch.second_moment()
    truth = small_f.f2
    spread = estimates.std() / np.sqrt(trials)
    assert abs(estimates.mean() - truth) < 5 * max(spread, 1e-9)


@pytest.mark.statistical
def test_inner_product_unbiased(small_f, small_g):
    trials = 2000
    estimates = np.empty(trials)
    for t in range(trials):
        sketch_f = FagmsSketch(buckets=4, rows=1, seed=12_000 + t)
        sketch_g = sketch_f.copy_empty()
        sketch_f.update_frequency_vector(small_f)
        sketch_g.update_frequency_vector(small_g)
        estimates[t] = join_size(sketch_f, sketch_g)
    truth = small_f.join_size(small_g)
    spread = estimates.std() / np.sqrt(trials)
    assert abs(estimates.mean() - truth) < 5 * max(spread, 1e-9)


def test_accuracy_improves_with_buckets(zipf_f):
    truth = zipf_f.f2
    errors = {}
    for buckets in (8, 512):
        estimates = []
        for seed in range(30):
            sketch = FagmsSketch(buckets=buckets, rows=1, seed=seed)
            sketch.update_frequency_vector(zipf_f)
            estimates.append(self_join_size(sketch))
        errors[buckets] = np.mean([abs(e - truth) / truth for e in estimates])
    assert errors[512] < errors[8]


def test_large_bucket_count_is_nearly_exact_for_sparse_data():
    """With far more buckets than distinct keys, F₂ is near-exact."""
    fv = FrequencyVector.from_items(np.arange(20), 20)
    sketch = FagmsSketch(buckets=4096, rows=1, seed=7)
    sketch.update_frequency_vector(fv)
    # 20 distinct keys in 4096 buckets: collisions unlikely, estimate ≈ 20.
    assert sketch.second_moment() == pytest.approx(20, abs=4)


def test_median_combining_over_rows(zipf_f):
    sketch = FagmsSketch(buckets=64, rows=5, seed=21)
    sketch.update_frequency_vector(zipf_f)
    rows = sketch.row_second_moments()
    assert sketch.second_moment() == pytest.approx(float(np.median(rows)))
