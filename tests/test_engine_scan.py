"""Lockstep scan driver."""

import pytest

from repro.engine import OnlineStatisticsEngine, run_lockstep_scan
from repro.errors import ConfigurationError
from repro.streams import generate_tpch


@pytest.fixture
def tpch():
    return generate_tpch(scale_factor=0.003, seed=61)


def test_yields_one_snapshot_per_checkpoint(tpch):
    engine = OnlineStatisticsEngine(buckets=1024, seed=62)
    snapshots = list(
        run_lockstep_scan(
            engine,
            {"lineitem": tpch.lineitem, "orders": tpch.orders},
            checkpoints=(0.1, 0.5, 1.0),
        )
    )
    assert len(snapshots) == 3
    final = snapshots[-1]
    assert final.fractions["lineitem"] == pytest.approx(1.0)
    assert final.fractions["orders"] == pytest.approx(1.0)


def test_statistics_converge_along_scan(tpch):
    engine = OnlineStatisticsEngine(buckets=2048, seed=63)
    truth = tpch.exact_join_size()
    errors = []
    for snapshot in run_lockstep_scan(
        engine,
        {"lineitem": tpch.lineitem, "orders": tpch.orders},
        checkpoints=(0.1, 1.0),
    ):
        estimate = snapshot.join_sizes[("lineitem", "orders")]
        errors.append(abs(estimate - truth) / truth)
    assert errors[-1] < 0.2


def test_auto_registration(tpch):
    engine = OnlineStatisticsEngine(buckets=256, seed=64)
    next(iter(run_lockstep_scan(engine, {"orders": tpch.orders}, checkpoints=(0.5,))))
    assert engine.relations == ("orders",)
    assert engine.fraction_scanned("orders") == pytest.approx(0.5)


def test_rejects_empty_mapping():
    engine = OnlineStatisticsEngine(buckets=64, seed=65)
    with pytest.raises(ConfigurationError):
        next(iter(run_lockstep_scan(engine, {})))


def test_rejects_partially_scanned_engine(tpch):
    engine = OnlineStatisticsEngine(buckets=256, seed=66)
    engine.register("orders", len(tpch.orders))
    engine.consume("orders", tpch.orders.keys[:10])
    with pytest.raises(ConfigurationError):
        next(iter(run_lockstep_scan(engine, {"orders": tpch.orders})))
