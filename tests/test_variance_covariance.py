"""Eq. 22: the covariance between basic estimators over a shared sample."""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sampling.moments import BernoulliMoments, WithoutReplacementMoments
from repro.variance.covariance import (
    averaged_variance,
    averaging_floor_ratio,
    basic_join_covariance,
    basic_self_join_covariance,
)
from repro.variance.generic import (
    combined_join_variance,
    combined_self_join_variance,
)

P = Fraction(1, 3)


def test_eq22_reconstructs_prop11_exactly(small_f, small_g):
    """Var_basic and Cov plugged into Eq. 22 give Prop 11 for every n."""
    model = BernoulliMoments(P)
    scale = 1 / (P * P)
    basic = combined_join_variance(
        model, small_f, model, small_g, scale, 1, exact=True
    )
    covariance = basic_join_covariance(
        model, small_f, model, small_g, scale, exact=True
    )
    for n in (1, 2, 7, 100):
        direct = combined_join_variance(
            model, small_f, model, small_g, scale, n, exact=True
        )
        assert averaged_variance(basic, covariance, n) == direct


def test_eq22_reconstructs_prop12_with_correction(small_f):
    model = BernoulliMoments(P)
    scale = 1 / P**2
    c = (1 - P) / P**2
    basic = combined_self_join_variance(
        model, small_f, scale, 1, correction=c, exact=True
    )
    covariance = basic_self_join_covariance(
        model, small_f, scale, correction=c, exact=True
    )
    for n in (1, 3, 50):
        direct = combined_self_join_variance(
            model, small_f, scale, n, correction=c, exact=True
        )
        assert averaged_variance(basic, covariance, n) == direct


def test_covariance_is_nonnegative_and_below_basic_variance(small_f, small_g):
    model = BernoulliMoments(P)
    scale = 1 / (P * P)
    basic = combined_join_variance(
        model, small_f, model, small_g, scale, 1, exact=True
    )
    covariance = basic_join_covariance(
        model, small_f, model, small_g, scale, exact=True
    )
    assert 0 <= covariance <= basic


def test_averaged_variance_rejects_bad_n():
    with pytest.raises(ConfigurationError):
        averaged_variance(1.0, 0.5, 0)


def test_floor_ratio_decreases_toward_one(small_f):
    model = BernoulliMoments(P)
    scale = 1 / P**2
    c = (1 - P) / P**2
    ratios = [
        averaging_floor_ratio(model, small_f, scale, n, correction=c)
        for n in (1, 10, 1000)
    ]
    assert ratios[0] > ratios[1] > ratios[2] >= 1.0
    assert ratios[2] == pytest.approx(1.0, rel=0.05)


def test_floor_ratio_infinite_for_full_wor_scan(small_f):
    """A full WOR scan has zero sampling variance: no covariance floor."""
    total = small_f.total
    model = WithoutReplacementMoments(total, total)
    ratio = averaging_floor_ratio(model, small_f, 1, 10)
    assert ratio == float("inf")


def test_floor_ratio_argument_validation(small_f, small_g):
    model = BernoulliMoments(P)
    with pytest.raises(ConfigurationError):
        averaging_floor_ratio(model, small_f, 1, 5, g=small_g)  # missing model_g


@pytest.mark.statistical
def test_covariance_matches_monte_carlo(small_f):
    """Empirical Cov between two ξ families over one shared Bernoulli sample."""
    rng = np.random.default_rng(17)
    p = 1 / 3
    scale = 1 / p**2
    trials = 40_000
    samples = rng.binomial(small_f.counts, p, size=(trials, small_f.domain_size))
    # Conditional on the sample, E_ξ[S²] = Σf'²; two independent ξ families
    # have conditional covariance 0, so Cov[X_k, X_l] = Var_s[scale·Σf'²-cL].
    c = (1 - p) / p**2
    sum2 = (samples.astype(np.float64) ** 2).sum(axis=1)
    length = samples.sum(axis=1)
    conditional_mean = scale * sum2 - c * length
    empirical = conditional_mean.var()
    model = BernoulliMoments(Fraction(1, 3))
    theoretical = float(
        basic_self_join_covariance(
            model, small_f, Fraction(9), correction=Fraction(6), exact=True
        )
    )
    assert empirical == pytest.approx(theoretical, rel=0.05)
