"""Shared fixtures for the test-suite.

Conventions:

* all statistical tests use fixed seeds and generous tolerances, so the
  suite is fully deterministic;
* ``small_f`` / ``small_g`` are tiny exact frequency vectors used by the
  exact (rational-arithmetic) identity tests;
* ``zipf_f`` / ``zipf_g`` are mid-sized realistic vectors for estimator
  behaviour tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frequency import FrequencyVector
from repro.streams.synthetic import zipf_frequency_vector


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic per-test random generator."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_f() -> FrequencyVector:
    """A tiny frequency vector with repeated, zero and distinct counts."""
    return FrequencyVector(np.array([3, 0, 1, 4, 0, 2, 2, 5]))


@pytest.fixture
def small_g() -> FrequencyVector:
    """A second tiny vector over the same domain as ``small_f``."""
    return FrequencyVector(np.array([1, 2, 0, 3, 1, 0, 4, 2]))


@pytest.fixture
def zipf_f() -> FrequencyVector:
    """A mid-size Zipf(1.0) frequency vector (identity value mapping)."""
    return zipf_frequency_vector(
        20_000, 1_000, 1.0, seed=11, shuffle_values=False
    )


@pytest.fixture
def zipf_g() -> FrequencyVector:
    """An independently drawn Zipf(1.0) vector over the same domain."""
    return zipf_frequency_vector(
        20_000, 1_000, 1.0, seed=12, shuffle_values=False
    )
