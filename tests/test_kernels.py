"""Equivalence and seam tests for :mod:`repro.kernels`.

The kernel layer's contract is *bit-identity*: whatever backend is
active, the same seeds and the same stream must produce exactly the same
counters as the pre-kernel per-row path (``evaluate_row`` loops plus
``np.add.at``), which the ``"reference"`` backend preserves verbatim.
Everything here asserts with ``np.array_equal`` — not ``allclose`` —
except the one case where exactness is genuinely not promised
(the fused bincount path under arbitrary non-integer float weights,
where only the summation order differs).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.families import BucketHashFamily, PolynomialHashFamily
from repro.hashing.signs import EH3SignFamily, FourWiseSignFamily
from repro.hashing.tabulation import TabulationHashFamily, TabulationSignFamily
from repro.kernels import (
    BACKEND_ENV_VAR,
    available_backends,
    backend_name,
    get_backend,
    native_available,
    set_backend,
    use_backend,
)
from repro.kernels import backend as backend_module
from repro.sketches.agms import AgmsSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.fagms import FagmsSketch

FAST_BACKENDS = ["numpy"] + (["native"] if native_available() else [])
ALL_BACKENDS = ["reference"] + FAST_BACKENDS


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the active backend as it found it."""
    previous = backend_name()
    yield
    set_backend(previous)


def _keys(n, seed=0, hi=2**31 - 2):
    return np.random.default_rng(seed).integers(0, hi, size=n, dtype=np.int64)


# ----------------------------------------------------------------------
# Hashing: evaluate_all vs evaluate_row, per backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 8])
def test_polynomial_evaluate_all_matches_rows(backend, k):
    family = PolynomialHashFamily(k, rows=4, seed=123)
    keys = _keys(257, seed=k)
    with use_backend(backend):
        batched = family.evaluate_all(keys)
    stacked = np.stack([family.evaluate_row(r, keys) for r in range(4)])
    assert batched.dtype == np.uint64
    assert np.array_equal(batched, stacked)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("buckets", [1, 2, 1024, 1021, 65536, 99991])
def test_bucket_evaluate_all_matches_rows(backend, buckets):
    family = BucketHashFamily(buckets, rows=3, seed=7)
    keys = _keys(301, seed=buckets)
    with use_backend(backend):
        batched = family.evaluate_all(keys)
    stacked = np.stack([family.evaluate_row(r, keys) for r in range(3)])
    assert batched.dtype == np.int64
    assert np.array_equal(batched, stacked)
    assert int(batched.min()) >= 0 and int(batched.max()) < buckets


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize(
    "family_cls", [FourWiseSignFamily, EH3SignFamily, TabulationSignFamily]
)
def test_sign_evaluate_all_matches_rows(backend, family_cls):
    family = family_cls(rows=5, seed=42)
    keys = _keys(199, seed=3)
    with use_backend(backend):
        batched = family.evaluate_all(keys)
    stacked = np.stack([family.evaluate_row(r, keys) for r in range(5)])
    assert batched.dtype == np.int8
    assert np.array_equal(batched, stacked)
    assert set(np.unique(batched)) <= {-1, 1}


def test_tabulation_hash_evaluate_all_matches_rows():
    family = TabulationHashFamily(rows=3, seed=9)
    keys = _keys(128, seed=4)
    batched = family.evaluate_all(keys)
    stacked = np.stack([family.evaluate_row(r, keys) for r in range(3)])
    assert np.array_equal(batched, stacked)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_hashing_handles_empty_keys(backend):
    empty = np.empty(0, dtype=np.int64)
    with use_backend(backend):
        assert PolynomialHashFamily(4, 2, seed=1).evaluate_all(empty).shape == (2, 0)
        assert BucketHashFamily(64, 2, seed=1).evaluate_all(empty).shape == (2, 0)
        assert FourWiseSignFamily(2, seed=1).evaluate_all(empty).shape == (2, 0)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_hashing_extreme_keys(backend):
    """Boundary keys (0 and p−2) reduce identically on every backend."""
    family = PolynomialHashFamily(4, rows=2, seed=5)
    keys = np.array([0, 1, 2**31 - 2, 2**30, 12345], dtype=np.int64)
    with use_backend(backend):
        batched = family.evaluate_all(keys)
    stacked = np.stack([family.evaluate_row(r, keys) for r in range(2)])
    assert np.array_equal(batched, stacked)


# ----------------------------------------------------------------------
# Sketch counters: fast backends vs the reference backend
# ----------------------------------------------------------------------


def _fill(sketch_factory, weighted, chunks=3, n=2000, seed=17):
    """Build one sketch per backend from an identical stream; return states."""
    states = {}
    for name in ALL_BACKENDS:
        with use_backend(name):
            sketch = sketch_factory()
            rng = np.random.default_rng(seed)
            for _ in range(chunks):
                keys = rng.integers(0, 2**31 - 2, size=n, dtype=np.int64)
                if weighted:
                    # Integer-valued float weights: partial-sum reassociation
                    # is exact, so equality must be bit-for-bit.
                    weights = rng.integers(-3, 8, size=n).astype(np.float64)
                else:
                    weights = None
                sketch.update(keys, weights)
            states[name] = sketch._state().copy()
    return states


@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
@pytest.mark.parametrize("sign_family", ["fourwise", "eh3"])
@pytest.mark.parametrize("rows", [1, 3])
@pytest.mark.parametrize("buckets", [1024, 1021])
def test_fagms_counters_bit_identical(weighted, sign_family, rows, buckets):
    states = _fill(
        lambda: FagmsSketch(buckets, rows, seed=7, sign_family=sign_family),
        weighted,
    )
    for name in FAST_BACKENDS:
        assert np.array_equal(states[name], states["reference"]), name


@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
def test_countmin_counters_bit_identical(weighted):
    states = _fill(lambda: CountMinSketch(512, rows=4, seed=11), weighted)
    for name in FAST_BACKENDS:
        assert np.array_equal(states[name], states["reference"]), name


@pytest.mark.parametrize("sign_family", ["fourwise", "eh3"])
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
def test_agms_counters_bit_identical(sign_family, weighted):
    states = _fill(
        lambda: AgmsSketch(16, seed=13, sign_family=sign_family), weighted
    )
    for name in FAST_BACKENDS:
        assert np.array_equal(states[name], states["reference"]), name


def test_arbitrary_float_weights_close():
    """Non-integer weights: bincount reassociates partial sums, so the
    numpy backend promises only closeness; the native backend accumulates
    element by element in stream order and stays bit-identical."""
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 2**31 - 2, size=4096, dtype=np.int64)
    weights = rng.normal(size=4096)
    states = {}
    for name in ALL_BACKENDS:
        with use_backend(name):
            sketch = FagmsSketch(256, 3, seed=7)
            sketch.update(keys, weights)
            states[name] = sketch._state().copy()
    np.testing.assert_allclose(states["numpy"], states["reference"], rtol=1e-12)
    if "native" in states:
        assert np.array_equal(states["native"], states["reference"])


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_empty_batch_is_a_noop(backend):
    with use_backend(backend):
        for sketch in (
            FagmsSketch(64, 2, seed=1),
            CountMinSketch(64, 2, seed=1),
            AgmsSketch(4, seed=1),
        ):
            before = sketch._state().copy()
            sketch.update(np.empty(0, dtype=np.int64))
            assert np.array_equal(sketch._state(), before)


def test_estimates_match_across_backends():
    """Query paths (gather/median, point estimate) agree bit-for-bit."""
    keys = _keys(5000, seed=21, hi=1000)
    queries = np.arange(50, dtype=np.int64)
    freq, point = {}, {}
    for name in ALL_BACKENDS:
        with use_backend(name):
            f = FagmsSketch(256, 5, seed=2)
            f.update(keys)
            freq[name] = f.estimate_frequencies(queries)
            c = CountMinSketch(256, 4, seed=2)
            c.update(keys)
            point[name] = [c.point_estimate(int(q)) for q in queries]
    for name in FAST_BACKENDS:
        assert np.array_equal(freq[name], freq["reference"])
        assert point[name] == point["reference"]


# ----------------------------------------------------------------------
# Legacy pin: an inline reimplementation of the pre-kernel update path,
# independent of the kernels package entirely.
# ----------------------------------------------------------------------


def _legacy_fagms_update(sketch, keys, weights=None):
    """The pre-kernel F-AGMS update: per-row evaluate_row + np.add.at."""
    keys = np.asarray(keys)
    deltas = None if weights is None else np.asarray(weights, dtype=np.float64)
    for row in range(sketch.rows):
        buckets = sketch._bucket_hash.evaluate_row(row, keys)
        signs = sketch._signs.evaluate_row(row, keys).astype(np.float64)
        np.add.at(
            sketch._counters[row],
            buckets,
            signs if deltas is None else signs * deltas,
        )


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_fagms_matches_inline_legacy_reimplementation(backend):
    keys = _keys(3000, seed=8)
    weights = np.random.default_rng(8).integers(1, 5, size=3000).astype(np.float64)
    with use_backend(backend):
        kernel_sketch = FagmsSketch(512, 3, seed=7)
        kernel_sketch.update(keys)
        kernel_sketch.update(keys, weights)
    legacy_sketch = FagmsSketch(512, 3, seed=7)
    _legacy_fagms_update(legacy_sketch, keys)
    _legacy_fagms_update(legacy_sketch, keys, weights)
    assert np.array_equal(kernel_sketch._counters, legacy_sketch._counters)


# ----------------------------------------------------------------------
# The dispatch seam
# ----------------------------------------------------------------------


def test_available_backends_lists_all():
    names = available_backends()
    assert "numpy" in names and "reference" in names and "native" in names


def test_unknown_backend_raises():
    with pytest.raises(ConfigurationError, match="unknown kernel backend"):
        set_backend("no-such-backend")


def test_use_backend_restores_previous():
    set_backend("numpy")
    with use_backend("reference") as backend:
        assert backend.name == "reference"
        assert backend_name() == "reference"
    assert backend_name() == "numpy"


def test_use_backend_restores_after_exception():
    set_backend("numpy")
    with pytest.raises(RuntimeError):
        with use_backend("reference"):
            raise RuntimeError("boom")
    assert backend_name() == "numpy"


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setattr(backend_module, "_active", None)
    monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
    assert get_backend().name == "reference"


def test_env_var_defaults_to_numpy(monkeypatch):
    monkeypatch.setattr(backend_module, "_active", None)
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert get_backend().name == "numpy"


def test_native_activation_reports_build_failure(monkeypatch):
    """When the build failed, activating the native backend explains why."""
    from repro.kernels import native as native_module

    monkeypatch.setattr(native_module, "_lib", None)
    monkeypatch.setattr(native_module, "_build_error", "cc: not found")
    with pytest.raises(ConfigurationError, match="native kernel backend unavailable"):
        native_module._library()
    assert native_module.native_available() is False
    assert native_module.native_build_error() == "cc: not found"


# ----------------------------------------------------------------------
# Backend primitives directly (scatter/gather/sign reductions)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
def test_scatter_add_matches_reference(backend, weighted):
    rng = np.random.default_rng(31)
    rows, buckets, n = 3, 37, 500
    indices = rng.integers(0, buckets, size=(rows, n), dtype=np.int64)
    weights = rng.integers(-2, 9, size=n).astype(np.float64) if weighted else None
    expected = np.zeros((rows, buckets))
    get_backend()  # ensure resolution before direct registry access
    with use_backend("reference"):
        get_backend().scatter_add(expected, indices, weights)
    actual = np.zeros((rows, buckets))
    with use_backend(backend):
        get_backend().scatter_add(actual, indices, weights)
    assert np.array_equal(actual, expected)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("weighted", [False, True], ids=["unweighted", "weighted"])
def test_signed_scatter_add_matches_reference(backend, weighted):
    rng = np.random.default_rng(32)
    rows, buckets, n = 2, 53, 700
    indices = rng.integers(0, buckets, size=(rows, n), dtype=np.int64)
    signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(rows, n))
    weights = rng.integers(1, 6, size=n).astype(np.float64) if weighted else None
    expected = np.zeros((rows, buckets))
    with use_backend("reference"):
        get_backend().signed_scatter_add(expected, indices, signs, weights)
    actual = np.zeros((rows, buckets))
    with use_backend(backend):
        get_backend().signed_scatter_add(actual, indices, signs, weights)
    assert np.array_equal(actual, expected)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_gather_and_sign_reductions(backend):
    rng = np.random.default_rng(33)
    counters = rng.normal(size=(4, 29))
    indices = rng.integers(0, 29, size=(4, 100), dtype=np.int64)
    signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(4, 100))
    weights = rng.normal(size=100)
    with use_backend(backend):
        backend_obj = get_backend()
        gathered = backend_obj.gather(counters, indices)
        assert gathered.shape == (4, 100)
        expected = np.stack([counters[r, indices[r]] for r in range(4)])
        assert np.array_equal(gathered, expected)
        assert np.array_equal(
            backend_obj.sign_sum(signs), signs.sum(axis=1, dtype=np.float64)
        )
        out = np.empty(4)
        result = backend_obj.sign_dot(signs, weights, out=out)
        assert result is out
        np.testing.assert_allclose(out, signs.astype(np.float64) @ weights)
