"""Unbiasing corrections: scales, additive terms, and exact unbiasedness."""

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError, InsufficientDataError
from repro.sampling import SampleInfo
from repro.sampling.moments import (
    BernoulliMoments,
    WithReplacementMoments,
    WithoutReplacementMoments,
)
from repro.sampling.unbiasing import join_scale, self_join_correction
from repro.variance.generic import combined_self_join_expectation


def test_join_scale_bernoulli():
    info_f = SampleInfo("bernoulli", 100, 10, probability=0.25)
    info_g = SampleInfo("bernoulli", 100, 50, probability=0.5)
    assert join_scale(info_f, info_g) == Fraction(8)


def test_join_scale_fixed_size():
    info_f = SampleInfo("with_replacement", 100, 10)
    info_g = SampleInfo("without_replacement", 200, 40)
    assert join_scale(info_f, info_g) == Fraction(10) * Fraction(5)


def test_join_scale_mixed_schemes_compose():
    info_f = SampleInfo("bernoulli", 100, 20, probability=0.2)
    info_g = SampleInfo("without_replacement", 100, 25)
    assert join_scale(info_f, info_g) == Fraction(5) * Fraction(4)


def test_join_scale_rejects_empty_fixed_sample():
    info = SampleInfo("with_replacement", 100, 0)
    with pytest.raises(InsufficientDataError):
        join_scale(info, info)


class TestSelfJoinCorrection:
    def test_bernoulli_form(self):
        info = SampleInfo("bernoulli", 100, 30, probability=0.5)
        correction = self_join_correction(info)
        assert correction.scale == 4
        assert correction.random_coefficient == 2
        assert correction.constant == 0

    def test_wr_form(self):
        info = SampleInfo("with_replacement", 40, 10)
        correction = self_join_correction(info)
        # scale = 1/(α α₂) = 1/((10/40)(9/40)); constant = N/α₂ = 40/(9/40)
        assert correction.scale == Fraction(1600, 90)
        assert correction.random_coefficient == 0
        assert correction.constant == Fraction(1600, 9)

    def test_wor_form(self):
        info = SampleInfo("without_replacement", 40, 10)
        correction = self_join_correction(info)
        alpha = Fraction(10, 40)
        alpha1 = Fraction(9, 39)
        assert correction.scale == 1 / (alpha * alpha1)
        assert correction.constant == (1 - alpha1) / alpha1 * 40

    def test_fixed_size_needs_two_tuples(self):
        with pytest.raises(InsufficientDataError):
            self_join_correction(SampleInfo("with_replacement", 40, 1))
        with pytest.raises(InsufficientDataError):
            self_join_correction(SampleInfo("without_replacement", 40, 1))

    def test_bernoulli_allows_tiny_samples(self):
        # Bernoulli corrections don't divide by |F'| - 1.
        correction = self_join_correction(
            SampleInfo("bernoulli", 40, 0, probability=0.01)
        )
        assert correction.scale == 10_000

    def test_apply(self):
        info = SampleInfo("bernoulli", 100, 30, probability=0.5)
        correction = self_join_correction(info)
        assert correction.apply(raw_estimate=10.0, sample_size=30) == pytest.approx(
            4 * 10 - 2 * 30
        )


class TestExactUnbiasedness:
    """E[corrected estimator] == true aggregate, via the moment models."""

    def test_bernoulli(self, small_f):
        p = Fraction(2, 7)
        info = SampleInfo("bernoulli", small_f.total, 3, probability=float(p))
        correction = self_join_correction(info)
        model = BernoulliMoments(Fraction(correction.scale) ** Fraction(-1, 2))
        # Build the model from p directly to stay exact:
        model = BernoulliMoments(p)
        expected = combined_self_join_expectation(
            model,
            small_f,
            1 / p**2,
            correction=(1 - p) / p**2,
            exact=True,
        )
        assert expected == small_f.f2

    def test_wr(self, small_f):
        info = SampleInfo("with_replacement", small_f.total, 5)
        correction = self_join_correction(info)
        model = WithReplacementMoments(5, small_f.total)
        expected = combined_self_join_expectation(
            model,
            small_f,
            correction.scale,
            constant=correction.constant,
            exact=True,
        )
        assert expected == small_f.f2

    def test_wor(self, small_f):
        info = SampleInfo("without_replacement", small_f.total, 5)
        correction = self_join_correction(info)
        model = WithoutReplacementMoments(5, small_f.total)
        expected = combined_self_join_expectation(
            model,
            small_f,
            correction.scale,
            constant=correction.constant,
            exact=True,
        )
        assert expected == small_f.f2


def test_unknown_scheme_rejected():
    info = SampleInfo("with_replacement", 10, 5)
    object.__setattr__(info, "scheme", "bogus")
    with pytest.raises(ConfigurationError):
        self_join_correction(info)
