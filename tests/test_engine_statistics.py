"""Multi-relation online statistics engine."""

import numpy as np
import pytest

from repro.engine import OnlineStatisticsEngine
from repro.errors import ConfigurationError, InsufficientDataError
from repro.streams import generate_tpch, zipf_relation


@pytest.fixture
def engine():
    return OnlineStatisticsEngine(buckets=2048, seed=50)


@pytest.fixture
def tpch():
    return generate_tpch(scale_factor=0.004, seed=51)


class TestRegistration:
    def test_register_and_list(self, engine):
        engine.register("a", 100)
        engine.register("b", 200)
        assert engine.relations == ("a", "b")

    def test_duplicate_rejected(self, engine):
        engine.register("a", 100)
        with pytest.raises(ConfigurationError):
            engine.register("a", 100)

    def test_validation(self, engine):
        with pytest.raises(ConfigurationError):
            engine.register("", 100)
        with pytest.raises(ConfigurationError):
            engine.register("tiny", 1)

    def test_unknown_relation(self, engine):
        with pytest.raises(ConfigurationError):
            engine.consume("ghost", np.array([1]))
        with pytest.raises(ConfigurationError):
            engine.self_join_size("ghost")


class TestScanProgress:
    def test_fraction_tracking(self, engine):
        engine.register("a", 100)
        engine.consume("a", np.arange(25))
        assert engine.fraction_scanned("a") == pytest.approx(0.25)

    def test_overflow_rejected(self, engine):
        engine.register("a", 10)
        with pytest.raises(ConfigurationError):
            engine.consume("a", np.arange(11))

    def test_insufficient_data_errors(self, engine):
        engine.register("a", 100)
        engine.register("b", 100)
        with pytest.raises(InsufficientDataError):
            engine.self_join_size("a")
        with pytest.raises(InsufficientDataError):
            engine.join_size("a", "b")

    def test_self_join_of_same_name_rejected(self, engine):
        engine.register("a", 100)
        engine.consume("a", np.arange(10))
        with pytest.raises(ConfigurationError):
            engine.join_size("a", "a")


class TestEstimates:
    def test_f2_converges_during_scan(self, tpch):
        engine = OnlineStatisticsEngine(buckets=2048, seed=52)
        lineitem = tpch.lineitem
        engine.register("lineitem", len(lineitem))
        truth = tpch.exact_lineitem_f2()
        errors = []
        for chunk in lineitem.chunks(len(lineitem) // 5 + 1):
            engine.consume("lineitem", chunk)
            estimate = engine.self_join_size("lineitem")
            errors.append(abs(estimate - truth) / truth)
        assert errors[-1] < 0.1
        assert errors[-1] <= errors[0] + 0.05

    def test_join_between_relations_scanned_at_different_speeds(self, tpch):
        engine = OnlineStatisticsEngine(buckets=2048, seed=53)
        engine.register("lineitem", len(tpch.lineitem))
        engine.register("orders", len(tpch.orders))
        # lineitem at 40%, orders at 100%: corrections must handle this.
        cut = int(0.4 * len(tpch.lineitem))
        engine.consume("lineitem", tpch.lineitem.keys[:cut])
        engine.consume("orders", tpch.orders.keys)
        truth = tpch.exact_join_size()
        estimate = engine.join_size("lineitem", "orders")
        assert estimate == pytest.approx(truth, rel=0.3)

    def test_full_scan_matches_plain_sketches(self):
        relation = zipf_relation(5_000, 500, 1.0, seed=54)
        engine = OnlineStatisticsEngine(buckets=1024, seed=55)
        engine.register("r", len(relation))
        engine.consume("r", relation.keys)
        from repro.sketches import FagmsSketch

        plain = FagmsSketch(1024, seed=55)
        # The engine spawns per-relation sketches off one template with a
        # shared family; verify against the engine's own template lineage:
        assert engine.self_join_size("r") == pytest.approx(
            engine._relations["r"].sketch.second_moment()
        )
        _ = plain  # plain comparison is covered by the aggregator tests


class TestSnapshot:
    def test_snapshot_contents(self, tpch):
        engine = OnlineStatisticsEngine(buckets=1024, seed=56)
        engine.register("lineitem", len(tpch.lineitem))
        engine.register("orders", len(tpch.orders))
        engine.consume("lineitem", tpch.lineitem.keys[:1000])
        snapshot = engine.snapshot()
        assert "lineitem" in snapshot.self_join_sizes
        assert "orders" not in snapshot.self_join_sizes  # nothing scanned
        assert snapshot.join_sizes == {}  # orders not scanned yet
        engine.consume("orders", tpch.orders.keys[:1000])
        snapshot = engine.snapshot()
        assert ("lineitem", "orders") in snapshot.join_sizes

    def test_memory_footprint(self, engine):
        engine.register("a", 100)
        engine.register("b", 100)
        assert engine.memory_footprint() == 2 * 2048 * 8

    def test_repr(self, engine):
        assert "no relations" in repr(engine)
        engine.register("a", 100)
        engine.consume("a", np.arange(50))
        assert "a:50%" in repr(engine)
