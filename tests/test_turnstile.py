"""Turnstile semantics: sketches under insertions *and* deletions.

All sketches in the library are linear, so negative weights implement
deletions exactly.  These tests pin the turnstile contract down for the
AGMS-family sketches (where unbiased estimation survives deletions) and
exercise realistic insert/delete workloads.
"""

import numpy as np
import pytest

from repro.frequency import FrequencyVector
from repro.sketches import AgmsSketch, FagmsSketch, join_size, self_join_size
from repro.streams import zipf_relation


@pytest.mark.parametrize(
    "factory",
    [
        lambda seed: AgmsSketch(rows=200, seed=seed),
        lambda seed: FagmsSketch(buckets=512, rows=1, seed=seed),
    ],
    ids=["agms", "fagms"],
)
class TestTurnstile:
    def test_net_frequencies_determine_state(self, factory, rng):
        """Any insert/delete interleaving with the same net effect gives
        the same counters."""
        inserts = rng.integers(0, 50, size=400)
        deletes = inserts[rng.random(400) < 0.4]
        direct = factory(1)
        direct.update(inserts)
        direct.update(deletes, -np.ones(deletes.size))

        net = np.bincount(inserts, minlength=50) - np.bincount(
            deletes, minlength=50
        )
        by_net = factory(1)
        support = np.flatnonzero(net)
        by_net.update(support, net[support].astype(np.float64))
        assert np.allclose(direct._state(), by_net._state())

    def test_estimates_track_net_multiset(self, factory, rng):
        relation = zipf_relation(20_000, 1_000, 1.0, seed=2)
        sketch = factory(3)
        sketch.update(relation.keys)
        # Delete a random half of the tuples.
        mask = rng.random(len(relation)) < 0.5
        deleted = relation.keys[mask]
        sketch.update(deleted, -np.ones(deleted.size))
        remaining = FrequencyVector.from_items(relation.keys[~mask], 1_000)
        assert self_join_size(sketch) == pytest.approx(remaining.f2, rel=0.25)

    def test_full_deletion_gives_zero(self, factory, rng):
        keys = rng.integers(0, 30, size=500)
        sketch = factory(4)
        sketch.update(keys)
        sketch.update(keys, -np.ones(keys.size))
        assert self_join_size(sketch) == pytest.approx(0.0, abs=1e-9)

    def test_fractional_weights(self, factory, rng):
        """Weighted streams (SUM-style aggregates) work through the same
        path: the sketch estimates Σᵢ wᵢ² for per-key weight totals."""
        keys = np.arange(20)
        weights = rng.random(20) * 10
        sketch = factory(5)
        sketch.update(keys, weights)
        truth = float((weights**2).sum())
        assert self_join_size(sketch) == pytest.approx(truth, rel=0.5)


def test_turnstile_join_between_updated_streams(rng):
    """Join estimation remains unbiased after deletions on both sides."""
    domain = 500
    f_keys = rng.integers(0, domain, size=10_000)
    g_keys = rng.integers(0, domain, size=10_000)
    f_delete = f_keys[: 3_000]
    g_delete = g_keys[: 5_000]

    sketch_f = FagmsSketch(1_024, seed=6)
    sketch_g = sketch_f.copy_empty()
    sketch_f.update(f_keys)
    sketch_f.update(f_delete, -np.ones(f_delete.size))
    sketch_g.update(g_keys)
    sketch_g.update(g_delete, -np.ones(g_delete.size))

    f_net = FrequencyVector.from_items(f_keys[3_000:], domain)
    g_net = FrequencyVector.from_items(g_keys[5_000:], domain)
    truth = f_net.join_size(g_net)
    assert join_size(sketch_f, sketch_g) == pytest.approx(truth, rel=0.25)


def test_merge_with_negated_sketch_is_difference(rng):
    """sketch(A) − sketch(B) summarizes the signed difference A − B."""
    domain = 100
    a_keys = rng.integers(0, domain, size=2_000)
    b_keys = a_keys[:1_200]  # B ⊂ A
    sketch_a = FagmsSketch(512, seed=7)
    sketch_b = sketch_a.copy_empty()
    sketch_a.update(a_keys)
    sketch_b.update(b_keys)
    sketch_b._state()[...] *= -1
    sketch_a.merge(sketch_b)
    remaining = FrequencyVector.from_items(a_keys[1_200:], domain)
    assert sketch_a.second_moment() == pytest.approx(remaining.f2, rel=0.3)
