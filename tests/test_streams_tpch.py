"""TPC-H dbgen-lite: structural properties the experiments rely on."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams import generate_tpch
from repro.streams.tpch import MAX_LINES_PER_ORDER, _sparse_orderkeys


def test_order_counts_scale_with_factor():
    tables = generate_tpch(scale_factor=0.001, seed=1)
    assert tables.n_orders == 1500
    tables2 = generate_tpch(scale_factor=0.002, seed=1)
    assert tables2.n_orders == 3000


def test_orders_per_sf_override():
    tables = generate_tpch(scale_factor=1.0, orders_per_sf=1000, seed=1)
    assert tables.n_orders == 1000


def test_orderkeys_unique_and_sparse():
    tables = generate_tpch(scale_factor=0.001, seed=2, shuffle=False)
    keys = np.sort(tables.orders.keys)
    assert np.unique(keys).size == keys.size
    # dbgen pattern: keys 0-7 of each 32-block, 8-31 skipped.
    assert np.all((keys % 32) < 8)


def test_sparse_orderkeys_pattern():
    keys = _sparse_orderkeys(10)
    assert keys.tolist() == [0, 1, 2, 3, 4, 5, 6, 7, 32, 33]


def test_lineitem_multiplicities_in_range():
    tables = generate_tpch(scale_factor=0.002, seed=3)
    counts = tables.lineitem.frequency_vector().counts
    present = counts[counts > 0]
    assert present.min() >= 1
    assert present.max() <= MAX_LINES_PER_ORDER
    assert present.size == tables.n_orders  # every order has lineitems


def test_foreign_key_join_size_is_lineitem_count():
    tables = generate_tpch(scale_factor=0.002, seed=4)
    assert tables.exact_join_size() == tables.n_lineitems


def test_lineitem_f2_matches_multiplicities():
    tables = generate_tpch(scale_factor=0.001, seed=5)
    counts = tables.lineitem.frequency_vector().counts
    assert tables.exact_lineitem_f2() == int((counts.astype(np.int64) ** 2).sum())


def test_mean_lines_per_order_near_four():
    tables = generate_tpch(scale_factor=0.01, seed=6)
    mean_lines = tables.n_lineitems / tables.n_orders
    assert 3.7 < mean_lines < 4.3  # E[U{1..7}] = 4


def test_shuffle_randomizes_order():
    shuffled = generate_tpch(scale_factor=0.001, seed=7, shuffle=True)
    plain = generate_tpch(scale_factor=0.001, seed=7, shuffle=False)
    assert not np.array_equal(shuffled.lineitem.keys, plain.lineitem.keys)
    assert sorted(shuffled.lineitem.keys.tolist()) == sorted(
        plain.lineitem.keys.tolist()
    )


def test_deterministic_given_seed():
    a = generate_tpch(scale_factor=0.001, seed=8)
    b = generate_tpch(scale_factor=0.001, seed=8)
    assert np.array_equal(a.lineitem.keys, b.lineitem.keys)
    assert np.array_equal(a.orders.keys, b.orders.keys)


def test_shared_domain():
    tables = generate_tpch(scale_factor=0.001, seed=9)
    assert tables.orders.domain_size == tables.lineitem.domain_size


def test_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        generate_tpch(scale_factor=0)
    with pytest.raises(ConfigurationError):
        generate_tpch(scale_factor=1, orders_per_sf=0)
