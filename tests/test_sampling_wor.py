"""Without-replacement sampler and the streaming reservoir."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, InsufficientDataError
from repro.frequency import FrequencyVector
from repro.sampling import ReservoirSampler, WithoutReplacementSampler


class TestWithoutReplacementSampler:
    def test_requires_exactly_one_of_size_fraction(self):
        with pytest.raises(ConfigurationError):
            WithoutReplacementSampler()
        with pytest.raises(ConfigurationError):
            WithoutReplacementSampler(size=2, fraction=0.1)

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ConfigurationError):
            WithoutReplacementSampler(fraction=1.5)

    def test_size_cannot_exceed_population(self):
        sampler = WithoutReplacementSampler(size=10)
        with pytest.raises(ConfigurationError):
            sampler.resolve_size(5)

    def test_full_fraction_returns_whole_population(self, rng):
        keys = np.arange(20)
        sampled, info = WithoutReplacementSampler(fraction=1.0).sample_items(keys, rng)
        assert sorted(sampled.tolist()) == keys.tolist()
        assert info.sample_size == 20

    def test_sample_items_distinct_positions(self, rng):
        keys = np.arange(100)  # distinct values: multiset sample must be distinct
        sampled, _ = WithoutReplacementSampler(size=30).sample_items(keys, rng)
        assert np.unique(sampled).size == 30

    def test_sample_frequencies_bounded_and_exact_total(self, rng):
        fv = FrequencyVector([5, 0, 7, 3])
        sample, info = WithoutReplacementSampler(size=6).sample_frequencies(fv, rng)
        assert sample.total == 6
        assert np.all(sample.counts <= fv.counts)
        assert info.scheme == "without_replacement"

    @pytest.mark.statistical
    def test_frequency_path_is_hypergeometric(self):
        fv = FrequencyVector([60, 30, 10])
        sampler = WithoutReplacementSampler(size=50)
        trials = 2000
        draws = np.array(
            [sampler.sample_frequencies(fv, seed=s)[0].counts for s in range(trials)]
        )
        n, total = 50, 100
        expected_mean = n * fv.counts / total
        finite = (total - n) / (total - 1)
        expected_var = (
            n * (fv.counts / total) * (1 - fv.counts / total) * finite
        )
        assert np.allclose(draws.mean(axis=0), expected_mean, rtol=0.05)
        assert np.allclose(draws.var(axis=0), expected_var, rtol=0.2)


class TestReservoirSampler:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            ReservoirSampler(0)

    def test_holds_everything_below_capacity(self):
        reservoir = ReservoirSampler(10, seed=1)
        reservoir.extend([3, 1, 4])
        assert sorted(reservoir.sample().tolist()) == [1, 3, 4]
        assert reservoir.seen == 3

    def test_capacity_bound(self):
        reservoir = ReservoirSampler(5, seed=2)
        reservoir.extend(np.arange(100))
        assert reservoir.sample().size == 5
        assert reservoir.seen == 100

    def test_sample_is_subset_of_stream(self):
        reservoir = ReservoirSampler(8, seed=3)
        stream = np.arange(1000) * 2
        for chunk in np.array_split(stream, 7):
            reservoir.extend(chunk)
        assert set(reservoir.sample().tolist()) <= set(stream.tolist())

    def test_info(self):
        reservoir = ReservoirSampler(5, seed=4)
        with pytest.raises(InsufficientDataError):
            reservoir.info()
        reservoir.extend(np.arange(50))
        info = reservoir.info()
        assert info.scheme == "without_replacement"
        assert info.population_size == 50
        assert info.sample_size == 5

    def test_rejects_2d_chunk(self):
        with pytest.raises(ConfigurationError):
            ReservoirSampler(3).extend(np.ones((2, 2), dtype=np.int64))

    @pytest.mark.statistical
    def test_uniform_inclusion_probability(self):
        """Every stream position is retained with probability k/n."""
        k, n, trials = 10, 100, 3000
        inclusion = np.zeros(n)
        for s in range(trials):
            reservoir = ReservoirSampler(k, seed=s)
            # feed positions 0..n-1 in uneven chunks to stress chunk logic
            reservoir.extend(np.arange(0, 37))
            reservoir.extend(np.arange(37, 41))
            reservoir.extend(np.arange(41, 100))
            for kept in reservoir.sample():
                inclusion[kept] += 1
        inclusion /= trials
        expected = k / n
        standard_error = np.sqrt(expected * (1 - expected) / trials)
        assert np.all(np.abs(inclusion - expected) < 6 * standard_error)
