"""Seeding utilities: normalization, spawning, determinism."""

import numpy as np
import pytest

from repro.rng import as_generator, as_seed_sequence, derive_seed, spawn


def test_as_generator_accepts_none_int_seedseq_generator():
    assert isinstance(as_generator(None), np.random.Generator)
    assert isinstance(as_generator(7), np.random.Generator)
    assert isinstance(as_generator(np.random.SeedSequence(7)), np.random.Generator)
    generator = np.random.default_rng(7)
    assert as_generator(generator) is generator


def test_as_generator_is_deterministic_for_int_seed():
    a = as_generator(42).integers(0, 1 << 30, size=8)
    b = as_generator(42).integers(0, 1 << 30, size=8)
    assert np.array_equal(a, b)


def test_as_seed_sequence_passthrough_and_from_generator():
    sequence = np.random.SeedSequence(5)
    assert as_seed_sequence(sequence) is sequence
    # From a generator: deterministic given the generator state.
    g1 = np.random.default_rng(9)
    g2 = np.random.default_rng(9)
    s1 = as_seed_sequence(g1)
    s2 = as_seed_sequence(g2)
    assert s1.entropy == s2.entropy


def test_spawn_count_and_independence():
    children = spawn(3, 4)
    assert len(children) == 4
    states = {tuple(c.generate_state(2)) for c in children}
    assert len(states) == 4  # all distinct


def test_spawn_rejects_negative():
    with pytest.raises(ValueError):
        spawn(0, -1)


def test_derive_seed_deterministic_and_indexed():
    assert derive_seed(11) == derive_seed(11)
    assert derive_seed(11, index=0) != derive_seed(11, index=1)
    assert 0 <= derive_seed(11) < 2**63
