"""Count-Min: upper-bound semantics and explicit F₂ refusal."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.frequency import FrequencyVector
from repro.sketches import CountMinSketch


def test_point_estimates_upper_bound_true_frequencies():
    fv = FrequencyVector(np.array([5, 0, 3, 7, 1, 0, 2, 4]))
    sketch = CountMinSketch(buckets=4, rows=3, seed=2)
    sketch.update_frequency_vector(fv)
    for key, true_count in enumerate(fv):
        assert sketch.point_estimate(key) >= true_count


def test_point_estimate_exact_when_no_collisions():
    fv = FrequencyVector(np.array([5, 0, 3]))
    sketch = CountMinSketch(buckets=512, rows=3, seed=3)
    sketch.update_frequency_vector(fv)
    for key, true_count in enumerate(fv):
        assert sketch.point_estimate(key) == pytest.approx(true_count)


def test_inner_product_upper_bounds_join_size(zipf_f, zipf_g):
    sketch_f = CountMinSketch(buckets=256, rows=3, seed=5)
    sketch_g = sketch_f.copy_empty()
    sketch_f.update_frequency_vector(zipf_f)
    sketch_g.update_frequency_vector(zipf_g)
    assert sketch_f.inner_product(sketch_g) >= zipf_f.join_size(zipf_g)


def test_second_moment_refused():
    sketch = CountMinSketch(buckets=8, rows=2, seed=1)
    with pytest.raises(EstimationError):
        sketch.second_moment()


def test_merge_linearity():
    fv1 = FrequencyVector([1, 2, 0])
    fv2 = FrequencyVector([0, 1, 3])
    a = CountMinSketch(buckets=8, rows=2, seed=4)
    b = a.copy_empty()
    combined = a.copy_empty()
    a.update_frequency_vector(fv1)
    b.update_frequency_vector(fv2)
    combined.update_frequency_vector(fv1 + fv2)
    a.merge(b)
    assert np.allclose(a.counters, combined.counters)


def test_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        CountMinSketch(buckets=0)
    with pytest.raises(ConfigurationError):
        CountMinSketch(buckets=4, rows=0)


def test_inner_product_type_check():
    from repro.sketches import AgmsSketch

    sketch = CountMinSketch(buckets=8, rows=2, seed=1)
    with pytest.raises(TypeError):
        sketch.inner_product(AgmsSketch(rows=2, seed=1))
