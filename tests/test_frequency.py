"""FrequencyVector: construction, moments, cross moments, exactness."""

import numpy as np
import pytest

from repro.errors import DomainError
from repro.frequency import FrequencyVector, cross_power_sum


class TestConstruction:
    def test_from_counts(self):
        fv = FrequencyVector([1, 0, 2])
        assert fv.domain_size == 3
        assert fv.total == 3
        assert fv.support_size == 2

    def test_rejects_negative_counts(self):
        with pytest.raises(DomainError):
            FrequencyVector([1, -1, 2])

    def test_rejects_non_integer_counts(self):
        with pytest.raises(DomainError):
            FrequencyVector([1.5, 2.0])

    def test_accepts_integral_floats(self):
        fv = FrequencyVector(np.array([1.0, 2.0]))
        assert fv[0] == 1 and fv[1] == 2

    def test_rejects_2d(self):
        with pytest.raises(DomainError):
            FrequencyVector(np.ones((2, 2), dtype=np.int64))

    def test_from_items(self):
        fv = FrequencyVector.from_items([0, 2, 2, 1, 2], domain_size=4)
        assert list(fv) == [1, 1, 3, 0]

    def test_from_items_empty(self):
        fv = FrequencyVector.from_items([], domain_size=5)
        assert fv.total == 0
        assert fv.domain_size == 5

    def test_from_items_out_of_domain(self):
        with pytest.raises(DomainError):
            FrequencyVector.from_items([0, 5], domain_size=5)
        with pytest.raises(DomainError):
            FrequencyVector.from_items([-1], domain_size=5)

    def test_counts_are_read_only(self):
        fv = FrequencyVector([1, 2])
        with pytest.raises(ValueError):
            fv.counts[0] = 9

    def test_input_copy_protects_against_mutation(self):
        raw = np.array([1, 2, 3])
        fv = FrequencyVector(raw)
        raw[0] = 99
        assert fv[0] == 1

    def test_zeros(self):
        fv = FrequencyVector.zeros(4)
        assert fv.total == 0 and fv.domain_size == 4


class TestMoments:
    def test_power_sums_small(self, small_f):
        counts = list(small_f)
        for order in range(1, 5):
            assert small_f.power_sum(order) == sum(c**order for c in counts)

    def test_power_sum_zero_is_support(self, small_f):
        assert small_f.power_sum(0) == small_f.support_size

    def test_power_sum_rejects_negative_order(self, small_f):
        with pytest.raises(ValueError):
            small_f.power_sum(-1)

    def test_f_properties(self, small_f):
        assert small_f.f1 == small_f.power_sum(1)
        assert small_f.f2 == small_f.power_sum(2)
        assert small_f.f3 == small_f.power_sum(3)
        assert small_f.f4 == small_f.power_sum(4)

    def test_no_overflow_on_large_counts(self):
        big = 2**40
        fv = FrequencyVector(np.array([big, big]))
        assert fv.f4 == 2 * big**4  # would overflow int64 by far

    def test_self_join_size(self, small_f):
        assert small_f.self_join_size() == small_f.f2


class TestCrossMoments:
    def test_join_size(self, small_f, small_g):
        expected = sum(a * b for a, b in zip(small_f, small_g))
        assert small_f.join_size(small_g) == expected

    def test_cross_power_sum_orders(self, small_f, small_g):
        for a in range(3):
            for b in range(3):
                expected = sum(
                    x**a * y**b for x, y in zip(small_f, small_g)
                )
                if a == 0 and b == 0:
                    expected = small_f.domain_size
                elif a == 0:
                    expected = sum(y**b for y in small_g if y > 0) if b else expected
                elif b == 0:
                    expected = sum(x**a for x in small_f if x > 0)
                assert small_f.cross_power_sum(small_g, a, b) == expected

    def test_cross_power_sum_mismatched_domains(self):
        f = FrequencyVector([1, 2])
        g = FrequencyVector([1, 2, 3])
        with pytest.raises(DomainError):
            f.join_size(g)

    def test_cross_power_sum_large_values_exact(self):
        big = 2**31
        f = np.array([big, big])
        g = np.array([big, 1])
        assert cross_power_sum(f, g, 2, 2) == big**2 * big**2 + big**2
        assert cross_power_sum(f, g, 1, 1) == big * big + big


class TestDerivedVectors:
    def test_add(self, small_f, small_g):
        total = small_f + small_g
        assert list(total) == [a + b for a, b in zip(small_f, small_g)]

    def test_scaled(self, small_f):
        doubled = small_f.scaled(2)
        assert list(doubled) == [2 * c for c in small_f]
        with pytest.raises(ValueError):
            small_f.scaled(-1)

    def test_probabilities_sum_to_one(self, small_f):
        probabilities = small_f.probabilities()
        assert probabilities.sum() == pytest.approx(1.0)

    def test_probabilities_of_empty_raise(self):
        with pytest.raises(DomainError):
            FrequencyVector.zeros(3).probabilities()

    def test_to_items_round_trip(self, small_f):
        items = small_f.to_items()
        back = FrequencyVector.from_items(items, small_f.domain_size)
        assert back == small_f

    def test_equality_and_hash(self, small_f):
        clone = FrequencyVector(small_f.counts)
        assert clone == small_f
        assert hash(clone) == hash(small_f)
        assert small_f != FrequencyVector.zeros(small_f.domain_size)
