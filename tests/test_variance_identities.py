"""The flagship correctness suite: three independent computations agree.

For every sampling scheme and both aggregates we verify the chain

    closed form (Props 3-6, 13-16, errata-corrected)
        == generic moment evaluator (Props 1-2, 9-12)
        == exact enumeration of the sampling distribution
        ≈ Monte Carlo of the actual estimator

The closed-form/generic comparisons are **exact rational identities** over
randomized inputs; the enumeration check pins both to ground truth on tiny
inputs; Monte Carlo closes the loop against the real estimator pipeline.
"""

from fractions import Fraction
from itertools import product
from math import comb

import numpy as np
import pytest

from repro.frequency import FrequencyVector
from repro.sampling.coefficients import SamplingCoefficients
from repro.sampling.moments import (
    BernoulliMoments,
    WithReplacementMoments,
    WithoutReplacementMoments,
)
from repro.variance import closed_form as closed
from repro.variance import generic
from repro.variance import sampling as sampling_var


def random_vectors(seed, domain=10, high=7):
    rng = np.random.default_rng(seed)
    f = FrequencyVector(rng.integers(0, high, size=domain))
    g = FrequencyVector(rng.integers(0, high, size=domain))
    return f, g


SEEDS = [0, 1, 2, 3]
P = Fraction(1, 3)
Q = Fraction(2, 5)
N_AVG = 5


# ----------------------------------------------------------------------
# Closed form == generic (exact rational identities)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_bernoulli_join_closed_equals_generic(seed):
    f, g = random_vectors(seed)
    model_f, model_g = BernoulliMoments(P), BernoulliMoments(Q)
    for n in (1, 2, N_AVG, 100):
        assert closed.bernoulli_combined_join_variance(
            f, g, P, Q, n
        ) == generic.combined_join_variance(
            model_f, f, model_g, g, 1 / (P * Q), n, exact=True
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_bernoulli_self_join_closed_equals_generic(seed):
    f, _ = random_vectors(seed)
    model = BernoulliMoments(P)
    correction = (1 - P) / P**2
    for n in (1, 2, N_AVG):
        assert closed.bernoulli_combined_self_join_variance(
            f, P, n
        ) == generic.combined_self_join_variance(
            model, f, 1 / P**2, n, correction=correction, exact=True
        )


def _fixed_size_setup(f, g):
    size_f = max(2, f.total // 3)
    size_g = max(2, g.total // 4)
    return (
        SamplingCoefficients(size_f, f.total),
        SamplingCoefficients(size_g, g.total),
        size_f,
        size_g,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_wr_join_closed_equals_generic(seed):
    f, g = random_vectors(seed)
    coeff_f, coeff_g, size_f, size_g = _fixed_size_setup(f, g)
    model_f = WithReplacementMoments(size_f, f.total)
    model_g = WithReplacementMoments(size_g, g.total)
    scale = 1 / (coeff_f.alpha * coeff_g.alpha)
    for n in (1, N_AVG):
        assert closed.wr_combined_join_variance(
            f, g, coeff_f, coeff_g, n
        ) == generic.combined_join_variance(model_f, f, model_g, g, scale, n, exact=True)


@pytest.mark.parametrize("seed", SEEDS)
def test_wor_join_closed_equals_generic(seed):
    f, g = random_vectors(seed)
    coeff_f, coeff_g, size_f, size_g = _fixed_size_setup(f, g)
    model_f = WithoutReplacementMoments(size_f, f.total)
    model_g = WithoutReplacementMoments(size_g, g.total)
    scale = 1 / (coeff_f.alpha * coeff_g.alpha)
    for n in (1, N_AVG):
        assert closed.wor_combined_join_variance(
            f, g, coeff_f, coeff_g, n
        ) == generic.combined_join_variance(model_f, f, model_g, g, scale, n, exact=True)


@pytest.mark.parametrize("seed", SEEDS)
def test_sampling_only_closed_equals_generic(seed):
    f, g = random_vectors(seed)
    coeff_f, coeff_g, size_f, size_g = _fixed_size_setup(f, g)
    scale = 1 / (coeff_f.alpha * coeff_g.alpha)
    # Eq. 6
    assert sampling_var.bernoulli_join_variance(
        f, g, P, Q
    ) == generic.sampling_join_variance(
        BernoulliMoments(P), f, BernoulliMoments(Q), g, 1 / (P * Q), exact=True
    )
    # Eq. 7
    assert sampling_var.bernoulli_self_join_variance(
        f, P
    ) == generic.sampling_self_join_variance(
        BernoulliMoments(P), f, 1 / P**2, correction=(1 - P) / P**2, exact=True
    )
    # Eq. 10 (errata-corrected)
    assert sampling_var.wr_join_variance(
        f, g, coeff_f, coeff_g
    ) == generic.sampling_join_variance(
        WithReplacementMoments(size_f, f.total),
        f,
        WithReplacementMoments(size_g, g.total),
        g,
        scale,
        exact=True,
    )
    # Eq. 11
    assert sampling_var.wor_join_variance(
        f, g, coeff_f, coeff_g
    ) == generic.sampling_join_variance(
        WithoutReplacementMoments(size_f, f.total),
        f,
        WithoutReplacementMoments(size_g, g.total),
        g,
        scale,
        exact=True,
    )


def test_prop9_is_prop11_at_n_one(small_f, small_g):
    model_f, model_g = BernoulliMoments(P), BernoulliMoments(Q)
    scale = 1 / (P * Q)
    v1 = generic.combined_join_variance(model_f, small_f, model_g, small_g, scale, 1, exact=True)
    a, b, prod_e2, d = generic._join_building_blocks(
        model_f, small_f, model_g, small_g, True
    )
    prop9 = scale**2 * (prod_e2 + 2 * b - 2 * d - a * a)
    assert v1 == prop9


def test_sampling_variance_is_infinite_averaging_limit(small_f, small_g):
    """Prop 11 at n→∞ leaves exactly the Prop 1 sampling variance."""
    model_f, model_g = BernoulliMoments(P), BernoulliMoments(Q)
    scale = 1 / (P * Q)
    sampling_only = generic.sampling_join_variance(
        model_f, small_f, model_g, small_g, scale, exact=True
    )
    huge_n = generic.combined_join_variance(
        model_f, small_f, model_g, small_g, scale, 10**12, exact=True
    )
    assert abs(float(huge_n) - float(sampling_only)) < 1e-6 * float(sampling_only)


# ----------------------------------------------------------------------
# Exact enumeration pins the generic evaluator to ground truth
# ----------------------------------------------------------------------


def _binomial_states(counts, p):
    for combo in product(*[range(c + 1) for c in counts]):
        probability = Fraction(1)
        for total, kept in zip(counts, combo):
            probability *= comb(total, kept) * p**kept * (1 - p) ** (total - kept)
        yield np.array(combo), probability


def test_bernoulli_self_join_combined_variance_by_enumeration():
    """Full estimator variance (sketch + sampling + correction) vs truth.

    Decisive for the Eq. 26 erratum: Var_ξ[S²|sample] is the exact AGMS
    conditional variance, so no sketch simulation noise enters.
    """
    counts = np.array([2, 1, 3])
    f = FrequencyVector(counts)
    p = Fraction(1, 3)
    n = 3
    scale = 1 / p**2
    c = (1 - p) / p**2
    states = list(_binomial_states(counts, p))

    def conditional_mean(sample):
        return scale * sum(int(x) ** 2 for x in sample) - c * int(sample.sum())

    def conditional_variance(sample):
        sum2 = sum(int(x) ** 2 for x in sample)
        sum4 = sum(int(x) ** 4 for x in sample)
        return scale**2 * Fraction(2, n) * (sum2**2 - sum4)

    mean = sum(pr * conditional_mean(s) for s, pr in states)
    truth = sum(
        pr * (conditional_variance(s) + conditional_mean(s) ** 2)
        for s, pr in states
    ) - mean**2
    assert mean == f.f2  # unbiased
    model = BernoulliMoments(p)
    assert (
        generic.combined_self_join_variance(
            model, f, scale, n, correction=c, exact=True
        )
        == truth
    )
    assert closed.bernoulli_combined_self_join_variance(f, p, n) == truth


def test_bernoulli_join_combined_variance_by_enumeration():
    counts_f = np.array([2, 1])
    counts_g = np.array([1, 2])
    f, g = FrequencyVector(counts_f), FrequencyVector(counts_g)
    p, q = Fraction(1, 2), Fraction(1, 3)
    n = 2
    scale = 1 / (p * q)
    states_f = list(_binomial_states(counts_f, p))
    states_g = list(_binomial_states(counts_g, q))

    mean = Fraction(0)
    second = Fraction(0)
    for sample_f, prob_f in states_f:
        for sample_g, prob_g in states_g:
            pr = prob_f * prob_g
            inner = sum(int(a) * int(b) for a, b in zip(sample_f, sample_g))
            f2 = sum(int(a) ** 2 for a in sample_f)
            g2 = sum(int(b) ** 2 for b in sample_g)
            f2g2 = sum(int(a) ** 2 * int(b) ** 2 for a, b in zip(sample_f, sample_g))
            conditional_var = Fraction(1, n) * (f2 * g2 + inner**2 - 2 * f2g2)
            mean += pr * scale * inner
            second += pr * (scale**2 * (conditional_var + inner**2))
    truth = second - mean**2
    assert mean == f.join_size(g)
    model_f, model_g = BernoulliMoments(p), BernoulliMoments(q)
    assert (
        generic.combined_join_variance(model_f, f, model_g, g, scale, n, exact=True)
        == truth
    )
    assert closed.bernoulli_combined_join_variance(f, g, p, q, n) == truth


# ----------------------------------------------------------------------
# Monte Carlo closes the loop against the real estimator pipeline
# ----------------------------------------------------------------------


@pytest.mark.statistical
def test_wr_join_variance_monte_carlo():
    rng = np.random.default_rng(7)
    f = FrequencyVector(rng.integers(0, 8, size=12))
    g = FrequencyVector(rng.integers(0, 8, size=12))
    size_f, size_g = max(2, f.total // 3), max(2, g.total // 4)
    a, b = size_f / f.total, size_g / g.total
    trials = 200_000
    fs = rng.multinomial(size_f, f.counts / f.total, size=trials)
    gs = rng.multinomial(size_g, g.counts / g.total, size=trials)
    estimates = (fs * gs).sum(axis=1) / (a * b)
    theoretical = float(
        generic.sampling_join_variance(
            WithReplacementMoments(size_f, f.total),
            f,
            WithReplacementMoments(size_g, g.total),
            g,
            Fraction(1) / (Fraction(size_f, f.total) * Fraction(size_g, g.total)),
            exact=True,
        )
    )
    assert estimates.mean() == pytest.approx(f.join_size(g), rel=0.02)
    assert estimates.var() == pytest.approx(theoretical, rel=0.05)


@pytest.mark.statistical
def test_wor_self_join_variance_monte_carlo():
    rng = np.random.default_rng(8)
    f = FrequencyVector(rng.integers(0, 8, size=10))
    size = max(2, f.total // 2)
    coefficients = SamplingCoefficients(size, f.total)
    alpha, alpha1 = coefficients.alpha, coefficients.alpha1
    scale = float(1 / (alpha * alpha1))
    constant = float((1 - alpha1) / alpha1 * f.total)
    trials = 200_000
    draws = np.array(
        [
            rng.multivariate_hypergeometric(f.counts, size, method="marginals")
            for _ in range(trials)
        ]
    )
    estimates = scale * (draws.astype(np.float64) ** 2).sum(axis=1) - constant
    theoretical = float(
        generic.sampling_self_join_variance(
            WithoutReplacementMoments(size, f.total),
            f,
            1 / (alpha * alpha1),
            exact=True,
        )
    )
    assert estimates.mean() == pytest.approx(f.f2, rel=0.02)
    assert estimates.var() == pytest.approx(theoretical, rel=0.05)
