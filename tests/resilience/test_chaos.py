"""Fault-injection invariants: every fault class ends in bit-identical
recovery or a loud typed error — never silent corruption.

The chaos matrix is seeded (``REPRO_CHAOS_SEEDS`` widens it in CI); for
each seed an independent fault schedule of crashes, torn chunks,
duplicated deliveries, and checkpoint corruption is driven through
:func:`repro.resilience.chaos.run_until_complete`, and the surviving
counters are compared bit for bit against a fault-free run.
"""

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.resilience.chaos import ChaosInjector, SimulatedCrash, run_until_complete
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.runtime import StreamRuntime, envelope_stream
from repro.sketches.fagms import FagmsSketch


def _reference_state(chunks, *, p=1.0):
    runtime = StreamRuntime(FagmsSketch(buckets=64, seed=21), p=p, seed=77)
    runtime.run(list(chunks))
    return runtime.sketch._state().copy(), runtime.sketcher.kept


@pytest.mark.parametrize("p", [1.0, 0.4])
def test_chaos_run_matches_fault_free_run(tmp_path, chaos_seed, p, stream_chunks):
    expected_state, expected_kept = _reference_state(stream_chunks, p=p)
    directory = tmp_path / f"chaos-{chaos_seed}"
    injector = ChaosInjector(
        1000 + chaos_seed,
        crash_rate=0.08,
        truncate_rate=0.06,
        duplicate_rate=0.08,
        corrupt_rate=0.5,
        checkpoint_dir=directory,
        max_faults=25,
    )

    def make_runtime():
        return StreamRuntime(
            FagmsSketch(buckets=64, seed=21),
            p=p,
            seed=77,
            checkpoint_dir=directory,
            checkpoint_every=5,
        )

    runtime, restarts = run_until_complete(
        make_runtime,
        lambda: envelope_stream(stream_chunks),
        checkpoint_dir=directory,
        injector=injector,
    )
    assert runtime.position == len(stream_chunks)
    assert runtime.sketcher.kept == expected_kept
    assert np.array_equal(runtime.sketch._state(), expected_state)
    assert restarts == injector.faults["crash"] + injector.faults["corrupt"] + (
        injector.faults["truncate"]
    )


def test_fault_schedule_is_deterministic(stream_chunks):
    def schedule(seed):
        injector = ChaosInjector(
            seed, crash_rate=0.2, truncate_rate=0.2, duplicate_rate=0.2
        )
        for envelope in envelope_stream(stream_chunks):
            injector._decide(envelope.sequence)
        return dict(injector._decided)

    assert schedule(5) == schedule(5)
    assert schedule(5) != schedule(6)


def test_faults_are_transient(stream_chunks):
    injector = ChaosInjector(3, crash_rate=1.0, max_faults=1)
    with pytest.raises(SimulatedCrash):
        list(injector.wrap(envelope_stream(stream_chunks)))
    redelivered = list(injector.wrap(envelope_stream(stream_chunks)))
    assert len(redelivered) == len(stream_chunks)
    assert injector.faults["crash"] == 1


def test_corrupt_latest_checkpoint_is_detected(tmp_path):
    manager = CheckpointManager(tmp_path, keep=3)
    manager.save(position=1, state={"n": 1}, arrays={})
    newest = manager.save(position=2, state={"n": 2}, arrays={})
    injector = ChaosInjector(0, checkpoint_dir=tmp_path)
    assert injector.corrupt_latest_checkpoint() == str(newest)
    with pytest.raises(CheckpointError):
        manager.load(newest)
    survivor = manager.latest()
    assert survivor is not None and survivor.state == {"n": 1}


def test_simulated_crash_is_not_a_repro_error():
    from repro.errors import ReproError

    assert not issubclass(SimulatedCrash, ReproError)


def test_injector_validates_rates():
    with pytest.raises(ConfigurationError):
        ChaosInjector(0, crash_rate=1.5)
    with pytest.raises(ConfigurationError):
        ChaosInjector(0, corrupt_rate=0.5)  # corruption needs a directory


def test_run_until_complete_without_checkpoints_restarts_fresh(stream_chunks):
    expected_state, _ = _reference_state(stream_chunks)
    injector = ChaosInjector(9, crash_rate=0.15, max_faults=4)
    runtime, restarts = run_until_complete(
        lambda: StreamRuntime(FagmsSketch(buckets=64, seed=21), seed=77),
        lambda: envelope_stream(stream_chunks),
        injector=injector,
    )
    assert restarts == injector.faults["crash"]
    assert np.array_equal(runtime.sketch._state(), expected_state)
