"""Crash/recover round-trips must be bit-identical, everywhere.

The matrix: every kernel backend × every sketch type.  A runtime is
killed mid-stream, recovered from its newest checkpoint, and replayed;
the final counters must equal an uninterrupted run's bit for bit
(``np.array_equal``, not ``allclose``).
"""

import numpy as np
import pytest

from repro.errors import CheckpointError, StreamIntegrityError
from repro.kernels import backend_name, native_available, set_backend
from repro.resilience.runtime import StreamRuntime, envelope_stream, make_envelope
from repro.sketches.agms import AgmsSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.fagms import FagmsSketch

BACKENDS = ["reference", "numpy"] + (["native"] if native_available() else [])

SKETCHES = {
    "agms": lambda: AgmsSketch(rows=32, seed=17),
    "fagms": lambda: FagmsSketch(buckets=64, rows=3, seed=17),
    "countmin": lambda: CountMinSketch(buckets=64, rows=3, seed=17),
}


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = backend_name()
    yield
    set_backend(previous)


def _run_to_completion(make_sketch, chunks, directory, *, interrupt_at=None, p=1.0):
    runtime = StreamRuntime(
        make_sketch(), p=p, seed=1234, checkpoint_dir=directory, checkpoint_every=4
    )
    for index, envelope in enumerate(envelope_stream(chunks)):
        if interrupt_at is not None and index == interrupt_at:
            return runtime
        runtime.process(envelope)
    return runtime


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kind", sorted(SKETCHES))
def test_recovery_is_bit_identical(tmp_path, backend, kind, stream_chunks):
    set_backend(backend)
    make_sketch = SKETCHES[kind]

    reference = StreamRuntime(make_sketch(), p=1.0, seed=1234)
    reference.run(list(stream_chunks))

    _run_to_completion(
        make_sketch, stream_chunks, tmp_path / "ck", interrupt_at=13
    )  # dies with 13 chunks applied, 3 past the last checkpoint
    recovered = StreamRuntime.recover(tmp_path / "ck")
    assert 0 < recovered.position <= 13
    recovered.run(list(stream_chunks))
    assert recovered.position == len(stream_chunks)
    assert np.array_equal(
        recovered.sketch._state(), reference.sketch._state()
    )


@pytest.mark.parametrize("kind", ["agms", "fagms"])
def test_recovery_under_shedding_is_bit_identical(tmp_path, kind, stream_chunks):
    make_sketch = SKETCHES[kind]
    uninterrupted = _run_to_completion(
        make_sketch, stream_chunks, tmp_path / "a", p=0.3
    )
    _run_to_completion(
        make_sketch, stream_chunks, tmp_path / "b", interrupt_at=11, p=0.3
    )
    recovered = StreamRuntime.recover(tmp_path / "b")
    recovered.run(list(stream_chunks))
    assert np.array_equal(
        recovered.sketch._state(), uninterrupted.sketch._state()
    )
    assert recovered.sketcher.seen == uninterrupted.sketcher.seen
    assert recovered.sketcher.kept == uninterrupted.sketcher.kept
    assert recovered.self_join_size() == pytest.approx(
        uninterrupted.self_join_size()
    )


def test_unshedded_runtime_matches_plain_sketch(stream_chunks):
    runtime = StreamRuntime(FagmsSketch(buckets=64, seed=3))
    runtime.run(list(stream_chunks))
    plain = FagmsSketch(buckets=64, seed=3)
    for chunk in stream_chunks:
        plain.update(chunk)
    assert np.array_equal(runtime.sketch._state(), plain._state())


def test_duplicate_chunks_apply_once(stream_chunks):
    runtime = StreamRuntime(FagmsSketch(buckets=64, seed=3))
    doubled = []
    for envelope in envelope_stream(stream_chunks[:6]):
        doubled.extend([envelope, envelope])
    runtime.run(doubled)
    assert runtime.duplicates == 6
    plain = FagmsSketch(buckets=64, seed=3)
    for chunk in stream_chunks[:6]:
        plain.update(chunk)
    assert np.array_equal(runtime.sketch._state(), plain._state())


def test_truncated_chunk_raises(stream_chunks):
    runtime = StreamRuntime(FagmsSketch(buckets=64, seed=3))
    sealed = make_envelope(0, stream_chunks[0])
    torn = type(sealed)(
        sequence=0,
        keys=sealed.keys[:-3],
        count=sealed.count,
        crc32=sealed.crc32,
    )
    with pytest.raises(StreamIntegrityError, match="truncated"):
        runtime.process(torn)
    # nothing was applied: the intact redelivery still lands at cursor 0
    runtime.process(sealed)
    assert runtime.position == 1


def test_bit_flipped_payload_raises(stream_chunks):
    runtime = StreamRuntime(FagmsSketch(buckets=64, seed=3))
    sealed = make_envelope(0, stream_chunks[0])
    flipped_keys = sealed.keys.copy()
    flipped_keys[5] ^= 0x10
    flipped = type(sealed)(
        sequence=0, keys=flipped_keys, count=sealed.count, crc32=sealed.crc32
    )
    with pytest.raises(StreamIntegrityError, match="CRC32"):
        runtime.process(flipped)


def test_gap_in_sequence_raises(stream_chunks):
    runtime = StreamRuntime(FagmsSketch(buckets=64, seed=3))
    runtime.process(make_envelope(0, stream_chunks[0]))
    with pytest.raises(StreamIntegrityError, match="gap"):
        runtime.process(make_envelope(2, stream_chunks[2]))


def test_recover_requires_a_checkpoint(tmp_path):
    with pytest.raises(CheckpointError, match="no usable checkpoint"):
        StreamRuntime.recover(tmp_path / "empty")
