"""Shared fixtures for the resilience suite.

``REPRO_CHAOS_SEEDS`` widens the chaos matrix: each seed drives one
independently scheduled fault sequence through the crash-recovery tests
(CI sets 3; the default of 2 keeps local runs quick).
"""

from __future__ import annotations

import os

import numpy as np
import pytest


def pytest_generate_tests(metafunc):
    """Parametrize ``chaos_seed`` over the configured seed matrix."""
    if "chaos_seed" in metafunc.fixturenames:
        count = int(os.environ.get("REPRO_CHAOS_SEEDS", "2"))
        metafunc.parametrize("chaos_seed", range(count))


@pytest.fixture
def stream_chunks() -> list:
    """A deterministic 30-chunk stream of skewed keys."""
    rng = np.random.default_rng(0xFEED)
    return [
        rng.zipf(1.3, size=400).clip(0, 999).astype(np.int64) for _ in range(30)
    ]
