"""End-to-end interrupted-run smoke test: SIGKILL a real process mid-scan.

A child Python process runs the engine's lockstep scan with durable
checkpoints and is killed — hard, ``SIGKILL``, no cleanup — partway
through.  The parent then resumes the scan from disk and must end with
statistics bit-identical to a never-interrupted run.  This is the one
test where the "crash" is a real process death rather than a simulated
exception, so it also exercises checkpoint durability across process
boundaries.  CI runs it in the ``resilience`` job.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.engine.scan import run_lockstep_scan
from repro.engine.statistics import OnlineStatisticsEngine
from repro.streams import zipf_relation

FRACTIONS = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)


def _relations():
    return {
        "r": zipf_relation(20_000, 2_000, skew=1.0, seed=31),
        "s": zipf_relation(12_000, 2_000, skew=0.6, seed=32),
    }


CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    from repro.engine.scan import run_lockstep_scan
    from repro.engine.statistics import OnlineStatisticsEngine
    from repro.streams import zipf_relation

    checkpoint_dir = sys.argv[1]
    relations = {{
        "r": zipf_relation(20_000, 2_000, skew=1.0, seed=31),
        "s": zipf_relation(12_000, 2_000, skew=0.6, seed=32),
    }}
    engine = OnlineStatisticsEngine(buckets=512, seed=9)
    for snapshot in run_lockstep_scan(
        engine, relations, checkpoints={fractions!r}, checkpoint_dir=checkpoint_dir
    ):
        print("FRACTION-DONE", flush=True)
        time.sleep(0.25)  # give the parent a window to SIGKILL us
    print("FINISHED", flush=True)
    """
).format(fractions=FRACTIONS)


@pytest.mark.skipif(os.name != "posix", reason="needs POSIX signals")
def test_killed_scan_resumes_bit_identically(tmp_path):
    checkpoint_dir = tmp_path / "scan-ckpts"
    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)

    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(checkpoint_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        # wait for two completed fractions, then kill without any cleanup
        done = 0
        deadline = time.monotonic() + 60
        while done < 2:
            line = child.stdout.readline()
            if not line:
                pytest.fail(
                    f"child exited early: {child.stderr.read()}"
                )
            if "FRACTION-DONE" in line:
                done += 1
            assert time.monotonic() < deadline, "child made no progress"
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL

    # resume from whatever the dead process left on disk
    resumed_engine = OnlineStatisticsEngine(buckets=512, seed=9)
    resumed = list(
        run_lockstep_scan(
            resumed_engine,
            _relations(),
            checkpoints=FRACTIONS,
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
    )
    assert 1 <= len(resumed) < len(FRACTIONS)  # some fractions were done

    # reference: the same scan, never interrupted
    reference_engine = OnlineStatisticsEngine(buckets=512, seed=9)
    reference = list(
        run_lockstep_scan(reference_engine, _relations(), checkpoints=FRACTIONS)
    )
    assert resumed[-1].fractions == reference[-1].fractions
    assert resumed[-1].self_join_sizes == reference[-1].self_join_sizes
    assert resumed[-1].join_sizes == reference[-1].join_sizes
    for name in _relations():
        assert np.array_equal(
            resumed_engine._relations[name].sketch._state(),
            reference_engine._relations[name].sketch._state(),
        )
