"""Statistical contract of adaptive (piecewise-rate) load shedding.

The three claims that make rate changes safe (docs/THEORY.md, the
piecewise-rate section): estimates stay *unbiased* across rate changes,
the widened variance bound keeps *coverage at or above nominal*, and the
governor keeps per-chunk processing *under budget* through a burst.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.adaptive import (
    AdaptiveSheddingSketcher,
    averaged_estimator_count,
)
from repro.resilience.governor import LoadGovernor
from repro.resilience.schedule import RateSchedule
from repro.sketches.agms import AgmsSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.fagms import FagmsSketch


def _true_f2(chunks, domain=1000):
    counts = np.zeros(domain, dtype=np.int64)
    for chunk in chunks:
        counts += np.bincount(chunk, minlength=domain)
    return float(np.sum(counts.astype(np.float64) ** 2))


# ----------------------------------------------------------------------
# RateSchedule bookkeeping
# ----------------------------------------------------------------------


def test_single_segment_correction_matches_prop14_form():
    schedule = RateSchedule(0.25)
    schedule.record(1000, 240)
    assert schedule.correction() == pytest.approx(1000 * 0.75 / 0.25)


def test_rate_changes_open_segments_and_compose():
    schedule = RateSchedule(0.5)
    schedule.record(100, 52)
    schedule.set_rate(0.1)
    schedule.record(200, 18)
    assert len(schedule.segments) == 2
    assert schedule.seen == 300 and schedule.kept == 70
    assert schedule.min_rate() == pytest.approx(0.1)
    expected = 100 * 0.5 / 0.5 + 200 * 0.9 / 0.1
    assert schedule.correction() == pytest.approx(expected)


def test_empty_segment_is_rerated_in_place():
    schedule = RateSchedule(0.5)
    schedule.set_rate(0.2)
    schedule.set_rate(0.9)
    assert len(schedule.segments) == 1
    assert schedule.rate == pytest.approx(0.9)


def test_state_round_trip():
    schedule = RateSchedule(0.5)
    schedule.record(100, 52)
    schedule.set_rate(0.1)
    schedule.record(200, 18)
    clone = RateSchedule.from_state(schedule.to_state())
    assert clone.correction() == pytest.approx(schedule.correction())
    assert clone.variance_bound(1e6, 64) == pytest.approx(
        schedule.variance_bound(1e6, 64)
    )


def test_variance_bound_at_p_one_is_pure_sketch():
    schedule = RateSchedule(1.0)
    schedule.record(5000, 5000)
    f2 = 2.5e5
    assert schedule.variance_bound(f2, 100) == pytest.approx(2.0 / 100 * f2**2)


def test_variance_bound_widens_as_rates_drop():
    lax = RateSchedule(1.0)
    lax.record(1000, 1000)
    tight = RateSchedule(1.0)
    tight.record(500, 500)
    tight.set_rate(0.1)
    tight.record(500, 50)
    assert tight.variance_bound(1e5, 64) > lax.variance_bound(1e5, 64)


def test_rate_validation():
    with pytest.raises(ConfigurationError):
        RateSchedule(0.0)
    schedule = RateSchedule(0.5)
    with pytest.raises(ConfigurationError):
        schedule.set_rate(1.5)
    with pytest.raises(ConfigurationError):
        schedule.record(10, 11)


# ----------------------------------------------------------------------
# Unbiasedness and coverage across rate changes (seeded Monte-Carlo)
# ----------------------------------------------------------------------


def _shed_with_rate_changes(chunks, sketch, trial):
    """One adaptive run: 1.0 → 0.35 → 0.7 across thirds of the stream."""
    sketcher = AdaptiveSheddingSketcher(sketch, 1.0, seed=5000 + trial)
    third = len(chunks) // 3
    for index, chunk in enumerate(chunks):
        if index == third:
            sketcher.set_rate(0.35)
        elif index == 2 * third:
            sketcher.set_rate(0.7)
        sketcher.process(chunk)
    return sketcher


def test_estimates_unbiased_across_rate_changes(stream_chunks):
    truth = _true_f2(stream_chunks)
    estimates = [
        _shed_with_rate_changes(
            stream_chunks, FagmsSketch(buckets=256, seed=100 + trial), trial
        ).self_join_size()
        for trial in range(40)
    ]
    assert np.mean(estimates) == pytest.approx(truth, rel=0.1)


def test_coverage_at_least_nominal(stream_chunks):
    truth = _true_f2(stream_chunks)
    covered = 0
    trials = 60
    for trial in range(trials):
        sketcher = _shed_with_rate_changes(
            stream_chunks, FagmsSketch(buckets=256, seed=200 + trial), trial
        )
        interval = sketcher.self_join_interval(0.95)
        covered += int(interval.contains(truth))
    assert covered / trials >= 0.95


def test_unshedded_estimate_matches_plain_shedding_sketcher(stream_chunks):
    sketcher = AdaptiveSheddingSketcher(FagmsSketch(buckets=128, seed=9))
    for chunk in stream_chunks:
        sketcher.process(chunk)
    plain = FagmsSketch(buckets=128, seed=9)
    for chunk in stream_chunks:
        plain.update(chunk)
    assert sketcher.self_join_size() == pytest.approx(plain.second_moment())


def test_join_size_is_unbiased_under_independent_shedding(stream_chunks):
    other_chunks = [np.sort(chunk) for chunk in stream_chunks]  # same keys
    truth = _true_f2(stream_chunks)  # identical streams: join == F2
    estimates = []
    for trial in range(40):
        seed = 300 + trial
        left = AdaptiveSheddingSketcher(
            FagmsSketch(buckets=256, seed=seed), 0.5, seed=10_000 + trial
        )
        right = AdaptiveSheddingSketcher(
            FagmsSketch(buckets=256, seed=seed), 0.4, seed=20_000 + trial
        )
        for chunk, other in zip(stream_chunks, other_chunks):
            left.process(chunk)
            right.process(other)
        estimates.append(left.join_size(right))
    assert np.mean(estimates) == pytest.approx(truth, rel=0.1)


def test_averaged_estimator_count():
    assert averaged_estimator_count(FagmsSketch(buckets=512, seed=0)) == 512
    assert averaged_estimator_count(AgmsSketch(rows=64, seed=0)) == 64
    assert (
        averaged_estimator_count(
            AgmsSketch(rows=64, seed=0, combine="median-of-means", groups=8)
        )
        == 8
    )
    with pytest.raises(ConfigurationError):
        averaged_estimator_count(CountMinSketch(buckets=64, seed=0))


# ----------------------------------------------------------------------
# Governor: budget adherence through a synthetic burst
# ----------------------------------------------------------------------


def test_governor_keeps_processing_under_budget_through_burst(stream_chunks):
    budget = 2e-6  # seconds per *arriving* tuple
    governor = LoadGovernor(
        budget, p_min=0.01, headroom=0.7, smoothing=0.7, deadband=0.02
    )
    sketcher = AdaptiveSheddingSketcher(
        FagmsSketch(buckets=128, seed=4), 1.0, seed=123
    )
    burst = range(8, 22)  # per-kept cost spikes to 4x the budget
    over_budget_after_warmup = 0
    for index, chunk in enumerate(stream_chunks):
        cost_per_kept = 8e-6 if index in burst else 1e-6
        kept = sketcher.process(chunk)
        elapsed = kept * cost_per_kept
        if index >= 11 and elapsed > budget * chunk.size:
            over_budget_after_warmup += 1
        proposal = governor.propose(sketcher.rate, kept, elapsed)
        if proposal is not None:
            sketcher.set_rate(proposal)
    # the controller needs ~3 chunks of the burst to relearn the cost;
    # after that every burst chunk must come in under the chunk budget
    assert over_budget_after_warmup == 0
    # after the burst the rate recovers (growth-capped) toward p_max
    assert sketcher.rate > 0.5
    # and the estimate is still sane, with a wider (but finite) interval
    interval = sketcher.self_join_interval(0.95)
    truth = _true_f2(stream_chunks)
    assert interval.contains(truth)


def test_governor_proposals_are_clamped_and_deadbanded():
    governor = LoadGovernor(1e-6, p_min=0.05, growth_limit=2.0, deadband=0.1)
    # 10x over budget: wants p = 0.09, reachable directly
    assert governor.propose(1.0, kept=1000, elapsed=1e-2) == pytest.approx(
        0.09, rel=1e-6
    )
    # recovery from a low rate is growth-capped at 2x per step
    cheap = LoadGovernor(1e-3, p_min=0.05, growth_limit=2.0)
    assert cheap.propose(0.1, kept=1000, elapsed=1e-4) == pytest.approx(0.2)
    # inside the deadband: no proposal
    steady = LoadGovernor(1e-6, headroom=1.0, deadband=0.2)
    assert steady.propose(1.0, kept=1000, elapsed=1e-3) is None


def test_governor_state_round_trip():
    governor = LoadGovernor(1e-6)
    governor.observe(100, 5e-4)
    clone = LoadGovernor(1e-6)
    clone.restore(governor.state())
    assert clone.cost_estimate == pytest.approx(governor.cost_estimate)


def test_governor_validation():
    with pytest.raises(ConfigurationError):
        LoadGovernor(0.0)
    with pytest.raises(ConfigurationError):
        LoadGovernor(1e-6, p_min=0.5, p_max=0.4)
    with pytest.raises(ConfigurationError):
        LoadGovernor(1e-6, growth_limit=0.5)
    governor = LoadGovernor(1e-6)
    with pytest.raises(ConfigurationError):
        governor.propose(0.0, kept=10, elapsed=1e-3)
