"""Durability contract of :mod:`repro.resilience.checkpoint`.

Every test here enforces one clause of the format's promise: snapshots
round-trip exactly, corruption is always *detected* (never silently
loaded), retention keeps the fallback snapshot, and interrupted writes
leave no visible half-checkpoint.
"""

import json
import zlib

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.resilience.checkpoint import CheckpointManager


def _arrays():
    return {
        "counters": np.arange(12, dtype=np.float64).reshape(3, 4),
        "tallies": np.array([7, 9], dtype=np.int64),
    }


def test_round_trip_is_exact(tmp_path):
    manager = CheckpointManager(tmp_path)
    state = {"cursor": {"chunk": 5}, "rate": 0.25}
    path = manager.save(position=5, state=state, arrays=_arrays())
    loaded = manager.load(path)
    assert loaded.position == 5
    assert loaded.sequence == 0
    assert loaded.state == state
    for name, original in _arrays().items():
        assert np.array_equal(loaded.arrays[name], original)
        assert loaded.arrays[name].dtype == original.dtype


def test_sequence_numbers_survive_restart(tmp_path):
    CheckpointManager(tmp_path, keep=5).save(position=1, state={}, arrays={})
    manager = CheckpointManager(tmp_path, keep=5)
    second = manager.save(position=2, state={}, arrays={})
    assert manager.load(second).sequence == 1


def test_retention_keeps_newest(tmp_path):
    manager = CheckpointManager(tmp_path, keep=2)
    for position in range(5):
        manager.save(position=position, state={"n": position}, arrays={})
    paths = manager.paths()
    assert len(paths) == 2
    assert manager.load(paths[-1]).state == {"n": 4}
    assert manager.load(paths[0]).state == {"n": 3}


def test_no_temp_files_left_behind(tmp_path):
    manager = CheckpointManager(tmp_path)
    manager.save(position=0, state={}, arrays=_arrays())
    leftovers = [p for p in tmp_path.iterdir() if not p.name.startswith("checkpoint-")]
    assert leftovers == []


def test_no_bit_flip_corrupts_silently(tmp_path):
    """Exhaustive sweep: flipping ANY byte is detected or harmless.

    Some zip/npy metadata bytes are ignored by the readers (local-header
    duplicates of central-directory fields, npy header padding); a flip
    there still loads — but must load the *original* content.  Every
    other flip must raise :class:`CheckpointError`.  No byte position may
    silently change what recovery sees.
    """
    manager = CheckpointManager(tmp_path)
    path = manager.save(position=3, state={"x": 1}, arrays=_arrays())
    blob = path.read_bytes()
    detected = 0
    for index in range(len(blob)):
        flipped = bytearray(blob)
        flipped[index] ^= 0xFF
        path.write_bytes(bytes(flipped))
        try:
            loaded = manager.load(path)
        except CheckpointError:
            detected += 1
            continue
        assert loaded.position == 3 and loaded.state == {"x": 1}, (
            f"silent corruption at byte {index}"
        )
        for name, original in _arrays().items():
            assert np.array_equal(loaded.arrays[name], original), (
                f"silent corruption at byte {index} in array {name!r}"
            )
    assert detected > len(blob) / 2  # the payload bytes all fire


def test_truncated_file_is_detected(tmp_path):
    manager = CheckpointManager(tmp_path)
    path = manager.save(position=3, state={}, arrays=_arrays())
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError):
        manager.load(path)


def test_garbage_file_is_detected(tmp_path):
    target = tmp_path / "checkpoint-00000000.ckpt"
    target.write_bytes(b"not an archive at all")
    with pytest.raises(CheckpointError):
        CheckpointManager(tmp_path).load(target)


def test_wrong_version_is_rejected(tmp_path):
    manifest = json.dumps(
        {"version": 999, "sequence": 0, "position": 0, "state": {}, "payload": {}}
    ).encode()
    target = tmp_path / "checkpoint-00000000.ckpt"
    with target.open("wb") as handle:
        np.savez(
            handle,
            manifest=np.frombuffer(manifest, dtype=np.uint8),
            manifest_crc=np.array([zlib.crc32(manifest)], dtype=np.int64),
        )
    with pytest.raises(CheckpointError, match="version"):
        CheckpointManager(tmp_path).load(target)


def test_latest_falls_back_past_corruption(tmp_path):
    manager = CheckpointManager(tmp_path, keep=3)
    manager.save(position=1, state={"n": 1}, arrays={})
    newest = manager.save(position=2, state={"n": 2}, arrays={})
    blob = bytearray(newest.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    newest.write_bytes(bytes(blob))
    recovered = manager.latest()
    assert recovered is not None
    assert recovered.state == {"n": 1}
    assert manager.corrupt_detected == [newest]
    with pytest.raises(CheckpointError):
        manager.latest(strict=True)


def test_latest_returns_none_when_empty(tmp_path):
    assert CheckpointManager(tmp_path).latest() is None


def test_reserved_array_names_rejected(tmp_path):
    manager = CheckpointManager(tmp_path)
    with pytest.raises(ConfigurationError):
        manager.save(
            position=0,
            state={},
            arrays={"manifest": np.zeros(1, dtype=np.float64)},
        )


def test_foreign_array_in_archive_is_rejected(tmp_path):
    manager = CheckpointManager(tmp_path)
    path = manager.save(position=0, state={}, arrays=_arrays())
    with np.load(path) as data:
        entries = {name: data[name] for name in data.files}
    entries["smuggled"] = np.zeros(3, dtype=np.float64)
    with path.open("wb") as handle:
        np.savez(handle, **entries)
    with pytest.raises(CheckpointError, match="smuggled"):
        manager.load(path)
