"""BackoffPolicy schedules and ShardSupervisor lifecycle, fully faked.

Every test here runs on an injected fake clock/sleep and hand-built
dispatch handles, so deadlines, hedges, and backoff delays are exercised
in microseconds of real time and with exact, deterministic timings.
"""

from __future__ import annotations

from concurrent.futures import CancelledError

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.observability import Observer
from repro.resilience.distributed import (
    BackoffPolicy,
    ShardFailure,
    ShardSupervisor,
    widened_join_variance,
    widened_self_join_variance,
)

# ----------------------------------------------------------------------
# Fakes
# ----------------------------------------------------------------------


class FakeClock:
    """Monotonic clock that only moves when the supervisor waits."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class FakeFuture:
    """A future whose fate the test scripts up front."""

    def __init__(self, clock: FakeClock, *, result=None, error=None, never=False):
        self._clock = clock
        self._result = result
        self._error = error
        self._never = never
        self.cancelled = False

    def done(self) -> bool:
        return self.cancelled or not self._never

    def cancel(self) -> bool:
        self.cancelled = True
        return True

    def result(self, timeout=None):
        if self.cancelled:
            raise CancelledError()
        if self._never:
            # A real future would block for *timeout* then time out.
            self._clock.sleep(timeout if timeout is not None else 3600.0)
            raise TimeoutError("still running")
        if self._error is not None:
            raise self._error
        return self._result


class Handle:
    def __init__(self, future, progress=None):
        self.future = future
        self.progress = progress


class ScriptedDispatch:
    """Dispatch callable returning pre-scripted handles per (shard, attempt).

    *script* maps ``(shard, attempt)`` to a handle factory; unscripted
    dispatches succeed immediately with the value ``(shard, attempt)``.
    Every call is recorded for assertions on ordinals/flags.
    """

    def __init__(self, clock: FakeClock, script=None):
        self.clock = clock
        self.script = dict(script or {})
        self.calls = []

    def __call__(self, shard, attempt, resume, exclusive):
        self.calls.append((shard, attempt, resume, exclusive))
        factory = self.script.get((shard, attempt))
        if factory is None:
            return Handle(FakeFuture(self.clock, result=(shard, attempt)))
        return factory()


def make_supervisor(clock: FakeClock, **kwargs) -> ShardSupervisor:
    kwargs.setdefault("clock", clock)
    kwargs.setdefault("sleep", clock.sleep)
    return ShardSupervisor(kwargs.pop("shards", 3), **kwargs)


# ----------------------------------------------------------------------
# BackoffPolicy / BackoffSchedule
# ----------------------------------------------------------------------


class TestBackoffPolicy:
    def test_exponential_growth_with_cap(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5, jitter=0.0)
        schedule = policy.schedule()
        delays = [schedule.next_delay() for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
        assert schedule.attempts == 5
        assert schedule.total_waited == pytest.approx(1.7)

    def test_same_seed_same_schedule(self):
        policy = BackoffPolicy(base=0.05, jitter=0.5, seed=42)
        first = [policy.schedule().next_delay() for _ in range(1)]
        a = policy.schedule()
        b = policy.schedule()
        assert [a.next_delay() for _ in range(6)] == [
            b.next_delay() for _ in range(6)
        ]
        assert first[0] == policy.schedule().next_delay()

    def test_different_seeds_differ(self):
        policy = BackoffPolicy(base=0.05, jitter=0.9)
        a = [policy.schedule(seed=1).next_delay() for _ in range(1)]
        b = [policy.schedule(seed=2).next_delay() for _ in range(1)]
        assert a != b

    def test_jitter_only_shrinks_within_bounds(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.3, seed=7)
        schedule = policy.schedule()
        for _ in range(20):
            assert 0.7 <= schedule.next_delay() <= 1.0

    def test_budget_exhaustion_yields_none_and_stops_iteration(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=10.0, jitter=0.0, budget=0.35)
        schedule = policy.schedule()
        assert list(schedule) == [0.1, 0.2]  # next (0.4) would burst 0.35
        assert schedule.next_delay() is None
        assert schedule.total_waited == pytest.approx(0.3)

    def test_zero_jitter_draws_no_randomness(self):
        # The schedule must be usable without entropy when jitter is off.
        schedule = BackoffPolicy(base=0.5, jitter=0.0).schedule()
        assert schedule.next_delay() == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": -0.1},
            {"factor": 0.5},
            {"cap": -1.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"budget": -2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(**kwargs)


# ----------------------------------------------------------------------
# ShardSupervisor — happy path and retries
# ----------------------------------------------------------------------


class TestSupervisorBasics:
    def test_all_shards_win_first_try(self):
        clock = FakeClock()
        dispatch = ScriptedDispatch(clock)
        outcome = make_supervisor(clock).run(dispatch)
        assert set(outcome.winners) == {0, 1, 2}
        assert outcome.lost == {}
        assert outcome.retries == 0 and outcome.hedges == 0
        assert dispatch.calls == [
            (0, 0, False, False),
            (1, 0, False, False),
            (2, 0, False, False),
        ]

    def test_failures_consume_retries_then_win(self):
        clock = FakeClock()
        boom = RuntimeError("boom")
        dispatch = ScriptedDispatch(
            clock,
            {
                (1, 0): lambda: Handle(FakeFuture(clock, error=boom)),
                (1, 1): lambda: Handle(FakeFuture(clock, error=boom)),
            },
        )
        outcome = make_supervisor(clock, max_retries=2).run(dispatch)
        assert set(outcome.winners) == {0, 1, 2}
        assert outcome.retries == 2
        # Attempt ordinals are per-shard and dense.
        assert [c for c in dispatch.calls if c[0] == 1] == [
            (1, 0, False, False),
            (1, 1, False, False),
            (1, 2, False, False),
        ]

    def test_exhaustion_raises_with_cause(self):
        clock = FakeClock()
        boom = RuntimeError("boom")
        dispatch = ScriptedDispatch(
            clock,
            {(0, a): (lambda: Handle(FakeFuture(clock, error=boom))) for a in range(3)},
        )
        with pytest.raises(RetryExhaustedError, match=r"shard 0 failed 3 time\(s\)"):
            make_supervisor(clock, shards=2, max_retries=2).run(dispatch)

    def test_resume_flag_threads_through_retries(self):
        clock = FakeClock()
        dispatch = ScriptedDispatch(
            clock,
            {(0, 0): lambda: Handle(FakeFuture(clock, error=RuntimeError("x")))},
        )
        make_supervisor(clock, shards=1, resume_retries=True).run(dispatch)
        assert dispatch.calls == [(0, 0, False, False), (0, 1, True, False)]


class TestSupervisorBackoff:
    def test_backoff_delays_are_served_on_the_clock(self):
        clock = FakeClock()
        boom = RuntimeError("flaky")
        dispatch = ScriptedDispatch(
            clock,
            {
                (0, 0): lambda: Handle(FakeFuture(clock, error=boom)),
                (0, 1): lambda: Handle(FakeFuture(clock, error=boom)),
            },
        )
        policy = BackoffPolicy(base=0.2, factor=2.0, cap=5.0, jitter=0.0)
        outcome = make_supervisor(
            clock, shards=1, max_retries=2, backoff=policy
        ).run(dispatch)
        assert outcome.retries == 2
        assert outcome.backoff_wait == pytest.approx(0.2 + 0.4)
        assert clock.now >= 0.6  # the waits really elapsed

    def test_budget_exhaustion_fails_even_with_retries_left(self):
        clock = FakeClock()
        boom = RuntimeError("flaky")
        dispatch = ScriptedDispatch(
            clock,
            {(0, a): (lambda: Handle(FakeFuture(clock, error=boom))) for a in range(9)},
        )
        policy = BackoffPolicy(base=1.0, factor=2.0, jitter=0.0, budget=1.5)
        with pytest.raises(RetryExhaustedError, match="backoff budget"):
            make_supervisor(
                clock, shards=1, max_retries=8, backoff=policy
            ).run(dispatch)

    def test_budget_exhaustion_degrades_with_kind_budget(self):
        clock = FakeClock()
        boom = RuntimeError("flaky")
        dispatch = ScriptedDispatch(
            clock,
            {(0, a): (lambda: Handle(FakeFuture(clock, error=boom))) for a in range(9)},
        )
        policy = BackoffPolicy(base=1.0, factor=2.0, jitter=0.0, budget=1.5)
        outcome = make_supervisor(
            clock, shards=2, max_retries=8, backoff=policy, degradation="degrade"
        ).run(dispatch)
        assert outcome.lost[0].kind == "budget"
        assert set(outcome.winners) == {1}


# ----------------------------------------------------------------------
# Degradation
# ----------------------------------------------------------------------


class TestDegradation:
    def test_exhausted_shard_is_recorded_not_raised(self):
        clock = FakeClock()
        boom = RuntimeError("dead node")
        dispatch = ScriptedDispatch(
            clock,
            {(2, a): (lambda: Handle(FakeFuture(clock, error=boom))) for a in range(2)},
        )
        outcome = make_supervisor(
            clock, max_retries=1, degradation="degrade"
        ).run(dispatch)
        assert set(outcome.winners) == {0, 1}
        failure = outcome.lost[2]
        assert isinstance(failure, ShardFailure)
        assert failure.kind == "error" and failure.attempts == 2
        assert "dead node" in failure.error

    def test_losing_every_shard_still_raises(self):
        clock = FakeClock()
        dispatch = ScriptedDispatch(
            clock,
            {
                (s, a): (lambda: Handle(FakeFuture(clock, error=RuntimeError("x"))))
                for s in range(2)
                for a in range(1)
            },
        )
        with pytest.raises(RetryExhaustedError, match="nothing to degrade to"):
            make_supervisor(
                clock, shards=2, max_retries=0, degradation="degrade"
            ).run(dispatch)

    def test_degraded_metric_counted(self):
        clock = FakeClock()
        obs = Observer(clock)
        dispatch = ScriptedDispatch(
            clock,
            {(0, 0): lambda: Handle(FakeFuture(clock, error=RuntimeError("x")))},
        )
        make_supervisor(
            clock, shards=2, max_retries=0, degradation="degrade", observer=obs
        ).run(dispatch)
        assert obs.metrics.snapshot().counter_value("parallel.shard.degraded") == 1


# ----------------------------------------------------------------------
# Deadlines and heartbeats
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_stalled_dispatch_is_abandoned(self):
        clock = FakeClock()
        dispatch = ScriptedDispatch(
            clock,
            {(0, 0): lambda: Handle(FakeFuture(clock, never=True))},
        )
        outcome = make_supervisor(
            clock,
            shards=2,
            max_retries=1,
            deadline=0.05,
            poll_interval=0.01,
            degradation="degrade",
        ).run(dispatch)
        # The retry (attempt 1) is unscripted and succeeds.
        assert set(outcome.winners) == {0, 1}
        assert outcome.deadline_failures == 1
        assert outcome.retries == 1

    def test_deadline_retry_is_exclusive_after_taint(self):
        clock = FakeClock()
        dispatch = ScriptedDispatch(
            clock,
            {(0, 0): lambda: Handle(FakeFuture(clock, never=True))},
        )
        make_supervisor(
            clock, shards=1, max_retries=1, deadline=0.05, poll_interval=0.01
        ).run(dispatch)
        assert dispatch.calls == [(0, 0, False, False), (0, 1, False, True)]

    def test_heartbeat_progress_defers_the_deadline(self):
        clock = FakeClock()
        beats = {"n": 0}

        def progress():
            beats["n"] += 1  # the worker advances every poll: never idle
            return beats["n"]

        future = FakeFuture(clock, never=True)
        calls = {"n": 0}

        def dispatch(shard, attempt, resume, exclusive):
            calls["n"] += 1
            if calls["n"] == 1:
                return Handle(future, progress=progress)
            return Handle(FakeFuture(clock, result="late"))

        supervisor = make_supervisor(
            clock, shards=1, max_retries=0, deadline=0.05, poll_interval=0.02
        )

        # Flip the worker to "done" once the wall clock shows the deadline
        # alone would long since have fired without the heartbeat.
        original_result = future.result

        def result(timeout=None):
            if clock.now > 0.5:
                return "finally"
            return original_result(timeout)

        future.result = result
        future_done = future.done

        def done():
            return clock.now > 0.5 or future_done()

        future.done = done
        outcome = supervisor.run(dispatch)
        assert calls["n"] == 1  # never redispatched: heartbeats kept it alive
        assert outcome.deadline_failures == 0

    def test_exhausted_deadline_records_deadline_kind(self):
        clock = FakeClock()
        dispatch = ScriptedDispatch(
            clock,
            {
                (0, 0): lambda: Handle(FakeFuture(clock, never=True)),
                (0, 1): lambda: Handle(FakeFuture(clock, never=True)),
            },
        )
        outcome = make_supervisor(
            clock,
            shards=2,
            max_retries=1,
            deadline=0.05,
            poll_interval=0.01,
            degradation="degrade",
        ).run(dispatch)
        failure = outcome.lost[0]
        assert failure.kind == "deadline"
        assert "DeadlineExceededError" in failure.error

    def test_deadline_failure_raises_deadline_cause(self):
        clock = FakeClock()
        dispatch = ScriptedDispatch(
            clock,
            {(0, 0): lambda: Handle(FakeFuture(clock, never=True))},
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            make_supervisor(
                clock, shards=1, max_retries=0, deadline=0.05, poll_interval=0.01
            ).run(dispatch)
        assert isinstance(excinfo.value.__cause__, DeadlineExceededError)


# ----------------------------------------------------------------------
# Hedging
# ----------------------------------------------------------------------


class TestHedging:
    def test_straggler_gets_a_hedge_and_the_hedge_wins(self):
        clock = FakeClock()
        primary = FakeFuture(clock, never=True)
        dispatch = ScriptedDispatch(
            clock,
            {
                (0, 0): lambda: Handle(primary),
                (0, 1): lambda: Handle(FakeFuture(clock, result="hedge-win")),
            },
        )
        outcome = make_supervisor(
            clock, shards=1, hedge_after=0.05, poll_interval=0.01
        ).run(dispatch)
        assert outcome.hedges == 1
        assert outcome.retries == 0
        assert outcome.winners[0].future.result() == "hedge-win"
        assert primary.cancelled  # the loser was cancelled
        # The hedge dispatch is exclusive (private output slot), not a resume.
        assert dispatch.calls == [(0, 0, False, False), (0, 1, False, True)]

    def test_max_hedges_zero_disables_hedging(self):
        clock = FakeClock()
        state = {"calls": 0}

        def dispatch(shard, attempt, resume, exclusive):
            state["calls"] += 1
            future = FakeFuture(clock, never=True)
            original = future.result

            def result(timeout=None):
                if clock.now > 0.3:
                    return "slow-but-fine"
                return original(timeout)

            future.result = result
            done = future.done
            future.done = lambda: clock.now > 0.3 or done()
            return Handle(future)

        outcome = make_supervisor(
            clock, shards=1, hedge_after=0.05, max_hedges=0, poll_interval=0.01
        ).run(dispatch)
        assert state["calls"] == 1
        assert outcome.hedges == 0

    def test_failed_primary_promotes_the_hedge(self):
        clock = FakeClock()
        primary = FakeFuture(clock, never=True)
        original = primary.result
        # The primary fails (rather than completes) shortly after the
        # hedge launches; the hedge must absorb the shard without the
        # failure consuming a retry.
        primary.result = lambda timeout=None: (_ for _ in ()).throw(
            RuntimeError("primary died")
        ) if clock.now > 0.1 else original(timeout)
        done = primary.done
        primary.done = lambda: clock.now > 0.1 or done()

        hedge = FakeFuture(clock, never=True)
        hedge_original = hedge.result
        hedge.result = (
            lambda timeout=None: "rescued"
            if clock.now > 0.2
            else hedge_original(timeout)
        )
        hedge_done = hedge.done
        hedge.done = lambda: clock.now > 0.2 or hedge_done()

        dispatch = ScriptedDispatch(
            clock, {(0, 0): lambda: Handle(primary), (0, 1): lambda: Handle(hedge)}
        )
        outcome = make_supervisor(
            clock, shards=1, hedge_after=0.05, poll_interval=0.01
        ).run(dispatch)
        assert outcome.retries == 0
        assert outcome.winners[0].future.result() == "rescued"

    def test_hedge_metric_counted(self):
        clock = FakeClock()
        obs = Observer(clock)
        dispatch = ScriptedDispatch(
            clock,
            {
                (0, 0): lambda: Handle(FakeFuture(clock, never=True)),
                (0, 1): lambda: Handle(FakeFuture(clock, result="ok")),
            },
        )
        make_supervisor(
            clock, shards=1, hedge_after=0.02, poll_interval=0.01, observer=obs
        ).run(dispatch)
        assert obs.metrics.snapshot().counter_value("parallel.shard.hedges") == 1


# ----------------------------------------------------------------------
# Validation and widened-variance helpers
# ----------------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"max_retries": -1},
            {"deadline": 0.0},
            {"hedge_after": -1.0},
            {"max_hedges": -1},
            {"degradation": "explode"},
            {"poll_interval": 0.0},
        ],
    )
    def test_constructor_rejects(self, kwargs):
        shards = kwargs.pop("shards", 2)
        with pytest.raises(ConfigurationError):
            ShardSupervisor(shards, **kwargs)


class TestWidenedVariance:
    def test_no_loss_no_shedding_is_free(self):
        assert widened_self_join_variance(100.0, survived_fraction=1.0) == 0.0
        assert (
            widened_join_variance(100.0, survived_fraction=1.0) == 0.0
        )

    def test_more_loss_more_variance(self):
        qs = [1.0, 0.75, 0.5, 0.25]
        variances = [
            widened_self_join_variance(1000.0, survived_fraction=q) for q in qs
        ]
        assert variances == sorted(variances)
        joins = [
            widened_join_variance(1000.0, survived_fraction=q) for q in qs
        ]
        assert joins == sorted(joins)

    def test_shedding_term_appears_below_p_one(self):
        full = widened_self_join_variance(
            1000.0, survived_fraction=0.5, probability=0.5, population=100.0
        )
        lossless = widened_self_join_variance(1000.0, survived_fraction=0.5)
        assert full > lossless

    @pytest.mark.parametrize("q", [0.0, -0.5, 1.5])
    def test_fraction_validation(self, q):
        with pytest.raises(ConfigurationError):
            widened_self_join_variance(10.0, survived_fraction=q)
        with pytest.raises(ConfigurationError):
            widened_join_variance(10.0, survived_fraction=q)
