"""Bad-record policies and retrying readers at the stream boundary."""

import numpy as np
import pytest

from repro.errors import (
    BadRecordError,
    ConfigurationError,
    RetryExhaustedError,
)
from repro.resilience.distributed import BackoffPolicy
from repro.resilience.hardening import InputHardener, retrying_read_stream
from repro.streams.io import read_stream, write_stream


DIRTY = np.array([3.0, np.nan, 7.5, np.inf, -1.0, 12.0, 5000.0, 0.0])


def test_fail_policy_raises_typed_error():
    hardener = InputHardener(1000, policy="fail")
    with pytest.raises(BadRecordError, match="non_finite"):
        hardener.sanitize(DIRTY)


def test_clean_integer_chunks_pass_through():
    hardener = InputHardener(1000, policy="fail")
    chunk = np.array([0, 5, 999], dtype=np.int32)
    out = hardener.sanitize(chunk)
    assert out.dtype == np.int64
    assert out.tolist() == [0, 5, 999]
    assert hardener.bad_records == 0


def test_skip_and_count_keeps_clean_records_in_order():
    hardener = InputHardener(1000, policy="skip_and_count")
    out = hardener.sanitize(DIRTY)
    assert out.tolist() == [3, 12, 0]
    assert hardener.bad_by_reason == {
        "wrong_dtype": 0,
        "non_finite": 2,
        "non_integer": 1,
        "out_of_domain": 2,
    }
    assert hardener.bad_records == 5


def test_wrong_dtype_records_are_parsed_or_counted():
    hardener = InputHardener(1000, policy="skip_and_count")
    out = hardener.sanitize(np.array(["17", "oops", "3.5", "900"], dtype=object))
    assert out.tolist() == [17, 900]
    assert hardener.bad_by_reason["wrong_dtype"] == 1
    assert hardener.bad_by_reason["non_integer"] == 1


def test_out_of_domain_integers_are_caught():
    hardener = InputHardener(100, policy="skip_and_count")
    out = hardener.sanitize(np.array([-5, 0, 99, 100, 7], dtype=np.int64))
    assert out.tolist() == [0, 99, 7]
    assert hardener.bad_by_reason["out_of_domain"] == 2


def test_quarantine_writes_side_file(tmp_path):
    side = tmp_path / "quarantine.tsv"
    hardener = InputHardener(1000, policy="quarantine", quarantine_path=side)
    hardener.sanitize(DIRTY)
    lines = side.read_text().splitlines()
    assert len(lines) == 5
    reasons = [line.split("\t")[0] for line in lines]
    assert reasons == [
        "non_finite",
        "non_integer",
        "non_finite",
        "out_of_domain",
        "out_of_domain",
    ]


def test_policy_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        InputHardener(1000, policy="explode")
    with pytest.raises(ConfigurationError):
        InputHardener(1000, policy="quarantine")  # no side file
    with pytest.raises(ConfigurationError):
        InputHardener(0)
    hardener = InputHardener(10, policy="fail")
    with pytest.raises(ConfigurationError):
        hardener.sanitize(np.zeros((2, 2)))


# ----------------------------------------------------------------------
# Retrying reader
# ----------------------------------------------------------------------


@pytest.fixture
def stream_file(tmp_path):
    keys = np.arange(1000, dtype=np.int64) % 37
    path = tmp_path / "keys.rprs"
    write_stream(path, [keys], 37)
    return path, keys


def test_reader_without_faults_matches_plain_read(stream_file):
    path, keys = stream_file
    chunks = list(retrying_read_stream(path, 128))
    plain = list(read_stream(path, 128))
    assert len(chunks) == len(plain)
    for a, b in zip(chunks, plain):
        assert np.array_equal(a, b)


def test_reader_resumes_after_transient_failures(stream_file, monkeypatch):
    path, keys = stream_file
    fail_at = {3, 5}  # chunk indices that die once each

    real_read_stream = read_stream
    delivered = {"count": 0}

    def flaky(path_, chunk_size, *, start=0):
        for chunk in real_read_stream(path_, chunk_size, start=start):
            index = delivered["count"]
            if index in fail_at:
                fail_at.discard(index)
                raise OSError("transient I/O hiccup")
            delivered["count"] += 1
            yield chunk

    monkeypatch.setattr(
        "repro.resilience.hardening.read_stream", flaky
    )
    naps = []
    chunks = list(
        retrying_read_stream(path, 128, retries=3, sleep=naps.append)
    )
    assert np.array_equal(np.concatenate(chunks), keys)
    assert len(naps) == 2  # one backoff per transient failure
    assert naps == [0.05, 0.05]  # counter resets after progress


def test_reader_exhausts_retries(stream_file, monkeypatch):
    path, _ = stream_file

    def always_broken(path_, chunk_size, *, start=0):
        raise OSError("disk on fire")
        yield  # pragma: no cover

    monkeypatch.setattr(
        "repro.resilience.hardening.read_stream", always_broken
    )
    naps = []
    with pytest.raises(RetryExhaustedError) as excinfo:
        list(retrying_read_stream(path, 128, retries=2, sleep=naps.append))
    assert isinstance(excinfo.value.__cause__, OSError)
    assert naps == [0.05, 0.1]  # exponential backoff before giving up


def test_reader_validates_parameters(stream_file):
    path, _ = stream_file
    with pytest.raises(ConfigurationError):
        list(retrying_read_stream(path, retries=-1))


# ----------------------------------------------------------------------
# Retrying reader on the shared BackoffPolicy
# ----------------------------------------------------------------------


def _always_broken(path_, chunk_size, *, start=0):
    raise OSError("disk on fire")
    yield  # pragma: no cover


def test_reader_pins_the_seeded_jittered_schedule(stream_file, monkeypatch):
    """Regression pin: the exact delays for one fixed policy seed.

    If these numbers move, either the policy's delay formula or the rng
    stream changed — both are reproducibility breaks, not refactors.
    """
    path, _ = stream_file
    monkeypatch.setattr(
        "repro.resilience.hardening.read_stream", _always_broken
    )
    policy = BackoffPolicy(base=0.05, factor=2.0, cap=5.0, jitter=0.5, seed=123)
    naps = []
    with pytest.raises(RetryExhaustedError):
        list(
            retrying_read_stream(
                path, 128, retries=4, backoff=policy, sleep=naps.append
            )
        )
    assert naps == pytest.approx(
        [0.032941203419, 0.09730894906, 0.177964012723, 0.36312563786]
    )
    # Deterministic: the same policy replays the same schedule.
    again = []
    with pytest.raises(RetryExhaustedError):
        list(
            retrying_read_stream(
                path, 128, retries=4, backoff=policy, sleep=again.append
            )
        )
    assert again == naps


def test_legacy_float_backoff_matches_policy_form(stream_file, monkeypatch):
    """``backoff=0.05`` and the equivalent policy sleep identically."""
    path, _ = stream_file
    monkeypatch.setattr(
        "repro.resilience.hardening.read_stream", _always_broken
    )

    def naps_for(backoff):
        naps = []
        with pytest.raises(RetryExhaustedError):
            list(
                retrying_read_stream(
                    path, 128, retries=3, backoff=backoff, sleep=naps.append
                )
            )
        return naps

    legacy = naps_for(0.05)
    policy = naps_for(
        BackoffPolicy(base=0.05, factor=2.0, cap=float("inf"), jitter=0.0)
    )
    assert legacy == policy == [0.05, 0.1, 0.2]


def test_reader_backoff_budget_exhausts_into_typed_error(
    stream_file, monkeypatch
):
    path, _ = stream_file
    monkeypatch.setattr(
        "repro.resilience.hardening.read_stream", _always_broken
    )
    policy = BackoffPolicy(base=0.1, factor=2.0, jitter=0.0, budget=0.25)
    naps = []
    with pytest.raises(RetryExhaustedError, match="backoff budget") as excinfo:
        list(
            retrying_read_stream(
                path, 128, retries=10, backoff=policy, sleep=naps.append
            )
        )
    assert isinstance(excinfo.value.__cause__, OSError)
    assert naps == [0.1]  # 0.2 more would burst the 0.25s budget


def test_reader_rejects_negative_float_backoff(stream_file):
    path, _ = stream_file
    with pytest.raises(ConfigurationError):
        list(retrying_read_stream(path, backoff=-0.5))
