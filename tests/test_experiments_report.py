"""FigureResult and table formatting."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import FigureResult, format_table


def test_format_table_alignment():
    table = format_table(
        ("x", "value"), [(1, 0.5), (10, 0.25)], title="demo"
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "x" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_format_table_handles_extreme_floats():
    table = format_table(("v",), [(1e-9,), (1e9,), (0.0,)])
    assert "e-09" in table
    assert "e+09" in table


def test_format_table_validation():
    with pytest.raises(ConfigurationError):
        format_table((), [])
    with pytest.raises(ConfigurationError):
        format_table(("a", "b"), [(1,)])


def test_format_table_empty_rows():
    table = format_table(("a", "b"), [])
    assert "a" in table and "b" in table


@pytest.fixture
def result():
    return FigureResult(
        figure="Fig X",
        title="demo figure",
        columns=("x", "series", "value"),
        rows=((1, "a", 0.5), (2, "a", 0.25), (1, "b", 0.7)),
        notes="a note",
        parameters={"trials": 3},
    )


def test_figure_result_format(result):
    text = result.format()
    assert "[Fig X] demo figure" in text
    assert "trials=3" in text
    assert "a note" in text


def test_figure_result_series(result):
    assert result.series("a") == [(1, "a", 0.5), (2, "a", 0.25)]
    assert result.series("missing") == []


def test_figure_result_column(result):
    assert result.column("value") == [0.5, 0.25, 0.7]
    with pytest.raises(ConfigurationError):
        result.column("nope")
