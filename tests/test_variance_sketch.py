"""AGMS variance closed forms (Props 7–8) and averaging."""

import pytest

from repro.errors import ConfigurationError
from repro.frequency import FrequencyVector
from repro.variance.sketch import (
    agms_join_variance,
    agms_self_join_variance,
    averaged_agms_join_variance,
    averaged_agms_self_join_variance,
)


def test_join_variance_formula(small_f, small_g):
    f2 = small_f.f2
    g2 = small_g.f2
    join = small_f.join_size(small_g)
    f2g2 = small_f.cross_power_sum(small_g, 2, 2)
    assert agms_join_variance(small_f, small_g) == f2 * g2 + join**2 - 2 * f2g2


def test_self_join_variance_formula(small_f):
    assert agms_self_join_variance(small_f) == 2 * (small_f.f2 ** 2 - small_f.f4)


def test_self_join_variance_zero_for_single_value():
    """One distinct value: S² = f² exactly, variance 0."""
    fv = FrequencyVector([0, 7, 0])
    assert agms_self_join_variance(fv) == 0


def test_join_variance_zero_for_single_shared_value():
    f = FrequencyVector([3, 0])
    g = FrequencyVector([5, 0])
    assert agms_join_variance(f, g) == 0


def test_variance_non_negative(zipf_f, zipf_g):
    assert agms_join_variance(zipf_f, zipf_g) >= 0
    assert agms_self_join_variance(zipf_f) >= 0


def test_averaging_divides_by_n(small_f, small_g):
    base = agms_join_variance(small_f, small_g)
    assert averaged_agms_join_variance(small_f, small_g, 4) == pytest.approx(base / 4)
    base2 = agms_self_join_variance(small_f)
    assert averaged_agms_self_join_variance(small_f, 10) == pytest.approx(base2 / 10)


def test_averaging_rejects_bad_n(small_f, small_g):
    with pytest.raises(ConfigurationError):
        averaged_agms_join_variance(small_f, small_g, 0)
    with pytest.raises(ConfigurationError):
        averaged_agms_self_join_variance(small_f, -1)


def test_exactness_no_overflow():
    big = 2**33
    fv = FrequencyVector([big, big, big])
    expected = 2 * ((3 * big**2) ** 2 - 3 * big**4)
    assert agms_self_join_variance(fv) == expected
