"""End-to-end statistical unbiasedness of every estimator pipeline.

These tests run the *real* pipeline — tuple/frequency sampling, real F-AGMS
sketches, the shipped corrections — many times and check that the mean
estimate converges to the exact aggregate within Monte-Carlo tolerance.
They complement the exact-expectation tests (which prove unbiasedness
analytically) by exercising the actual code paths end to end.
"""

import numpy as np
import pytest

from repro.core import estimate_join_size, estimate_self_join_size, sketch_over_sample
from repro.sampling import (
    BernoulliSampler,
    WithReplacementSampler,
    WithoutReplacementSampler,
)
from repro.sketches import FagmsSketch
from repro.streams.synthetic import zipf_frequency_vector

pytestmark = pytest.mark.statistical

F = zipf_frequency_vector(5_000, 400, 1.0, seed=70, shuffle_values=False)
G = zipf_frequency_vector(5_000, 400, 1.0, seed=71, shuffle_values=False)

SAMPLERS = [
    BernoulliSampler(0.3),
    WithReplacementSampler(fraction=0.3),
    WithoutReplacementSampler(fraction=0.3),
]

TRIALS = 150
BUCKETS = 256


def _mean_within_tolerance(estimates, truth):
    estimates = np.asarray(estimates)
    standard_error = estimates.std(ddof=1) / np.sqrt(estimates.size)
    assert abs(estimates.mean() - truth) < 5 * max(standard_error, 1e-9), (
        f"mean {estimates.mean():.1f} vs truth {truth} "
        f"(5·SE = {5 * standard_error:.1f})"
    )


@pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.scheme)
def test_self_join_pipeline_unbiased(sampler):
    truth = F.self_join_size()
    estimates = []
    for seed in range(TRIALS):
        sketch = FagmsSketch(BUCKETS, seed=10_000 + seed)
        info = sketch_over_sample(F, sampler, sketch, seed=seed)
        estimates.append(estimate_self_join_size(sketch, info).value)
    _mean_within_tolerance(estimates, truth)


@pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.scheme)
def test_join_pipeline_unbiased(sampler):
    truth = F.join_size(G)
    estimates = []
    for seed in range(TRIALS):
        sketch_f = FagmsSketch(BUCKETS, seed=20_000 + seed)
        sketch_g = sketch_f.copy_empty()
        info_f = sketch_over_sample(F, sampler, sketch_f, seed=2 * seed)
        info_g = sketch_over_sample(G, sampler, sketch_g, seed=2 * seed + 1)
        estimates.append(
            estimate_join_size(sketch_f, info_f, sketch_g, info_g).value
        )
    _mean_within_tolerance(estimates, truth)


def test_mixed_scheme_join_unbiased():
    """Bernoulli-sampled F joined with WOR-sampled G."""
    truth = F.join_size(G)
    estimates = []
    for seed in range(TRIALS):
        sketch_f = FagmsSketch(BUCKETS, seed=30_000 + seed)
        sketch_g = sketch_f.copy_empty()
        info_f = sketch_over_sample(F, BernoulliSampler(0.4), sketch_f, seed=3 * seed)
        info_g = sketch_over_sample(
            G, WithoutReplacementSampler(fraction=0.25), sketch_g, seed=3 * seed + 1
        )
        estimates.append(
            estimate_join_size(sketch_f, info_f, sketch_g, info_g).value
        )
    _mean_within_tolerance(estimates, truth)


def test_item_path_pipeline_unbiased():
    """Tuple-domain sampling (the streaming path) is unbiased too."""
    from repro.streams import Relation

    relation = Relation.from_frequency_vector(F, shuffle=True, seed=1)
    truth = F.self_join_size()
    estimates = []
    for seed in range(TRIALS):
        sketch = FagmsSketch(BUCKETS, seed=40_000 + seed)
        info = sketch_over_sample(
            relation, BernoulliSampler(0.3), sketch, seed=seed, path="items"
        )
        estimates.append(estimate_self_join_size(sketch, info).value)
    _mean_within_tolerance(estimates, truth)
