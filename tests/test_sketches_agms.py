"""AGMS sketch: exactness of counters, unbiasedness, variance, merging."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.frequency import FrequencyVector
from repro.sketches import AgmsSketch, join_size, self_join_size
from repro.variance.sketch import agms_join_variance, agms_self_join_variance


def test_counter_matches_definition():
    """S = Σᵢ fᵢ ξᵢ exactly (Eq. 12)."""
    sketch = AgmsSketch(rows=5, seed=3)
    keys = np.array([1, 4, 4, 2, 1, 1])
    sketch.update(keys)
    signs = sketch._signs(np.arange(5))
    fv = FrequencyVector.from_items(keys, 5)
    expected = signs.astype(np.float64) @ fv.counts.astype(np.float64)
    assert np.allclose(sketch.counters, expected)


def test_update_frequency_vector_equals_item_updates():
    fv = FrequencyVector([2, 0, 3, 1])
    a = AgmsSketch(rows=7, seed=11)
    b = a.copy_empty()
    a.update(fv.to_items())
    b.update_frequency_vector(fv)
    assert np.allclose(a.counters, b.counters)


def test_weighted_update_and_deletion():
    sketch = AgmsSketch(rows=4, seed=2)
    sketch.update(np.array([0, 1]), np.array([2.0, 5.0]))
    sketch.update(np.array([0, 1]), np.array([-2.0, -5.0]))
    assert np.allclose(sketch.counters, 0.0)


def test_update_one():
    a = AgmsSketch(rows=3, seed=6)
    b = a.copy_empty()
    a.update_one(2)
    a.update_one(2)
    b.update(np.array([2, 2]))
    assert np.allclose(a.counters, b.counters)


def test_merge_is_linear():
    fv1 = FrequencyVector([1, 2, 0, 1])
    fv2 = FrequencyVector([0, 1, 3, 2])
    a = AgmsSketch(rows=6, seed=4)
    b = a.copy_empty()
    combined = a.copy_empty()
    a.update_frequency_vector(fv1)
    b.update_frequency_vector(fv2)
    combined.update_frequency_vector(fv1 + fv2)
    a.merge(b)
    assert np.allclose(a.counters, combined.counters)


def test_merge_requires_same_seed():
    a = AgmsSketch(rows=3, seed=1)
    b = AgmsSketch(rows=3, seed=2)
    with pytest.raises(IncompatibleSketchError):
        a.merge(b)


def test_inner_product_requires_same_shape():
    a = AgmsSketch(rows=3, seed=1)
    b = AgmsSketch(rows=4, seed=1)
    with pytest.raises(IncompatibleSketchError):
        a.row_inner_products(b)


def test_copy_and_clear():
    sketch = AgmsSketch(rows=3, seed=5)
    sketch.update(np.array([1, 1, 0]))
    clone = sketch.copy()
    assert np.allclose(clone.counters, sketch.counters)
    clone.clear()
    assert np.allclose(clone.counters, 0.0)
    assert not np.allclose(sketch.counters, 0.0)


@pytest.mark.statistical
def test_self_join_unbiased_and_variance(small_f):
    """Prop 8: E[S²] = F₂ and Var[S²] = 2(F₂² − F₄) over ξ draws."""
    trials = 3000
    estimates = np.empty(trials)
    for t in range(trials):
        sketch = AgmsSketch(rows=1, seed=1000 + t)
        sketch.update_frequency_vector(small_f)
        estimates[t] = sketch.second_moment()
    truth = small_f.f2
    theoretical_var = agms_self_join_variance(small_f)
    standard_error = np.sqrt(theoretical_var / trials)
    assert abs(estimates.mean() - truth) < 5 * standard_error
    assert estimates.var() == pytest.approx(theoretical_var, rel=0.25)


@pytest.mark.statistical
def test_join_unbiased_and_variance(small_f, small_g):
    """Prop 7: E[S·T] = Σfᵢgᵢ and Eq. 14 variance over ξ draws."""
    trials = 3000
    estimates = np.empty(trials)
    for t in range(trials):
        sketch_f = AgmsSketch(rows=1, seed=5000 + t)
        sketch_g = sketch_f.copy_empty()
        sketch_f.update_frequency_vector(small_f)
        sketch_g.update_frequency_vector(small_g)
        estimates[t] = join_size(sketch_f, sketch_g)
    truth = small_f.join_size(small_g)
    theoretical_var = agms_join_variance(small_f, small_g)
    standard_error = np.sqrt(theoretical_var / trials)
    assert abs(estimates.mean() - truth) < 5 * standard_error
    assert estimates.var() == pytest.approx(theoretical_var, rel=0.25)


def test_averaging_reduces_spread(zipf_f):
    truth = zipf_f.f2
    few = [
        _estimate_f2(zipf_f, rows=2, seed=s) for s in range(40)
    ]
    many = [
        _estimate_f2(zipf_f, rows=64, seed=s) for s in range(40)
    ]
    err_few = np.mean([abs(e - truth) / truth for e in few])
    err_many = np.mean([abs(e - truth) / truth for e in many])
    assert err_many < err_few


def _estimate_f2(fv, rows, seed):
    sketch = AgmsSketch(rows=rows, seed=seed)
    sketch.update_frequency_vector(fv)
    return self_join_size(sketch)


def test_median_of_means_configuration():
    sketch = AgmsSketch(rows=12, seed=1, combine="median-of-means", groups=3)
    sketch.update(np.array([0, 0, 1]))
    assert sketch.second_moment() >= 0
    with pytest.raises(ConfigurationError):
        AgmsSketch(rows=10, combine="median-of-means", groups=3)
    with pytest.raises(ConfigurationError):
        AgmsSketch(rows=10, combine="mean", groups=2)
    with pytest.raises(ConfigurationError):
        AgmsSketch(rows=10, combine="bogus")


def test_eh3_sign_family_variant_works():
    fv = FrequencyVector([3, 1, 0, 2])
    sketch = AgmsSketch(rows=200, seed=8, sign_family="eh3")
    sketch.update_frequency_vector(fv)
    assert sketch.second_moment() == pytest.approx(fv.f2, rel=0.8)
    with pytest.raises(ConfigurationError):
        AgmsSketch(rows=2, sign_family="nope")


def test_empty_update_is_noop():
    sketch = AgmsSketch(rows=3, seed=1)
    sketch.update(np.array([], dtype=np.int64))
    assert np.allclose(sketch.counters, 0.0)
