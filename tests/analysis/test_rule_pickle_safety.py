"""REP007 — pickle-safety across process seams."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_sources

POOL_PREAMBLE = """
from concurrent.futures import ProcessPoolExecutor

def work(x):
    return x
"""


class TestSeamDetection:
    def test_lambda_to_submit(self, run_rule):
        findings = run_rule(
            POOL_PREAMBLE
            + """
def go(keys):
    with ProcessPoolExecutor(2) as pool:
        pool.submit(lambda k: k, keys)
""",
            "REP007",
        )
        assert len(findings) == 1
        assert "a lambda" in findings[0].message

    def test_worker_pool_receiver(self, run_rule):
        findings = run_rule(
            """
from repro.parallel.pool import WorkerPool

def go(keys):
    pool = WorkerPool(2)
    pool.map(lambda k: k, keys)
""",
            "REP007",
        )
        assert len(findings) == 1

    def test_lock_binding_flows_to_seam(self, run_rule):
        findings = run_rule(
            POOL_PREAMBLE
            + """
import threading

def go(keys):
    lock = threading.Lock()
    with ProcessPoolExecutor(2) as pool:
        pool.submit(work, lock)
""",
            "REP007",
        )
        assert len(findings) == 1
        assert "threading lock" in findings[0].message

    def test_open_file_handle_from_with(self, run_rule):
        findings = run_rule(
            POOL_PREAMBLE
            + """
def go(keys):
    with open("data.bin") as handle:
        with ProcessPoolExecutor(2) as pool:
            pool.submit(work, handle)
""",
            "REP007",
        )
        assert len(findings) == 1
        assert "open file handle" in findings[0].message

    def test_nested_function_is_a_closure(self, run_rule):
        findings = run_rule(
            POOL_PREAMBLE
            + """
def go(keys):
    def shard_fn(part):
        return part
    with ProcessPoolExecutor(2) as pool:
        pool.submit(shard_fn, keys)
""",
            "REP007",
        )
        assert len(findings) == 1
        assert "closure" in findings[0].message

    def test_generator_function_flagged(self, run_rule):
        findings = run_rule(
            POOL_PREAMBLE
            + """
def produce():
    yield 1

def go(keys):
    with ProcessPoolExecutor(2) as pool:
        pool.map(produce, [keys])
""",
            "REP007",
        )
        assert len(findings) == 1
        assert "generator function" in findings[0].message


class TestPlainDataPasses:
    def test_module_function_and_plain_args_pass(self, run_rule):
        findings = run_rule(
            POOL_PREAMBLE
            + """
def go(keys):
    with ProcessPoolExecutor(2) as pool:
        pool.submit(work, keys, 3, "label")
""",
            "REP007",
        )
        assert findings == []

    def test_unknown_expressions_are_not_flagged(self, run_rule):
        # The rule only reports *provable* violations.
        findings = run_rule(
            POOL_PREAMBLE
            + """
def go(tasks):
    with ProcessPoolExecutor(2) as pool:
        for task in tasks:
            pool.submit(work, task)
""",
            "REP007",
        )
        assert findings == []

    def test_non_pool_submit_ignored(self, run_rule):
        findings = run_rule(
            """
def go(queue):
    queue.submit(lambda: 1)
""",
            "REP007",
        )
        assert findings == []


class TestCrossModule:
    def test_dataclass_field_poisons_instance_across_modules(self):
        result = analyze_sources(
            {
                "src/repro/tasks.py": textwrap.dedent(
                    """
                    from dataclasses import dataclass
                    from typing import Callable

                    @dataclass
                    class Step:
                        fn: Callable
                    """
                ),
                "src/repro/driver.py": textwrap.dedent(
                    """
                    from concurrent.futures import ProcessPoolExecutor
                    from .tasks import Step

                    def go(keys):
                        step = Step(fn=len)
                        with ProcessPoolExecutor(2) as pool:
                            pool.submit(max, step)
                    """
                ),
            },
            select={"REP007"},
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.path == "src/repro/driver.py"
        assert "Step" in finding.message and "a callable" in finding.message

    def test_plain_dataclass_instance_passes(self):
        result = analyze_sources(
            {
                "src/repro/tasks.py": textwrap.dedent(
                    """
                    from dataclasses import dataclass

                    @dataclass
                    class Step:
                        index: int
                        name: str
                    """
                ),
                "src/repro/driver.py": textwrap.dedent(
                    """
                    from concurrent.futures import ProcessPoolExecutor
                    from .tasks import Step

                    def go(keys):
                        with ProcessPoolExecutor(2) as pool:
                            pool.submit(max, Step(index=0, name="a"))
                    """
                ),
            },
            select={"REP007"},
        )
        assert result.findings == []

    def test_seam_task_field_annotations_checked(self):
        # Declaring an unpicklable field *on the seam task type itself*
        # is flagged at every construction site.
        result = analyze_sources(
            {
                "src/repro/parallel/worker.py": textwrap.dedent(
                    """
                    from dataclasses import dataclass
                    from typing import Callable

                    @dataclass(frozen=True)
                    class ShardTask:
                        index: int
                        reduce: Callable
                    """
                ),
                "src/repro/parallel/coordinator.py": textwrap.dedent(
                    """
                    from .worker import ShardTask

                    def make(index):
                        return ShardTask(index=index, reduce=sum)
                    """
                ),
            },
            select={"REP007"},
        )
        assert len(result.findings) == 1
        assert "'reduce'" in result.findings[0].message
