"""REP006 fixtures: metric/span names must be static dotted literals."""

from __future__ import annotations


class TestRep006Triggers:
    def test_fstring_counter_name_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs, relation):
                obs.counter(f"engine.rows.{relation}").inc()
            """,
            "REP006",
        )
        assert len(findings) == 1
        assert "f-string" in findings[0].message

    def test_concatenated_span_name_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs, stage):
                with obs.span("scan." + stage):
                    pass
            """,
            "REP006",
        )
        assert len(findings) == 1

    def test_percent_formatted_gauge_name_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs, shard):
                obs.gauge("shard.%d.rate" % shard).set(1.0)
            """,
            "REP006",
        )
        assert len(findings) == 1

    def test_str_format_histogram_name_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs, op):
                obs.histogram("kernels.{}.seconds".format(op)).observe(0.1)
            """,
            "REP006",
        )
        assert len(findings) == 1

    def test_uppercase_literal_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs):
                obs.counter("Engine.Rows").inc()
            """,
            "REP006",
        )
        assert len(findings) == 1
        assert "lowercase dotted" in findings[0].message

    def test_single_segment_literal_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs):
                obs.counter("rows").inc()
            """,
            "REP006",
        )
        assert len(findings) == 1

    def test_keyword_name_argument_is_inspected(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs, op):
                obs.counter(name=f"kernels.{op}").inc()
            """,
            "REP006",
        )
        assert len(findings) == 1


class TestRep006Passes:
    def test_static_dotted_literal_with_labels_is_clean(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs, relation):
                obs.counter("engine.rows.consumed", relation=relation).inc()
                obs.gauge("engine.fraction_scanned", relation=relation).set(0.5)
                obs.histogram("scan.checkpoint.seconds").observe(0.01)
                with obs.span("scan.chunk", relation=relation):
                    pass
            """,
            "REP006",
        )
        assert findings == []

    def test_plain_variable_name_is_left_to_runtime_validation(self, run_rule):
        findings = run_rule(
            """
            def instrument(obs, name):
                obs.counter(name).inc()
            """,
            "REP006",
        )
        assert findings == []

    def test_unrelated_methods_are_ignored(self, run_rule):
        findings = run_rule(
            """
            def report(formatter, stage):
                formatter.render(f"stage {stage}")
                return "a" + "b"
            """,
            "REP006",
        )
        assert findings == []

    def test_tests_are_exempt_by_default(self, run_rule):
        findings = run_rule(
            """
            def test_validator_rejects_bad_names(obs):
                obs.counter("NOT VALID")
            """,
            "REP006",
            rel_path="tests/test_names.py",
        )
        assert findings == []
