"""REP010 — checkpoint save/restore key sets must stay symmetric."""

from __future__ import annotations


class TestDriftFires:
    def test_written_never_read(self, run_rule):
        findings = run_rule(
            """
            class Runtime:
                def checkpoint_state(self):
                    return {"seen": 1, "orphan": 2}

                @classmethod
                def from_checkpoint_state(cls, payload):
                    return cls(payload["seen"])
            """,
            "REP010",
        )
        assert len(findings) == 1
        assert "'orphan'" in findings[0].message

    def test_read_never_written(self, run_rule):
        findings = run_rule(
            """
            class Runtime:
                def checkpoint_state(self):
                    return {"seen": 1}

                @classmethod
                def from_checkpoint_state(cls, payload):
                    return cls(payload["seen"], payload["phantom"])
            """,
            "REP010",
        )
        assert len(findings) == 1
        assert "'phantom'" in findings[0].message

    def test_subscript_store_counts_as_write(self, run_rule):
        findings = run_rule(
            """
            class Manager:
                def save(self, payload):
                    payload["extra"] = 1
                    payload["kept"] = 2
                    return payload

                def load(self, payload):
                    return payload["kept"]
            """,
            "REP010",
        )
        assert len(findings) == 1
        assert "'extra'" in findings[0].message


class TestSymmetryPasses:
    def test_symmetric_schema(self, run_rule):
        findings = run_rule(
            """
            class Runtime:
                def checkpoint_state(self):
                    return {"seen": 1, "kept": 2}

                @classmethod
                def from_checkpoint_state(cls, payload):
                    return cls(payload["seen"], payload.get("kept", 0))
            """,
            "REP010",
        )
        assert findings == []

    def test_membership_and_pop_count_as_reads(self, run_rule):
        findings = run_rule(
            """
            class Runtime:
                def checkpoint_state(self):
                    return {"seen": 1, "legacy": 2}

                @classmethod
                def from_checkpoint_state(cls, payload):
                    if "legacy" in payload:
                        payload.pop("legacy")
                    return cls(payload["seen"])
            """,
            "REP010",
        )
        assert findings == []

    def test_save_only_class_skipped(self, run_rule):
        findings = run_rule(
            """
            class Exporter:
                def snapshot(self):
                    return {"rows": 1}
            """,
            "REP010",
        )
        assert findings == []

    def test_dynamic_schema_skipped(self, run_rule):
        # No literal keys on the save side: nothing provable.
        findings = run_rule(
            """
            class Runtime:
                def checkpoint_state(self):
                    return dict(self._fields)

                @classmethod
                def from_checkpoint_state(cls, payload):
                    return cls(payload["seen"])
            """,
            "REP010",
        )
        assert findings == []

    def test_from_prefixed_method_is_restore_side(self, run_rule):
        # ``from_checkpoint_state`` contains save-side tokens too; the
        # restore classification must win.
        findings = run_rule(
            """
            class Runtime:
                def checkpoint_state(self):
                    return {"seen": 1}

                @classmethod
                def from_checkpoint_state(cls, payload):
                    return cls(payload["seen"])
            """,
            "REP010",
        )
        assert findings == []
