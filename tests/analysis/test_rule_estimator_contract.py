"""REP005 fixtures: the Sketch interface and check_compatible discipline."""

from __future__ import annotations

SKETCH_PATH = "src/repro/sketches/snippet.py"

# Indented to sit inside the 12-space-indented snippet strings below (so
# textwrap.dedent in the run_rule fixture leaves it one class-body level in).
FULL_INTERFACE = '''
                def update(self, keys, weights=None):
                    """Insert."""

                def second_moment(self):
                    """F2 estimate."""
                    return 0.0

                def copy_empty(self):
                    """Fresh clone."""
                    return type(self)()

                def _state(self):
                    return self._counters
'''


class TestRep005Triggers:
    def test_missing_interface_methods_are_flagged(self, run_rule):
        findings = run_rule(
            '''
            from .base import Sketch


            class HalfSketch(Sketch):
                """Implements almost nothing."""

                def update(self, keys, weights=None):
                    """Insert."""
            ''',
            "REP005",
            rel_path=SKETCH_PATH,
        )
        missing = {f.message.split("'")[3] for f in findings}
        assert missing == {"second_moment", "inner_product", "copy_empty", "_state"}

    def test_inner_product_without_check_compatible_is_flagged(self, run_rule):
        findings = run_rule(
            f'''
            from .base import Sketch


            class RudeSketch(Sketch):
                """Skips the compatibility check."""
            {FULL_INTERFACE}
                def inner_product(self, other):
                    """Estimate without checking seeds — bug."""
                    return float((self._counters * other._counters).sum())
            ''',
            "REP005",
            rel_path=SKETCH_PATH,
        )
        assert len(findings) == 1
        assert "check_compatible" in findings[0].message

    def test_merge_override_without_check_is_flagged(self, run_rule):
        findings = run_rule(
            f'''
            from .base import Sketch


            class SloppySketch(Sketch):
                """Overrides merge without re-checking."""
            {FULL_INTERFACE}
                def inner_product(self, other):
                    """Checked path."""
                    self.check_compatible(other)
                    return 0.0

                def merge(self, other):
                    """Unchecked merge — bug."""
                    self._counters += other._counters
            ''',
            "REP005",
            rel_path=SKETCH_PATH,
        )
        assert len(findings) == 1
        assert "merge" in findings[0].message


class TestRep005Passes:
    def test_direct_check_is_clean(self, run_rule):
        findings = run_rule(
            f'''
            from .base import Sketch


            class PoliteSketch(Sketch):
                """Checks before estimating."""
            {FULL_INTERFACE}
                def inner_product(self, other):
                    """Checked."""
                    self.check_compatible(other)
                    return 0.0
            ''',
            "REP005",
            rel_path=SKETCH_PATH,
        )
        assert findings == []

    def test_transitive_check_through_helper_is_clean(self, run_rule):
        # AgmsSketch.inner_product delegates to row_inner_products, which
        # performs the check — the rule must follow the self-call graph.
        findings = run_rule(
            f'''
            from .base import Sketch


            class DelegatingSketch(Sketch):
                """Checks inside a helper."""
            {FULL_INTERFACE}
                def row_inner_products(self, other):
                    """Per-row estimates (checked)."""
                    self.check_compatible(other)
                    return self._counters * other._counters

                def inner_product(self, other):
                    """Combined estimate."""
                    return float(self.row_inner_products(other).mean())
            ''',
            "REP005",
            rel_path=SKETCH_PATH,
        )
        assert findings == []

    def test_super_delegation_is_clean(self, run_rule):
        findings = run_rule(
            f'''
            from .base import Sketch


            class AuditingSketch(Sketch):
                """Wraps merge with bookkeeping."""
            {FULL_INTERFACE}
                def inner_product(self, other):
                    """Checked."""
                    self.check_compatible(other)
                    return 0.0

                def merge(self, other):
                    """Count merges, delegate the checked add."""
                    self.merges += 1
                    super().merge(other)
            ''',
            "REP005",
            rel_path=SKETCH_PATH,
        )
        assert findings == []

    def test_unrelated_class_is_ignored(self, run_rule):
        findings = run_rule(
            '''
            class Reporter:
                """Not a sketch at all."""

                def render(self):
                    """Render."""
            ''',
            "REP005",
            rel_path=SKETCH_PATH,
        )
        assert findings == []
