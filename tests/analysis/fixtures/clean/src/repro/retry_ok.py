"""REP011 fixture twin: the same retry shapes written correctly."""

import time

from repro.resilience.distributed import BackoffPolicy


def fetch_with_policy(read, policy: BackoffPolicy):
    schedule = policy.schedule()
    failures = 0
    while True:
        try:
            return read()
        except OSError:
            failures += 1
            delay = schedule.next_delay()
            if delay is None:
                raise
            time.sleep(delay)  # bound variable, budgeted by the policy


def bounded_poll(read, retries: int, sleep=time.sleep):
    failures = 0
    while True:
        try:
            value = read()
            if value is not None:
                return value
        except OSError:
            failures += 1
            if failures > retries:
                raise
        sleep(compute_delay(failures))


def compute_delay(failures: int) -> float:
    # Zero literals are not delays; the real schedule is injected.
    return float(failures * 0)
