"""Seed fixture: only picklable plain data crosses the seams (REP007 clean)."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.parallel.worker import ShardTask


@dataclass(frozen=True)
class PlainTask:
    """Plain-data task: every field pickles."""

    index: int
    label: Optional[str] = None


def shard_len(part):
    """Module-level worker function — picklable by qualified name."""
    return len(part)


def dispatch(keys):
    """Ships module-level functions and plain data only."""
    with ProcessPoolExecutor(2) as pool:
        pool.submit(shard_len, keys)
        pool.map(shard_len, [keys])
        pool.submit(max, PlainTask(index=0, label="a"))
    return ShardTask(index=0, keys=keys, header={}, p=1.0)
