"""Seed fixture: observer forwarded through the whole chain (REP009 clean)."""

from .observers import Runtime, consume


def run(data, observer=None):
    """Forwards observer= to every observer-accepting callee."""
    runtime = Runtime(data, observer=observer)
    del runtime
    return consume(data, observer=observer)


def run_positional(data, observer=None):
    """Positional forwarding counts too."""
    return consume(data, observer)
