"""REP013 fixture twin: the same shapes written on the dataplane."""

import queue

from repro.dataplane import FileSource, Pipeline, SketcherSink
from repro.streams.io import read_stream


def build_handoff():
    # Bounded: backpressure reaches the producer at depth 8.
    return queue.Queue(maxsize=8)


def scan_file(path, sketcher):
    # The sanctioned loop: a composed pipeline, not a hand-rolled scan.
    pipeline = Pipeline(
        FileSource(path, 4096), sinks=[SketcherSink(sketcher)]
    )
    return pipeline.run()


def reseal_chunks(path):
    # Iterating a source to *transform* it is fine; only terminating the
    # stream in a consumer is the dataplane's job.
    for chunk in read_stream(path, 4096):
        yield chunk.copy()
