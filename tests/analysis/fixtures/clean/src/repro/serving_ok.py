"""REP012 clean twin: coroutines that yield instead of blocking."""

import asyncio


async def handle_request(reader, writer):
    await asyncio.sleep(0.05)  # awaited: the loop keeps serving
    payload = await reader.read(1024)
    writer.write(payload)
    await writer.drain()


async def run_migration(log):
    # Blocking work shipped to an executor, not run on the loop.
    loop = asyncio.get_running_loop()
    code = await loop.run_in_executor(None, _migrate_blocking)
    log(code)


def _migrate_blocking():
    # Synchronous helper: blocking here is fine — it runs on a thread.
    import subprocess

    return subprocess.run(["migrate", "--all"]).returncode


async def fetch_upstream(open_connection, host):
    reader, writer = await open_connection(host, 443)
    writer.write(b"GET / HTTP/1.1\r\n\r\n")
    await writer.drain()
    return await reader.read(-1)
