"""Seed fixture: observer-accepting callees (REP009 clean support module)."""


def consume(stream, observer=None):
    """An observer-accepting stream consumer."""
    return list(stream)


class Runtime:
    """An observer-accepting runtime."""

    def __init__(self, sketch, observer=None):
        self.sketch = sketch
        self.observer = observer
