"""Seed fixture: symmetric checkpoint save/restore schema (REP010 clean)."""


class SymmetricRuntime:
    """Every written key is read back; every read key is written."""

    def __init__(self):
        self.seen = 0
        self.kept = 0

    def checkpoint_state(self):
        return {"seen": self.seen, "kept": self.kept}

    @classmethod
    def from_checkpoint_state(cls, payload):
        runtime = cls()
        runtime.seen = payload["seen"]
        runtime.kept = payload.get("kept", 0)
        return runtime
