"""Seed fixture: updates routed through the kernels seam (REP008 clean)."""

from repro.kernels import get_backend


class SeamSketch:
    """All counter arithmetic goes through the backend seam."""

    def update(self, indices, weights):
        """Chunked dispatch: the loop never touches counters directly."""
        for start in range(0, len(indices), 4096):
            chunk = indices[start : start + 4096]
            get_backend().scatter_add(self._counters, chunk, weights)

    def rebuild(self, rows):
        """Setup writes are fine in a function that routes through the seam."""
        for row in rows:
            self._seeds[row] = row * 2
        get_backend().scatter_add(self._counters, rows, self._seeds)
