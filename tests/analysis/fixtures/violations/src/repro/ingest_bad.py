"""REP013 fixture: unbounded buffering and hand-rolled ingest loops."""

import queue

from repro.streams.io import read_stream


def build_handoff():
    # Unbounded: the default maxsize=0 buffers the whole stream.
    return queue.Queue()


def build_explicit_zero():
    return queue.Queue(maxsize=0)  # still unbounded


def build_simple():
    return queue.SimpleQueue()  # can never be bounded


def scan_file_by_hand(path, sketcher):
    # A Pipeline written by hand: source straight into a consumer.
    for chunk in read_stream(path, 4096):
        sketcher.process(chunk)


def scan_relation_by_hand(relation, engine):
    for chunk in relation.chunks(8192):
        engine.consume("flows", chunk)
