"""Seed fixture: per-element updates bypassing the kernels seam (REP008)."""

import numpy as np


class LoopSketch:
    """Updates its counters by hand instead of through get_backend()."""

    def __init__(self, depth, width):
        self._counters = np.zeros((depth, width), dtype=np.int64)

    def update(self, rows, cols, weight):
        """Per-element loop over sketch state: forks from the backends."""
        for row, col in zip(rows, cols):
            self._counters[row, col] += weight

    def update_bulk(self, indices, weights):
        """numpy.add.at *is* the reference backend — a bypass out here."""
        np.add.at(self._counters, indices, weights)
