"""Seed fixture: drifted checkpoint save/restore schema (REP010)."""


class DriftingRuntime:
    """Writes a key nobody reads; reads a key nobody writes."""

    def __init__(self):
        self.seen = 0
        self.kept = 0

    def checkpoint_state(self):
        return {"seen": self.seen, "kept": self.kept, "orphan": 1}

    @classmethod
    def from_checkpoint_state(cls, payload):
        runtime = cls()
        runtime.seen = payload["seen"]
        runtime.kept = payload["kept"]
        runtime.phantom = payload["phantom"]
        return runtime
