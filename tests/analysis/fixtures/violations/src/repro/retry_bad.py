"""REP011 fixture: ad-hoc retry loops the backoff-discipline rule flags."""

import time


def fetch_with_hardcoded_backoff(read):
    failures = 0
    while failures < 5:
        try:
            return read()
        except OSError:
            failures += 1
            time.sleep(0.1 * 2**failures)  # literal sleep in a retry loop


def poll_forever(read):
    # Unbounded: no handler can raise or break, so a persistent fault
    # spins this loop forever.
    while True:
        try:
            value = read()
            if value is not None:
                return value
        except OSError:
            time.sleep(1)  # also a literal sleep


def drain_with_inner_sleep(chunks, push):
    for chunk in chunks:
        try:
            push(chunk)
        except OSError:
            from time import sleep as pause

            pause(0.25)  # aliased import still resolves to time.sleep
