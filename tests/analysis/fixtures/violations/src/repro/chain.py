"""Seed fixture: an observer-dropping call chain (REP009)."""

from .observers import Runtime, consume


def run(data, observer=None):
    """Accepts observer= but forwards it to neither callee: both spans lost."""
    runtime = Runtime(data)
    del runtime
    return consume(data)
