"""Seed fixture: unpicklable objects reaching process seams (REP007)."""

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.parallel.worker import ShardTask


@dataclass(frozen=True)
class CallbackTask:
    """A task type poisoned by a callable field."""

    index: int
    transform: Callable


def produce():
    """A generator — its frames cannot be pickled."""
    yield 1


def dispatch(keys):
    """Every seam crossing below ships something unpicklable."""
    lock = threading.Lock()

    def shard_fn(part):
        return len(part)

    with ProcessPoolExecutor(2) as pool:
        pool.submit(lambda part: part.sum(), keys)
        pool.submit(shard_fn, keys)
        pool.submit(max, lock)
        pool.map(produce, [keys])
        pool.submit(max, CallbackTask(index=0, transform=len))
    return ShardTask(index=0, keys=keys, header={}, p=lambda: 1.0)
