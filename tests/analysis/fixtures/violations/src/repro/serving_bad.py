"""REP012 fixture: coroutines that block the event loop."""

import subprocess
import time


async def handle_request(reader, writer):
    time.sleep(0.05)  # blocks every connection on the loop
    payload = open("payload.json").read()  # sync file IO in a coroutine
    writer.write(payload.encode())


async def run_migration(log):
    result = subprocess.run(["migrate", "--all"], capture_output=True)
    log(result.returncode)


async def fetch_upstream(url):
    from urllib.request import urlopen

    return urlopen(url).read()  # sync socket IO stalls the loop
