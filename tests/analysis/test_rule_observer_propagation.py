"""REP009 — observer= must propagate through every call chain."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_sources

CALLEE = """
def consume(stream, observer=None):
    return list(stream)
"""


class TestDropsFire:
    def test_keyword_drop_same_module(self, run_rule):
        findings = run_rule(
            CALLEE
            + """
def run(data, observer=None):
    return consume(data)
""",
            "REP009",
        )
        assert len(findings) == 1
        assert "consume" in findings[0].message
        assert "observer=" in findings[0].message

    def test_constructor_drop(self, run_rule):
        findings = run_rule(
            """
class Runtime:
    def __init__(self, sketch, observer=None):
        self.observer = observer

def run(sketch, observer=None):
    return Runtime(sketch)
""",
            "REP009",
        )
        assert len(findings) == 1
        assert "Runtime" in findings[0].message

    def test_dataclass_constructor_drop(self, run_rule):
        # The dataclass has no explicit __init__; the graph synthesizes
        # one from the fields.
        findings = run_rule(
            """
from dataclasses import dataclass

@dataclass
class Pipeline:
    name: str
    observer: object = None

def run(observer=None):
    return Pipeline("scan")
""",
            "REP009",
        )
        assert len(findings) == 1

    def test_self_method_drop(self, run_rule):
        findings = run_rule(
            """
class Engine:
    def _inner(self, data, observer=None):
        return data

    def run(self, data, observer=None):
        return self._inner(data)
""",
            "REP009",
        )
        assert len(findings) == 1

    def test_cross_module_drop(self):
        result = analyze_sources(
            {
                "src/repro/sink.py": textwrap.dedent(CALLEE),
                "src/repro/driver.py": textwrap.dedent(
                    """
                    from .sink import consume

                    def run(data, observer=None):
                        return consume(data)
                    """
                ),
            },
            select={"REP009"},
        )
        assert len(result.findings) == 1
        assert result.findings[0].path == "src/repro/driver.py"


class TestForwardingPasses:
    def test_keyword_forwarding(self, run_rule):
        findings = run_rule(
            CALLEE
            + """
def run(data, observer=None):
    return consume(data, observer=observer)
""",
            "REP009",
        )
        assert findings == []

    def test_positional_forwarding(self, run_rule):
        findings = run_rule(
            CALLEE
            + """
def run(data, observer=None):
    return consume(data, observer)
""",
            "REP009",
        )
        assert findings == []

    def test_kwargs_spread_passes(self, run_rule):
        findings = run_rule(
            CALLEE
            + """
def run(data, **kwargs):
    return consume(data, **kwargs)
""",
            "REP009",
        )
        # ``run`` has no observer param at all; nothing to propagate.
        assert findings == []

    def test_caller_without_observer_not_flagged(self, run_rule):
        findings = run_rule(
            CALLEE
            + """
def run(data):
    return consume(data)
""",
            "REP009",
        )
        assert findings == []

    def test_callee_without_observer_not_flagged(self, run_rule):
        findings = run_rule(
            """
def helper(data):
    return data

def run(data, observer=None):
    return helper(data)
""",
            "REP009",
        )
        assert findings == []

    def test_unresolvable_callee_not_flagged(self, run_rule):
        findings = run_rule(
            """
from somewhere_else import mystery

def run(data, observer=None):
    return mystery(data)
""",
            "REP009",
        )
        assert findings == []
