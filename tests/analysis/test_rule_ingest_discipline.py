"""REP013 — bounded buffering, ingest through the dataplane."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _fixture_findings(tree: str):
    result = analyze_paths(
        ["src"], root=FIXTURES / tree, config=AnalysisConfig(), select={"REP013"}
    )
    return result.findings


class TestUnboundedQueues:
    def test_default_queue_fires(self, run_rule):
        findings = run_rule(
            """
            import queue

            def handoff():
                return queue.Queue()
            """,
            "REP013",
        )
        assert len(findings) == 1
        assert "unbounded queue.Queue()" in findings[0].message
        assert "BoundedQueue" in findings[0].message

    def test_explicit_zero_maxsize_fires(self, run_rule):
        findings = run_rule(
            """
            from queue import Queue

            def handoff():
                return Queue(maxsize=0)
            """,
            "REP013",
        )
        assert len(findings) == 1

    def test_negative_positional_maxsize_fires(self, run_rule):
        findings = run_rule(
            """
            import queue

            def handoff():
                return queue.Queue(-1)
            """,
            "REP013",
        )
        assert len(findings) == 1

    def test_simple_queue_always_fires(self, run_rule):
        findings = run_rule(
            """
            import queue

            def handoff():
                return queue.SimpleQueue()
            """,
            "REP013",
        )
        assert len(findings) == 1
        assert "never be bounded" in findings[0].message

    def test_positive_maxsize_passes(self, run_rule):
        findings = run_rule(
            """
            import queue

            def handoff(depth: int):
                return [queue.Queue(maxsize=8), queue.Queue(depth)]
            """,
            "REP013",
        )
        assert findings == []

    def test_unrelated_queue_name_passes(self, run_rule):
        # A local class named Queue is not the stdlib's.
        findings = run_rule(
            """
            class Queue:
                pass

            def handoff():
                return Queue()
            """,
            "REP013",
        )
        assert findings == []


class TestHandRolledIngestLoops:
    def test_read_stream_into_process_fires(self, run_rule):
        findings = run_rule(
            """
            from repro.streams.io import read_stream

            def scan(path, sketcher):
                for chunk in read_stream(path, 4096):
                    sketcher.process(chunk)
            """,
            "REP013",
        )
        assert len(findings) == 1
        assert "hand-rolled ingest loop" in findings[0].message
        assert "Pipeline" in findings[0].message

    def test_relation_chunks_into_consume_fires(self, run_rule):
        findings = run_rule(
            """
            def scan(relation, engine):
                for chunk in relation.chunks(8192):
                    engine.consume("flows", chunk)
            """,
            "REP013",
        )
        assert len(findings) == 1

    def test_envelope_stream_into_update_fires(self, run_rule):
        findings = run_rule(
            """
            from repro.resilience import envelope_stream

            def scan(chunks, sketch):
                for envelope in envelope_stream(chunks):
                    sketch.update(envelope.keys)
            """,
            "REP013",
        )
        assert len(findings) == 1

    def test_transforming_loop_passes(self, run_rule):
        # Forwarding/resealing a source is not ingest termination.
        findings = run_rule(
            """
            from repro.streams.io import read_stream

            def reseal(path):
                for chunk in read_stream(path, 4096):
                    yield chunk.copy()
            """,
            "REP013",
        )
        assert findings == []

    def test_plain_iterable_loop_passes(self, run_rule):
        # Only direct chunk-source iteration fires; a bound name does not
        # (the source may already be a pipeline's output).
        findings = run_rule(
            """
            def scan(chunks, sketcher):
                for chunk in chunks:
                    sketcher.process(chunk)
            """,
            "REP013",
        )
        assert findings == []

    def test_dataplane_package_is_exempt(self, run_rule):
        findings = run_rule(
            """
            from repro.streams.io import read_stream

            def drive(path, sink):
                for chunk in read_stream(path, 4096):
                    sink.process(chunk)
            """,
            "REP013",
            rel_path="src/repro/dataplane/pipeline.py",
        )
        assert findings == []


class TestFixtureTrees:
    def test_violation_tree_fires_for_every_shape(self):
        findings = _fixture_findings("violations")
        messages = [f.message for f in findings]
        assert len([m for m in messages if "unbounded queue.Queue()" in m]) == 2
        assert len([m for m in messages if "never be bounded" in m]) == 1
        assert len([m for m in messages if "hand-rolled ingest loop" in m]) == 2
        assert all(f.code == "REP013" for f in findings)

    def test_clean_tree_is_clean(self):
        assert _fixture_findings("clean") == []
