"""Tier-1 gate: the repository's own tree must satisfy every REP rule.

This is the enforcement point the static-analysis subsystem exists for —
``python -m pytest`` fails the moment anyone reintroduces an unseeded RNG,
a narrow accumulator dtype, a stale ``__all__``, a bare float equality, or
a sketch that skips ``check_compatible``.  It is exactly equivalent to
``python -m repro.analysis src tests`` exiting 0 from the repo root.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_tree_is_clean():
    """``python -m repro.analysis src tests`` must exit 0 on this tree."""
    result = analyze_paths(paths=["src", "tests"], root=REPO_ROOT)
    assert result.files_checked > 100, "discovery missed most of the tree"
    assert result.exit_code == 0, "\n" + render_text(result, verbose=True)


def test_all_shipped_rules_are_registered_and_enforced():
    """The gate above is only meaningful if every shipped rule ran."""
    from repro.analysis import RULE_REGISTRY

    assert {
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
        "REP007",
        "REP008",
        "REP009",
        "REP010",
    } <= set(RULE_REGISTRY)
