"""REP012 — no blocking calls inside ``async def`` bodies."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _fixture_findings(tree: str):
    result = analyze_paths(
        ["src"], root=FIXTURES / tree, config=AnalysisConfig(), select={"REP012"}
    )
    return result.findings


class TestBlockingCalls:
    def test_time_sleep_in_coroutine_fires(self, run_rule):
        findings = run_rule(
            """
            import time

            async def handler(writer):
                time.sleep(0.1)
                writer.write(b"done")
            """,
            "REP012",
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "handler" in findings[0].message

    def test_subprocess_run_fires(self, run_rule):
        findings = run_rule(
            """
            import subprocess

            async def deploy(log):
                result = subprocess.run(["deploy"])
                log(result.returncode)
            """,
            "REP012",
        )
        assert len(findings) == 1
        assert "subprocess.run" in findings[0].message

    def test_builtin_open_fires(self, run_rule):
        findings = run_rule(
            """
            async def read_config():
                with open("config.json") as fh:
                    return fh.read()
            """,
            "REP012",
        )
        assert len(findings) == 1
        assert "open" in findings[0].message

    def test_aliased_from_import_resolves(self, run_rule):
        findings = run_rule(
            """
            from time import sleep as pause

            async def wait_a_bit():
                pause(0.5)
            """,
            "REP012",
        )
        assert len(findings) == 1

    def test_urlopen_fires(self, run_rule):
        findings = run_rule(
            """
            import urllib.request

            async def fetch(url):
                return urllib.request.urlopen(url).read()
            """,
            "REP012",
        )
        assert len(findings) == 1


class TestAllowedPatterns:
    def test_awaited_asyncio_sleep_passes(self, run_rule):
        findings = run_rule(
            """
            import asyncio

            async def pace():
                await asyncio.sleep(0.1)
            """,
            "REP012",
        )
        assert findings == []

    def test_blocking_in_sync_function_passes(self, run_rule):
        findings = run_rule(
            """
            import time

            def warm_up():
                time.sleep(1.0)
            """,
            "REP012",
        )
        assert findings == []

    def test_nested_sync_def_is_excluded(self, run_rule):
        # A synchronous helper defined inside the coroutine runs on an
        # executor/thread; its blocking calls are not the loop's problem.
        findings = run_rule(
            """
            import asyncio
            import time

            async def migrate():
                def blocking_step():
                    time.sleep(2.0)
                    return 0

                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, blocking_step)
            """,
            "REP012",
        )
        assert findings == []

    def test_nested_coroutine_attributed_to_itself(self, run_rule):
        # The inner coroutine's violation is reported (once), naming it.
        findings = run_rule(
            """
            import time

            async def outer():
                async def inner():
                    time.sleep(0.2)

                await inner()
            """,
            "REP012",
        )
        assert len(findings) == 1
        assert "inner" in findings[0].message

    def test_await_of_library_call_passes(self, run_rule):
        findings = run_rule(
            """
            async def roundtrip(open_connection):
                reader, writer = await open_connection("host", 443)
                writer.write(b"ping")
                await writer.drain()
                return await reader.read(-1)
            """,
            "REP012",
        )
        assert findings == []


class TestFixtureTrees:
    def test_violation_tree_findings(self):
        findings = _fixture_findings("violations")
        assert len(findings) == 4
        assert all(f.code == "REP012" for f in findings)
        files = {Path(f.path).name for f in findings}
        assert files == {"serving_bad.py"}

    def test_clean_tree_is_quiet(self):
        assert _fixture_findings("clean") == []


class TestRealServingPackage:
    def test_serving_source_is_clean(self):
        # The rule exists because of repro.serving; the package must pass.
        repo_root = Path(__file__).resolve().parents[2]
        result = analyze_paths(
            ["src/repro/serving"],
            root=repo_root,
            config=AnalysisConfig(),
            select={"REP012"},
        )
        assert result.findings == []
