"""REP003 fixtures: honest ``__all__`` lists and documented public defs."""

from __future__ import annotations


class TestRep003Triggers:
    def test_stale_dunder_all_entry_is_flagged(self, run_rule):
        findings = run_rule(
            '''
            """Module."""

            __all__ = ["exists", "ghost"]


            def exists():
                """Here."""
            ''',
            "REP003",
        )
        assert len(findings) == 1
        assert "ghost" in findings[0].message

    def test_unexported_public_def_is_flagged(self, run_rule):
        findings = run_rule(
            '''
            """Module."""

            __all__ = ["listed"]


            def listed():
                """Here."""


            def unlisted():
                """Public but not exported."""
            ''',
            "REP003",
        )
        assert len(findings) == 1
        assert "unlisted" in findings[0].message

    def test_missing_docstring_is_flagged(self, run_rule):
        findings = run_rule(
            '''
            """Module."""

            __all__ = ["bare"]


            def bare():
                return 1
            ''',
            "REP003",
        )
        assert len(findings) == 1
        assert "docstring" in findings[0].message


class TestRep003Passes:
    def test_consistent_module_is_clean(self, run_rule):
        findings = run_rule(
            '''
            """Module."""

            __all__ = ["Thing", "make_thing", "DEFAULT"]

            DEFAULT = 3


            class Thing:
                """A thing."""


            def make_thing():
                """Build a thing."""


            def _helper():
                return None
            ''',
            "REP003",
        )
        assert findings == []

    def test_dunder_all_append_idiom_is_understood(self, run_rule):
        # streams/io.py and streams/synthetic.py grow __all__ after the
        # definitions; the rule must follow append/extend/+=.
        findings = run_rule(
            '''
            """Module."""

            __all__ = ["first"]


            def first():
                """One."""


            __all__.append("second")
            __all__.extend(["third"])
            __all__ += ["fourth"]


            def second():
                """Two."""


            def third():
                """Three."""


            def fourth():
                """Four."""
            ''',
            "REP003",
        )
        assert findings == []

    def test_dynamic_dunder_all_skips_export_checks(self, run_rule):
        findings = run_rule(
            '''
            """Module."""

            _names = ["a", "b"]
            __all__ = list(_names)


            def documented():
                """Docstring present, so only export checks could fire."""
            ''',
            "REP003",
        )
        assert findings == []
