"""The seeded fixture trees: each whole-program rule firing and passing.

The acceptance contract for the cross-module rules: the ``violations``
tree under ``tests/analysis/fixtures/`` triggers every one of
REP007–REP010 (including an observer-dropping call chain and an
unpicklable object reaching a process seam), the ``clean`` twin stays
silent, and the real-tree configuration excludes both.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, analyze_paths, load_config

FIXTURES = Path(__file__).resolve().parent / "fixtures"
NEW_CODES = {"REP007", "REP008", "REP009", "REP010"}


def _analyze(tree: str, select=NEW_CODES):
    return analyze_paths(
        ["src"], root=FIXTURES / tree, config=AnalysisConfig(), select=select
    )


@pytest.fixture(scope="module")
def violations():
    return _analyze("violations")


class TestViolationsTree:
    def test_every_new_rule_fires(self, violations):
        assert {f.code for f in violations.findings} == NEW_CODES

    def test_unpicklable_objects_reach_the_seam(self, violations):
        messages = [
            f.message
            for f in violations.findings
            if f.code == "REP007" and f.path == "src/repro/parallel_bad.py"
        ]
        reasons = " | ".join(messages)
        assert "a lambda" in reasons
        assert "a closure" in reasons
        assert "a threading lock" in reasons
        assert "a generator function" in reasons
        # The interprocedural case: a dataclass whose *field* annotation
        # (another module's business) poisons the instance at the seam.
        assert "CallbackTask" in reasons and "a callable" in reasons

    def test_seam_task_constructor_is_a_seam(self, violations):
        assert any(
            f.code == "REP007" and "ShardTask" in f.message
            for f in violations.findings
        )

    def test_kernel_seam_bypasses(self, violations):
        rep008 = [f for f in violations.findings if f.code == "REP008"]
        assert {f.path for f in rep008} == {"src/repro/sketches/bad_loops.py"}
        joined = " | ".join(f.message for f in rep008)
        assert "per-element update to self._counters" in joined
        assert "numpy.add.at" in joined

    def test_observer_dropping_chain(self, violations):
        rep009 = [f for f in violations.findings if f.code == "REP009"]
        assert {f.path for f in rep009} == {"src/repro/chain.py"}
        joined = " | ".join(f.message for f in rep009)
        # Both the constructor and the cross-module function drop it.
        assert "'Runtime'" in joined
        assert "consume" in joined

    def test_checkpoint_schema_drift_both_directions(self, violations):
        rep010 = [f for f in violations.findings if f.code == "REP010"]
        joined = " | ".join(f.message for f in rep010)
        assert "'orphan'" in joined and "silently lost" in joined
        assert "'phantom'" in joined and "never" in joined


class TestCleanTree:
    def test_clean_twin_is_silent(self):
        result = _analyze("clean")
        assert result.findings == []

    def test_clean_twin_under_all_project_rules(self):
        # No select filter: every registered project rule must pass.
        result = _analyze("clean", select=None)
        assert [f for f in result.findings if f.code in NEW_CODES] == []


class TestRealTreeExclusion:
    def test_fixture_trees_are_excluded_from_real_runs(self):
        repo_root = Path(__file__).resolve().parents[2]
        config = load_config(repo_root)
        assert "tests/analysis/fixtures" in config.exclude

    def test_default_config_excludes_fixtures_without_toml(self):
        assert "tests/analysis/fixtures" in AnalysisConfig().exclude
