"""Helpers for the invariant-checker tests.

``run_rule`` analyzes an in-memory snippet with exactly one rule selected
and returns the surviving findings; ``rel_path`` defaults to a location
inside ``src/repro`` so the rule's default include patterns apply just as
they would on the real tree.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_source


@pytest.fixture
def run_rule():
    """``run_rule(source, code, rel_path=...) -> list[Finding]``."""

    def runner(source: str, code: str, rel_path: str = "src/repro/snippet.py"):
        result = analyze_source(
            textwrap.dedent(source), rel_path, select={code}
        )
        return result.findings

    return runner
