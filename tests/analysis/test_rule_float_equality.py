"""REP004 fixtures: exact equality on float-typed expressions."""

from __future__ import annotations


class TestRep004Triggers:
    def test_float_literal_comparison_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def check(p):
                return p == 1.0
            """,
            "REP004",
        )
        assert len(findings) == 1
        assert "'=='" in findings[0].message

    def test_division_result_comparison_is_flagged(self, run_rule):
        findings = run_rule(
            """
            def check(a, b, c):
                return a / b != c
            """,
            "REP004",
        )
        assert len(findings) == 1

    def test_float_call_comparison_is_flagged(self, run_rule):
        findings = run_rule(
            """
            import math

            def check(variance, floor):
                return float(variance) == math.sqrt(floor)
            """,
            "REP004",
        )
        assert len(findings) == 1

    def test_chained_comparison_is_inspected_per_pair(self, run_rule):
        findings = run_rule(
            """
            def check(a, b):
                return 0.0 == a == b
            """,
            "REP004",
        )
        assert len(findings) >= 1


class TestRep004Passes:
    def test_integer_and_ordering_comparisons_are_clean(self, run_rule):
        findings = run_rule(
            """
            def check(n, p, truth):
                if n == 0:
                    return False
                if p >= 1.0:
                    return True
                return truth <= 0.5
            """,
            "REP004",
        )
        assert findings == []

    def test_isclose_is_the_blessed_spelling(self, run_rule):
        findings = run_rule(
            """
            import math

            def check(a, b):
                return math.isclose(a / b, 1.0)
            """,
            "REP004",
        )
        assert findings == []

    def test_tests_are_exempt_by_default(self, run_rule):
        findings = run_rule(
            """
            def test_exact():
                assert 0.5 == compute()
            """,
            "REP004",
            rel_path="tests/test_exact.py",
        )
        assert findings == []
