"""REP011 — retry delays through BackoffPolicy, no unbounded retries."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _fixture_findings(tree: str):
    result = analyze_paths(
        ["src"], root=FIXTURES / tree, config=AnalysisConfig(), select={"REP011"}
    )
    return result.findings


class TestLiteralSleeps:
    def test_literal_sleep_in_while_retry_loop_fires(self, run_rule):
        findings = run_rule(
            """
            import time

            def fetch(read, retries):
                failures = 0
                while failures < retries:
                    try:
                        return read()
                    except OSError:
                        failures += 1
                        time.sleep(0.05 * 2**failures)
            """,
            "REP011",
        )
        assert len(findings) == 1
        assert "literal sleep" in findings[0].message
        assert "BackoffPolicy" in findings[0].message

    def test_aliased_from_import_resolves(self, run_rule):
        findings = run_rule(
            """
            from time import sleep as pause

            def drain(chunks, push):
                for chunk in chunks:
                    try:
                        push(chunk)
                    except OSError:
                        pause(0.25)
            """,
            "REP011",
        )
        assert len(findings) == 1

    def test_bound_variable_delay_passes(self, run_rule):
        findings = run_rule(
            """
            import time

            def fetch(read, schedule):
                while True:
                    try:
                        return read()
                    except OSError:
                        delay = schedule.next_delay()
                        if delay is None:
                            raise
                        time.sleep(delay)
            """,
            "REP011",
        )
        assert findings == []

    def test_sleep_outside_retry_loop_passes(self, run_rule):
        # No try/except in the loop: not a retry loop, pacing is fine.
        findings = run_rule(
            """
            import time

            def pace(chunks, push):
                for chunk in chunks:
                    push(chunk)
                    time.sleep(0.01)
            """,
            "REP011",
        )
        assert findings == []

    def test_zero_literal_is_not_a_delay(self, run_rule):
        findings = run_rule(
            """
            import time

            def fetch(read):
                while True:
                    try:
                        return read()
                    except OSError:
                        raise
                    time.sleep(0)
            """,
            "REP011",
        )
        assert findings == []


class TestUnboundedRetries:
    def test_while_true_without_exhaustion_path_fires(self, run_rule):
        findings = run_rule(
            """
            def poll(read, log):
                while True:
                    try:
                        value = read()
                        if value is not None:
                            return value
                    except OSError as exc:
                        log(exc)
            """,
            "REP011",
        )
        assert len(findings) == 1
        assert "unbounded" in findings[0].message

    def test_handler_raise_on_exhaustion_passes(self, run_rule):
        findings = run_rule(
            """
            def poll(read, retries):
                failures = 0
                while True:
                    try:
                        return read()
                    except OSError:
                        failures += 1
                        if failures > retries:
                            raise
            """,
            "REP011",
        )
        assert findings == []

    def test_handler_break_passes(self, run_rule):
        findings = run_rule(
            """
            def poll(read):
                while True:
                    try:
                        return read()
                    except OSError:
                        break
            """,
            "REP011",
        )
        assert findings == []

    def test_bounded_while_is_not_unbounded(self, run_rule):
        # ``while failures < n`` terminates by its own test even though
        # the handler only counts.
        findings = run_rule(
            """
            def poll(read, n):
                failures = 0
                while failures < n:
                    try:
                        return read()
                    except OSError:
                        failures += 1
            """,
            "REP011",
        )
        assert findings == []


class TestFixtureTrees:
    def test_violations_tree_fires_both_heuristics(self):
        findings = _fixture_findings("violations")
        assert {f.path for f in findings} == {"src/repro/retry_bad.py"}
        messages = [f.message for f in findings]
        assert sum("literal sleep" in m for m in messages) >= 2
        assert sum("unbounded" in m for m in messages) == 1

    def test_clean_tree_is_silent(self):
        assert _fixture_findings("clean") == []

    def test_tests_are_exempt_by_configuration(self, run_rule):
        findings = run_rule(
            """
            import time

            def test_retry():
                while True:
                    try:
                        return 1
                    except OSError:
                        time.sleep(0.01)
            """,
            "REP011",
            rel_path="tests/test_snippet.py",
        )
        assert findings == []
