"""REP001 fixtures: ad-hoc RNG construction vs the repro.rng discipline."""

from __future__ import annotations


class TestRep001Triggers:
    def test_default_rng_call_is_flagged(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            def sample():
                rng = np.random.default_rng(42)
                return rng.normal()
            """,
            "REP001",
        )
        assert [f.code for f in findings] == ["REP001"]
        assert "default_rng" in findings[0].message

    def test_aliased_from_import_is_resolved(self, run_rule):
        findings = run_rule(
            """
            from numpy.random import default_rng as make_rng

            rng = make_rng(7)
            """,
            "REP001",
        )
        assert len(findings) == 1

    def test_legacy_global_draw_is_flagged(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            noise = np.random.normal(size=10)
            """,
            "REP001",
        )
        assert len(findings) == 1
        assert "legacy global-state" in findings[0].message

    def test_stdlib_random_is_flagged(self, run_rule):
        findings = run_rule(
            """
            import random

            random.seed(1)
            value = random.random()
            """,
            "REP001",
        )
        assert len(findings) == 2

    def test_numpy_seed_and_randomstate_are_flagged(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            np.random.seed(0)
            state = np.random.RandomState(0)
            """,
            "REP001",
        )
        assert len(findings) == 2

    def test_pid_seeding_is_flagged(self, run_rule):
        # The classic multiprocessing bug: per-worker seeds from the pid.
        findings = run_rule(
            """
            import os

            def worker_seed():
                return os.getpid()
            """,
            "REP001",
        )
        assert len(findings) == 1
        assert "ambient entropy" in findings[0].message
        assert "SeedSequence" in findings[0].message

    def test_clock_and_uuid_seeding_are_flagged(self, run_rule):
        findings = run_rule(
            """
            import time
            import uuid

            seed = int(time.time()) ^ uuid.uuid4().int
            """,
            "REP001",
        )
        assert len(findings) == 2

    def test_os_urandom_and_secrets_are_flagged(self, run_rule):
        findings = run_rule(
            """
            import os
            import secrets

            a = os.urandom(8)
            b = secrets.randbits(64)
            """,
            "REP001",
        )
        assert len(findings) == 2


class TestRep001Passes:
    def test_as_generator_threading_is_clean(self, run_rule):
        findings = run_rule(
            """
            from repro.rng import as_generator, spawn

            def sample(seed=None):
                rng = as_generator(seed)
                children = spawn(seed, 4)
                return rng.normal(), children
            """,
            "REP001",
        )
        assert findings == []

    def test_generator_type_annotation_is_clean(self, run_rule):
        # Referencing the Generator *type* (annotations, isinstance) is
        # legitimate; only constructing one is banned.
        findings = run_rule(
            """
            import numpy as np

            def run(rng: np.random.Generator) -> float:
                assert isinstance(rng, np.random.Generator)
                return float(rng.normal())
            """,
            "REP001",
        )
        assert findings == []

    def test_rng_module_itself_is_exempt(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            def as_generator(seed=None):
                return np.random.default_rng(seed)
            """,
            "REP001",
            rel_path="src/repro/rng.py",
        )
        assert findings == []

    def test_monotonic_timers_are_clean(self, run_rule):
        # Costing chunks with perf_counter is legitimate; only wall-clock
        # *entropy* is banned.
        findings = run_rule(
            """
            import time

            started = time.perf_counter()
            elapsed = time.monotonic() - started
            """,
            "REP001",
        )
        assert findings == []

    def test_spawned_seed_sequences_are_clean(self, run_rule):
        # The sanctioned multiprocessing pattern: coordinator-spawned
        # SeedSequence substreams reconstructed in the worker.
        findings = run_rule(
            """
            import numpy as np
            from repro.rng import as_seed_sequence

            def shard_seeds(seed, shards):
                return as_seed_sequence(seed).spawn(shards)

            def rebuild(entropy, spawn_key):
                return np.random.SeedSequence(entropy, spawn_key=spawn_key)
            """,
            "REP001",
        )
        assert findings == []

    def test_tests_are_exempt_by_default(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            rng = np.random.default_rng(0)
            """,
            "REP001",
            rel_path="tests/test_something.py",
        )
        assert findings == []
