"""The ``python -m repro.analysis`` / ``repro-analysis`` command line."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(tmp_path: Path, rel: str, source: str) -> None:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")


@pytest.fixture
def bad_tree(tmp_path: Path) -> Path:
    _write(
        tmp_path,
        "src/repro/offender.py",
        "import numpy as np\nrng = np.random.default_rng(0)\n",
    )
    return tmp_path


class TestMain:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/fine.py", "import numpy as np\n")
        assert main(["--root", str(tmp_path), "src"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, bad_tree, capsys):
        assert main(["--root", str(bad_tree), "src"]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "src/repro/offender.py:2:" in out

    def test_json_format(self, bad_tree, capsys):
        assert main(["--root", str(bad_tree), "-f", "json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1

    def test_select_limits_rules(self, bad_tree, capsys):
        assert main(["--root", str(bad_tree), "--select", "REP004", "src"]) == 0
        capsys.readouterr()

    def test_unknown_rule_code_is_usage_error(self, bad_tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--root", str(bad_tree), "--select", "REP999", "src"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_nonexistent_path_is_usage_error(self, bad_tree, capsys):
        # A typo'd path in a CI line must not silently check 0 files.
        with pytest.raises(SystemExit) as excinfo:
            main(["--root", str(bad_tree), "srk"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
        ):
            assert code in out

    def test_syntax_error_reported_as_rep000(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/broken.py", "def broken(:\n")
        assert main(["--root", str(tmp_path), "src"]) == 1
        assert "REP000" in capsys.readouterr().out


class TestSelectionFlags:
    def test_ignore_skips_a_firing_rule(self, bad_tree, capsys):
        assert main(["--root", str(bad_tree), "--ignore", "REP001", "src"]) == 0
        capsys.readouterr()

    def test_ignore_wins_over_select(self, bad_tree, capsys):
        assert (
            main(
                [
                    "--root",
                    str(bad_tree),
                    "--select",
                    "REP001",
                    "--ignore",
                    "REP001",
                    "src",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_unknown_ignore_code_is_usage_error(self, bad_tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--root", str(bad_tree), "--ignore", "REP999", "src"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_toml_disablement_survives_select(self, bad_tree, capsys):
        # ``enabled = false`` in pyproject.toml switches the rule off at
        # the config layer; ``--select`` narrows but cannot re-enable.
        _write(
            bad_tree,
            "pyproject.toml",
            "[tool.repro.analysis.rep001]\nenabled = false\n",
        )
        assert main(["--root", str(bad_tree), "--select", "REP001", "src"]) == 0
        capsys.readouterr()

    def test_cli_select_narrows_toml_enabled_set(self, bad_tree, capsys):
        # Config leaves every rule on; --select REP004 must still skip
        # the REP001 offender.
        _write(bad_tree, "pyproject.toml", "[tool.repro.analysis]\n")
        assert main(["--root", str(bad_tree), "--select", "REP004", "src"]) == 0
        capsys.readouterr()


class TestSarifFormat:
    def test_sarif_output_parses(self, bad_tree, capsys):
        assert main(["--root", str(bad_tree), "-f", "sarif", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert results and results[0]["ruleId"] == "REP001"


class TestJobsFlag:
    def test_parallel_run_matches_serial(self, bad_tree, capsys):
        assert main(["--root", str(bad_tree), "-f", "json", "src"]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(["--root", str(bad_tree), "-f", "json", "--jobs", "2", "src"])
            == 1
        )
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["findings"] == serial["findings"]

    def test_zero_jobs_is_usage_error(self, bad_tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--root", str(bad_tree), "--jobs", "0", "src"])
        assert excinfo.value.code == 2
        capsys.readouterr()


class TestCacheDirFlag:
    def test_warm_run_reproduces_exit_and_findings(self, bad_tree, capsys):
        cache_dir = bad_tree / ".analysis-cache"
        argv = [
            "--root",
            str(bad_tree),
            "--cache-dir",
            str(cache_dir),
            "-f",
            "json",
            "src",
        ]
        assert main(argv) == 1
        cold = json.loads(capsys.readouterr().out)
        assert list(cache_dir.glob("*.json")), "cache index not written"
        assert main(argv) == 1
        warm = json.loads(capsys.readouterr().out)
        assert warm["findings"] == cold["findings"]


class TestNoTomlParser:
    def test_py310_without_tomllib_uses_defaults(self, bad_tree, capsys, monkeypatch):
        # Python 3.10 has neither ``tomllib`` nor (necessarily) ``tomli``;
        # config loading must fall back to in-code defaults, not crash.
        monkeypatch.setitem(sys.modules, "tomllib", None)
        monkeypatch.setitem(sys.modules, "tomli", None)
        _write(
            bad_tree,
            "pyproject.toml",
            "[tool.repro.analysis.rep001]\nenabled = false\n",
        )
        # The TOML disablement is unreadable, so the rule stays on.
        assert main(["--root", str(bad_tree), "src"]) == 1
        assert "REP001" in capsys.readouterr().out


class TestModuleInvocation:
    def test_python_dash_m_runs(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
        )
        process = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert process.returncode == 0
        assert "REP001" in process.stdout
