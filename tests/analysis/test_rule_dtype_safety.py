"""REP002 fixtures: narrow dtypes and implicit-dtype power-sum reductions."""

from __future__ import annotations

VARIANCE_PATH = "src/repro/variance/snippet.py"


class TestRep002Triggers:
    def test_narrow_dtype_constructor_is_flagged(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            counters = np.zeros(16, dtype=np.int32)
            """,
            "REP002",
            rel_path=VARIANCE_PATH,
        )
        assert len(findings) == 1
        assert "int32" in findings[0].message

    def test_narrow_dtype_string_and_astype_are_flagged(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            a = np.asarray([1, 2], dtype="float32")
            b = a.astype(np.int16)
            """,
            "REP002",
            rel_path=VARIANCE_PATH,
        )
        assert len(findings) == 2

    def test_power_sum_without_dtype_is_flagged(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            def f2(counts):
                return (counts ** 2).sum()
            """,
            "REP002",
            rel_path=VARIANCE_PATH,
        )
        assert len(findings) == 1
        assert "dtype" in findings[0].message

    def test_np_sum_over_power_is_flagged(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            def f4(counts):
                return np.sum(counts ** 4)
            """,
            "REP002",
            rel_path=VARIANCE_PATH,
        )
        assert len(findings) == 1


class TestRep002Passes:
    def test_explicit_wide_dtypes_are_clean(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            counters = np.zeros(16, dtype=np.float64)
            exact = np.zeros(16, dtype=np.int64)

            def f2(counts):
                return (counts ** 2).sum(dtype=object)

            def f3(counts):
                return np.sum(counts.astype(np.int64) ** 3, dtype=np.int64)
            """,
            "REP002",
            rel_path=VARIANCE_PATH,
        )
        assert findings == []

    def test_plain_sum_without_power_is_clean(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            def total(counts):
                return counts.sum()
            """,
            "REP002",
            rel_path=VARIANCE_PATH,
        )
        assert findings == []

    def test_rule_is_scoped_to_numeric_modules(self, run_rule):
        # The same pattern outside frequency/variance/sketches/sampling is
        # not the rule's business.
        findings = run_rule(
            """
            import numpy as np

            x = np.zeros(4, dtype=np.int32)
            """,
            "REP002",
            rel_path="src/repro/streams/snippet.py",
        )
        assert findings == []
