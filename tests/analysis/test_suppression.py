"""The ``# repro: noqa`` suppression comment, end to end."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, parse_suppressions

BAD_LINE = "rng = np.random.default_rng(3)"


def _analyze(body: str, **kwargs):
    source = "import numpy as np\n\n" + textwrap.dedent(body)
    return analyze_source(source, "src/repro/snippet.py", **kwargs)


class TestParse:
    def test_blanket_and_scoped_forms(self):
        source = textwrap.dedent(
            """
            a = 1  # repro: noqa
            b = 2  # repro: noqa(REP001)
            c = 3  # repro: noqa(REP001, REP004)
            d = 4  # unrelated comment
            """
        )
        suppressions = parse_suppressions(source)
        assert suppressions[2] == set()
        assert suppressions[3] == {"REP001"}
        assert suppressions[4] == {"REP001", "REP004"}
        assert 5 not in suppressions

    def test_case_insensitive_codes(self):
        suppressions = parse_suppressions("x = 1  # repro: noqa(rep001)\n")
        assert suppressions[1] == {"REP001"}


class TestSuppressionBehavior:
    def test_finding_without_noqa_fires(self):
        result = _analyze(BAD_LINE, select={"REP001"})
        assert len(result.findings) == 1
        assert result.suppressed == 0

    def test_matching_code_suppresses(self):
        result = _analyze(
            BAD_LINE + "  # repro: noqa(REP001)", select={"REP001"}
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_blanket_noqa_suppresses(self):
        result = _analyze(BAD_LINE + "  # repro: noqa", select={"REP001"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_code_does_not_suppress(self):
        result = _analyze(
            BAD_LINE + "  # repro: noqa(REP004)", select={"REP001"}
        )
        assert len(result.findings) == 1
        assert result.suppressed == 0

    def test_noqa_is_line_scoped(self):
        result = _analyze(
            "safe = 1  # repro: noqa(REP001)\n" + BAD_LINE,
            select={"REP001"},
        )
        assert len(result.findings) == 1


class TestMultiLineStatements:
    """A noqa anywhere on a multi-line statement covers the whole span.

    Findings anchor to the *first* physical line of a statement, but the
    natural place to write the comment is the *last* line (after the
    closing paren).  Both must work.
    """

    MULTILINE = """
        rng = np.random.default_rng(
            3,
        ){comment}
        """

    def test_noqa_on_last_line_suppresses(self):
        result = _analyze(
            self.MULTILINE.format(comment="  # repro: noqa(REP001)"),
            select={"REP001"},
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_noqa_on_first_line_still_suppresses(self):
        result = _analyze(
            "rng = np.random.default_rng(  # repro: noqa(REP001)\n    3,\n)",
            select={"REP001"},
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_blanket_noqa_on_last_line_suppresses(self):
        result = _analyze(
            self.MULTILINE.format(comment="  # repro: noqa"),
            select={"REP001"},
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_code_on_last_line_does_not_suppress(self):
        result = _analyze(
            self.MULTILINE.format(comment="  # repro: noqa(REP004)"),
            select={"REP001"},
        )
        assert len(result.findings) == 1

    def test_compound_statements_are_not_widened(self):
        # A noqa on a ``for`` header must not blanket the loop body.
        result = _analyze(
            """
            for i in (  # repro: noqa(REP001)
                1,
            ):
                rng = np.random.default_rng(i)
            """,
            select={"REP001"},
        )
        assert len(result.findings) == 1

    def test_adjacent_statement_unaffected(self):
        # The widened span stops at the statement boundary.
        result = _analyze(
            self.MULTILINE.format(comment="  # repro: noqa(REP001)")
            + BAD_LINE,
            select={"REP001"},
        )
        assert len(result.findings) == 1
        assert result.suppressed == 1
