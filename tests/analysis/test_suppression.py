"""The ``# repro: noqa`` suppression comment, end to end."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source, parse_suppressions

BAD_LINE = "rng = np.random.default_rng(3)"


def _analyze(body: str, **kwargs):
    source = "import numpy as np\n\n" + textwrap.dedent(body)
    return analyze_source(source, "src/repro/snippet.py", **kwargs)


class TestParse:
    def test_blanket_and_scoped_forms(self):
        source = textwrap.dedent(
            """
            a = 1  # repro: noqa
            b = 2  # repro: noqa(REP001)
            c = 3  # repro: noqa(REP001, REP004)
            d = 4  # unrelated comment
            """
        )
        suppressions = parse_suppressions(source)
        assert suppressions[2] == set()
        assert suppressions[3] == {"REP001"}
        assert suppressions[4] == {"REP001", "REP004"}
        assert 5 not in suppressions

    def test_case_insensitive_codes(self):
        suppressions = parse_suppressions("x = 1  # repro: noqa(rep001)\n")
        assert suppressions[1] == {"REP001"}


class TestSuppressionBehavior:
    def test_finding_without_noqa_fires(self):
        result = _analyze(BAD_LINE, select={"REP001"})
        assert len(result.findings) == 1
        assert result.suppressed == 0

    def test_matching_code_suppresses(self):
        result = _analyze(
            BAD_LINE + "  # repro: noqa(REP001)", select={"REP001"}
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_blanket_noqa_suppresses(self):
        result = _analyze(BAD_LINE + "  # repro: noqa", select={"REP001"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_code_does_not_suppress(self):
        result = _analyze(
            BAD_LINE + "  # repro: noqa(REP004)", select={"REP001"}
        )
        assert len(result.findings) == 1
        assert result.suppressed == 0

    def test_noqa_is_line_scoped(self):
        result = _analyze(
            "safe = 1  # repro: noqa(REP001)\n" + BAD_LINE,
            select={"REP001"},
        )
        assert len(result.findings) == 1
