"""docs/STATIC_ANALYSIS.md must track the registered rule catalogue.

A rule that ships without documentation is invisible to the people it
polices; a documented code that no longer exists sends readers hunting
for behavior the checker does not have.  Both directions are drift.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis import RULE_REGISTRY

DOCS = Path(__file__).resolve().parents[2] / "docs" / "STATIC_ANALYSIS.md"


def test_docs_exist():
    assert DOCS.is_file(), "docs/STATIC_ANALYSIS.md is missing"


def test_every_registered_code_is_documented():
    text = DOCS.read_text(encoding="utf-8")
    missing = sorted(code for code in RULE_REGISTRY if code not in text)
    assert not missing, f"rules missing from docs: {missing}"


def test_no_phantom_codes_in_docs():
    text = DOCS.read_text(encoding="utf-8")
    # Fenced code blocks may use placeholder codes in examples.
    prose = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    documented = set(re.findall(r"\bREP\d{3}\b", prose))
    known = set(RULE_REGISTRY) | {"REP000"}  # REP000 is the parse-error code
    phantom = sorted(documented - known)
    assert not phantom, f"docs mention unregistered codes: {phantom}"
