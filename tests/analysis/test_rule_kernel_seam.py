"""REP008 — sketch updates must route through the kernels backend seam."""

from __future__ import annotations

SKETCH_PATH = "src/repro/sketches/snippet.py"


class TestBypassesFire:
    def test_loop_store_to_self_state(self, run_rule):
        findings = run_rule(
            """
            class Sk:
                def update(self, keys, w):
                    for k in keys:
                        self._counters[k] += w
            """,
            "REP008",
            rel_path=SKETCH_PATH,
        )
        assert len(findings) == 1
        assert "self._counters" in findings[0].message

    def test_plain_assignment_in_loop(self, run_rule):
        findings = run_rule(
            """
            class Sk:
                def rebuild(self, rows):
                    for row in rows:
                        self._table[row] = 0
            """,
            "REP008",
            rel_path=SKETCH_PATH,
        )
        assert len(findings) == 1

    def test_numpy_add_at(self, run_rule):
        findings = run_rule(
            """
            import numpy as np

            class Sk:
                def update(self, idx, w):
                    np.add.at(self._counters, idx, w)
            """,
            "REP008",
            rel_path=SKETCH_PATH,
        )
        assert len(findings) == 1
        assert "numpy.add.at" in findings[0].message

    def test_store_in_nested_loop_reported_once(self, run_rule):
        findings = run_rule(
            """
            class Sk:
                def update(self, rows, cols, w):
                    for row in rows:
                        for col in cols:
                            self._counters[row, col] += w
            """,
            "REP008",
            rel_path=SKETCH_PATH,
        )
        assert len(findings) == 1


class TestSeamRoutedPasses:
    def test_function_reaching_get_backend_is_exempt(self, run_rule):
        findings = run_rule(
            """
            from repro.kernels import get_backend

            class Sk:
                def rebuild(self, rows):
                    for row in rows:
                        self._seeds[row] = row
                    get_backend().scatter_add(self._counters, rows, self._seeds)
            """,
            "REP008",
            rel_path=SKETCH_PATH,
        )
        assert findings == []

    def test_transitive_reachability_exempts(self, run_rule):
        # The seam call is two hops away through a self. method.
        findings = run_rule(
            """
            from repro.kernels import get_backend

            class Sk:
                def _apply(self, idx, w):
                    get_backend().scatter_add(self._counters, idx, w)

                def _route(self, idx, w):
                    self._apply(idx, w)

                def rebuild(self, rows):
                    for row in rows:
                        self._seeds[row] = row
                    self._route(rows, self._seeds)
            """,
            "REP008",
            rel_path=SKETCH_PATH,
        )
        assert findings == []

    def test_store_outside_loop_passes(self, run_rule):
        findings = run_rule(
            """
            class Sk:
                def reset(self):
                    self._counters[...] = 0
            """,
            "REP008",
            rel_path=SKETCH_PATH,
        )
        assert findings == []

    def test_rule_scoped_to_sketches(self, run_rule):
        findings = run_rule(
            """
            class Elsewhere:
                def update(self, keys, w):
                    for k in keys:
                        self._counters[k] += w
            """,
            "REP008",
            rel_path="src/repro/engine/snippet.py",
        )
        assert findings == []
