"""Text and JSON reporter output, including byte-stability of the JSON."""

from __future__ import annotations

import json

from repro.analysis import (
    REPORT_SCHEMA_VERSION,
    SARIF_VERSION,
    all_rules,
    analyze_source,
    render_json,
    render_sarif,
    render_text,
)

BAD_SOURCE = (
    "import numpy as np\n"
    "rng = np.random.default_rng(1)\n"
    "other = np.random.default_rng(2)\n"
)


def _result():
    return analyze_source(BAD_SOURCE, "src/repro/snippet.py", select={"REP001"})


class TestTextReporter:
    def test_locations_and_summary(self):
        text = render_text(_result())
        lines = text.splitlines()
        assert lines[0].startswith("src/repro/snippet.py:2:")
        assert "REP001" in lines[0]
        assert "[error]" in lines[0]
        assert lines[-1] == "checked 1 file(s): 2 error(s), 0 warning(s)"

    def test_clean_result_is_summary_only(self):
        result = analyze_source(
            "import numpy as np\n", "src/repro/snippet.py", select={"REP001"}
        )
        assert render_text(result) == "checked 1 file(s): 0 error(s), 0 warning(s)"


class TestJsonReporter:
    def test_output_is_byte_stable_across_runs(self):
        assert render_json(_result()) == render_json(_result())

    def test_schema(self):
        payload = json.loads(render_json(_result()))
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"error": 2, "warning": 0}
        assert [f["line"] for f in payload["findings"]] == [2, 3]
        first = payload["findings"][0]
        assert set(first) == {
            "path",
            "line",
            "column",
            "code",
            "message",
            "severity",
        }
        assert first["code"] == "REP001"
        assert first["severity"] == "error"

    def test_findings_sorted_by_location(self):
        # Order in must not matter: the reporter re-sorts findings.
        payload = json.loads(render_json(_result()))
        locations = [(f["path"], f["line"], f["column"]) for f in payload["findings"]]
        assert locations == sorted(locations)


class TestSarifReporter:
    def test_top_level_shape(self):
        payload = json.loads(render_sarif(_result()))
        assert payload["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        assert len(payload["runs"]) == 1
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-analysis"

    def test_driver_catalogue_covers_every_rule(self):
        payload = json.loads(render_sarif(_result()))
        driver = payload["runs"][0]["tool"]["driver"]
        listed = {rule["id"] for rule in driver["rules"]}
        assert listed == {rule.code for rule in all_rules()}

    def test_results_reference_rules_and_locations(self):
        payload = json.loads(render_sarif(_result()))
        results = payload["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["REP001", "REP001"]
        first = results[0]["locations"][0]["physicalLocation"]
        assert first["artifactLocation"]["uri"] == "src/repro/snippet.py"
        region = first["region"]
        assert region["startLine"] == 2
        # SARIF columns are 1-based; our findings are 0-based.
        assert region["startColumn"] >= 1

    def test_output_is_byte_stable(self):
        assert render_sarif(_result()) == render_sarif(_result())

    def test_clean_result_has_empty_results(self):
        result = analyze_source(
            "import numpy as np\n", "src/repro/snippet.py", select={"REP001"}
        )
        payload = json.loads(render_sarif(result))
        assert payload["runs"][0]["results"] == []
