"""Text and JSON reporter output, including byte-stability of the JSON."""

from __future__ import annotations

import json

from repro.analysis import (
    REPORT_SCHEMA_VERSION,
    analyze_source,
    render_json,
    render_text,
)

BAD_SOURCE = (
    "import numpy as np\n"
    "rng = np.random.default_rng(1)\n"
    "other = np.random.default_rng(2)\n"
)


def _result():
    return analyze_source(BAD_SOURCE, "src/repro/snippet.py", select={"REP001"})


class TestTextReporter:
    def test_locations_and_summary(self):
        text = render_text(_result())
        lines = text.splitlines()
        assert lines[0].startswith("src/repro/snippet.py:2:")
        assert "REP001" in lines[0]
        assert "[error]" in lines[0]
        assert lines[-1] == "checked 1 file(s): 2 error(s), 0 warning(s)"

    def test_clean_result_is_summary_only(self):
        result = analyze_source(
            "import numpy as np\n", "src/repro/snippet.py", select={"REP001"}
        )
        assert render_text(result) == "checked 1 file(s): 0 error(s), 0 warning(s)"


class TestJsonReporter:
    def test_output_is_byte_stable_across_runs(self):
        assert render_json(_result()) == render_json(_result())

    def test_schema(self):
        payload = json.loads(render_json(_result()))
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"error": 2, "warning": 0}
        assert [f["line"] for f in payload["findings"]] == [2, 3]
        first = payload["findings"][0]
        assert set(first) == {
            "path",
            "line",
            "column",
            "code",
            "message",
            "severity",
        }
        assert first["code"] == "REP001"
        assert first["severity"] == "error"

    def test_findings_sorted_by_location(self):
        # Order in must not matter: the reporter re-sorts findings.
        payload = json.loads(render_json(_result()))
        locations = [(f["path"], f["line"], f["column"]) for f in payload["findings"]]
        assert locations == sorted(locations)
