"""Incremental cache: content-hash keys, fingerprint scoping, corruption."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.cache import (
    AnalysisCache,
    file_sha,
    ruleset_fingerprint,
    tree_sha,
)

CLEAN = "def documented():\n    \"\"\"Fine.\"\"\"\n    return 1\n"
BAD_SEED = "import numpy\nseed = 42\nnumpy.random.seed(seed)\n"


def _write_tree(root: Path) -> None:
    pkg = root / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(CLEAN)
    (pkg / "seeded.py").write_text(BAD_SEED)


def _run(root: Path, cache_dir: Path, **kwargs):
    return analyze_paths(
        ["src"],
        root=root,
        config=AnalysisConfig(),
        cache_dir=cache_dir,
        **kwargs,
    )


class TestHashes:
    def test_file_sha_is_content_keyed(self):
        assert file_sha("a = 1\n") == file_sha("a = 1\n")
        assert file_sha("a = 1\n") != file_sha("a = 2\n")

    def test_tree_sha_order_independent(self):
        a = tree_sha({"x.py": "s1", "y.py": "s2"})
        b = tree_sha({"y.py": "s2", "x.py": "s1"})
        assert a == b
        assert a != tree_sha({"x.py": "s1", "y.py": "OTHER"})

    def test_fingerprint_varies_with_selection(self):
        config = AnalysisConfig()
        assert ruleset_fingerprint(config, None) != ruleset_fingerprint(
            config, {"REP001"}
        )

    def test_fingerprint_varies_with_config(self):
        from repro.analysis.config import RuleConfig

        base = AnalysisConfig()
        tweaked = AnalysisConfig(
            rules={"REP001": RuleConfig(options={"custom": True})}
        )
        assert ruleset_fingerprint(base, None) != ruleset_fingerprint(
            tweaked, None
        )


class TestWarmRuns:
    def test_warm_run_reproduces_findings(self, tmp_path):
        _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"

        cold = _run(tmp_path, cache_dir)
        warm = _run(tmp_path, cache_dir)

        assert cold.cache_misses > 0 and cold.cache_hits == 0
        # Warm hits cover every file plus the project-pass entry.
        assert warm.cache_hits == warm.files_checked + 1
        assert warm.cache_misses == 0
        key = lambda f: (f.path, f.line, f.code)  # noqa: E731
        assert sorted(map(key, warm.findings)) == sorted(
            map(key, cold.findings)
        )
        assert warm.suppressed == cold.suppressed

    def test_content_change_invalidates_one_file(self, tmp_path):
        _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        _run(tmp_path, cache_dir)

        target = tmp_path / "src" / "repro" / "seeded.py"
        target.write_text(CLEAN)
        warm = _run(tmp_path, cache_dir)

        # The edited file misses, and so does the project-pass entry
        # (its key is the tree hash); the untouched file still hits.
        assert warm.cache_misses == 2
        assert warm.cache_hits == warm.files_checked - 1
        assert not [f for f in warm.findings if f.path.endswith("seeded.py")]

    def test_selection_change_misses_everything(self, tmp_path):
        # A different rule selection is a different fingerprint, so the
        # previous run's entries must not be reused.
        _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        _run(tmp_path, cache_dir)

        narrowed = _run(tmp_path, cache_dir, select={"REP001"})
        assert narrowed.cache_hits == 0


class TestRobustness:
    def _index_path(self, cache_dir: Path) -> Path:
        files = list(cache_dir.glob("*.json"))
        assert len(files) == 1
        return files[0]

    def test_corrupt_index_is_ignored(self, tmp_path):
        _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        _run(tmp_path, cache_dir)

        self._index_path(cache_dir).write_text("{not json")
        warm = _run(tmp_path, cache_dir)
        assert warm.cache_hits == 0 and warm.exit_code in (0, 1)

    def test_schema_mismatch_is_ignored(self, tmp_path):
        _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        _run(tmp_path, cache_dir)

        index = self._index_path(cache_dir)
        payload = json.loads(index.read_text())
        payload["schema"] = -1
        index.write_text(json.dumps(payload))
        warm = _run(tmp_path, cache_dir)
        assert warm.cache_hits == 0

    def test_cache_object_roundtrip(self, tmp_path):
        fingerprint = ruleset_fingerprint(AnalysisConfig(), None)
        cache = AnalysisCache(tmp_path / "c", fingerprint)
        cache.put_file("src/x.py", "sha1", [], 0)
        cache.save()

        reopened = AnalysisCache(tmp_path / "c", fingerprint)
        entry = reopened.get_file("src/x.py", "sha1")
        assert entry is not None
        assert entry.findings == [] and entry.suppressed == 0
        assert reopened.get_file("src/x.py", "sha2") is None

        other = AnalysisCache(tmp_path / "c", "other-fingerprint")
        assert other.get_file("src/x.py", "sha1") is None
