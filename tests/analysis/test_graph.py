"""The whole-program substrate: module summaries and the project graph."""

from __future__ import annotations

import ast
import pickle
import textwrap

import pytest

from repro.analysis.graph import module_name_for, summarize_module
from repro.analysis.resolve import ProjectGraph


def _summarize(source: str, rel_path: str):
    return summarize_module(ast.parse(textwrap.dedent(source)), rel_path)


def _graph(sources) -> ProjectGraph:
    infos = [_summarize(src, rel) for rel, src in sources.items()]
    return ProjectGraph.build(infos)


class TestModuleNames:
    @pytest.mark.parametrize(
        "rel_path,expected",
        [
            ("src/repro/parallel/pool.py", "repro.parallel.pool"),
            ("src/repro/kernels/__init__.py", "repro.kernels"),
            ("tests/analysis/test_graph.py", "tests.analysis.test_graph"),
            ("src/repro/rng.py", "repro.rng"),
        ],
    )
    def test_module_name_for(self, rel_path, expected):
        assert module_name_for(rel_path) == expected


class TestSummaries:
    def test_functions_classes_and_calls(self):
        info = _summarize(
            """
            from ..kernels import get_backend

            class Sketch:
                def update(self, keys):
                    get_backend().scatter_add(keys)

            def run(observer=None, *, strict=False, **extra):
                yield 1
            """,
            "src/repro/sketches/demo.py",
        )
        assert info.name == "repro.sketches.demo"
        update = info.functions["Sketch.update"]
        assert update.owner_class == "Sketch"
        run = info.functions["run"]
        assert run.accepts("observer") and run.accepts("strict")
        assert run.has_kwarg and run.is_generator
        # Relative import absolutized against the package.
        assert info.imports["get_backend"] == "repro.kernels.get_backend"
        assert any(c.callee == "repro.kernels.get_backend" for c in info.calls)

    def test_nested_def_and_generator_scoping(self):
        info = _summarize(
            """
            def outer():
                def inner():
                    yield 1
                return inner
            """,
            "src/repro/demo.py",
        )
        assert info.functions["outer"].is_generator is False
        inner = info.functions["outer.inner"]
        assert inner.is_generator is True
        assert inner.parent_function == "outer"

    def test_summaries_are_picklable(self):
        # ModuleInfo crosses the --jobs process pool; it must pickle.
        info = _summarize("def f():\n    return 1\n", "src/repro/demo.py")
        assert pickle.loads(pickle.dumps(info)).name == "repro.demo"


class TestResolution:
    def test_reexport_following(self):
        graph = _graph(
            {
                "src/repro/kernels/__init__.py": (
                    "from .backend import get_backend\n"
                ),
                "src/repro/kernels/backend.py": (
                    "def get_backend():\n    return 1\n"
                ),
            }
        )
        fn = graph.lookup_function("repro.kernels.get_backend")
        assert fn is not None
        assert fn.canonical == "repro.kernels.backend.get_backend"

    def test_method_resolution_walks_bases(self):
        graph = _graph(
            {
                "src/repro/base.py": """
                    class Base:
                        def merge(self, other):
                            return other
                    """,
                "src/repro/derived.py": """
                    from .base import Base

                    class Derived(Base):
                        pass
                    """,
            }
        )
        klass = graph.lookup_class("repro.derived.Derived")
        merge = graph.method(klass, "merge")
        assert merge is not None and merge.module == "repro.base"

    def test_dataclass_constructor_synthesized(self):
        graph = _graph(
            {
                "src/repro/tasks.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class Task:
                        index: int
                        name: str = "x"
                    """,
            }
        )
        ctor = graph.constructor(graph.lookup_class("repro.tasks.Task"))
        assert ctor.positional == ("self", "index", "name")

    def test_reaches_is_transitive(self):
        graph = _graph(
            {
                "src/repro/a.py": """
                    from .b import middle

                    def top():
                        return middle()
                    """,
                "src/repro/b.py": """
                    from .c import bottom

                    def middle():
                        return bottom()
                    """,
                "src/repro/c.py": """
                    def bottom():
                        return 1
                    """,
            }
        )
        top = graph.lookup_function("repro.a.top")
        assert graph.reaches(top, "repro.c.bottom")
        assert not graph.reaches(top, "repro.c.missing")

    def test_callers_of(self):
        graph = _graph(
            {
                "src/repro/lib.py": "def helper():\n    return 1\n",
                "src/repro/app.py": """
                    from .lib import helper

                    def go():
                        return helper()
                    """,
            }
        )
        sites = graph.callers_of("repro.lib.helper")
        assert [site.caller for site in sites] == ["go"]


class TestPickleSafetyQueries:
    def test_unpicklable_direct_and_generic(self):
        graph = _graph(
            {
                "src/repro/demo.py": """
                    import threading
                    from typing import Callable, Optional
                    """,
            }
        )
        module = graph.module("repro.demo")
        assert graph.unpicklable_annotation(module, "threading.Lock")
        assert graph.unpicklable_annotation(module, "Optional[Callable]")
        assert graph.unpicklable_annotation(module, "int") is None
        assert graph.unpicklable_annotation(module, "dict[str, float]") is None

    def test_recurses_through_dataclass_fields(self):
        graph = _graph(
            {
                "src/repro/inner.py": """
                    from dataclasses import dataclass
                    from typing import Callable

                    @dataclass
                    class Step:
                        fn: Callable
                    """,
                "src/repro/outer.py": """
                    from dataclasses import dataclass
                    from .inner import Step

                    @dataclass
                    class Plan:
                        step: Step
                    """,
            }
        )
        module = graph.module("repro.outer")
        reason = graph.unpicklable_annotation(module, "Plan")
        assert reason is not None and "Step" in reason

    def test_unknown_types_are_not_flagged(self):
        graph = _graph({"src/repro/demo.py": "import numpy as np\n"})
        module = graph.module("repro.demo")
        assert graph.unpicklable_annotation(module, "np.ndarray") is None
        assert graph.unpicklable_annotation(module, "SomethingElse") is None
