"""Sketch diagnostics: occupancy, contention, row spread."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sketches import FagmsSketch
from repro.sketches.diagnostics import (
    bucket_occupancy,
    contention_report,
    row_spread,
)
from repro.streams import zipf_relation


def test_occupancy_counts_distinct_keys_once():
    sketch = FagmsSketch(buckets=8, rows=1, seed=1)
    occupancy = bucket_occupancy(sketch, np.array([3, 3, 3, 5]))
    assert occupancy.sum() == 2  # two distinct keys
    assert occupancy.size == 8


def test_occupancy_matches_hash_assignment():
    sketch = FagmsSketch(buckets=16, rows=2, seed=2)
    keys = np.arange(40)
    for row in (0, 1):
        occupancy = bucket_occupancy(sketch, keys, row=row)
        buckets = sketch._bucket_hash.evaluate_row(row, keys)
        assert np.array_equal(occupancy, np.bincount(buckets, minlength=16))


class TestContentionReport:
    def test_counts(self):
        sketch = FagmsSketch(buckets=4, rows=1, seed=3)
        report = contention_report(sketch, np.arange(12))
        assert report.distinct_keys == 12
        assert report.buckets == 4
        assert report.load_factor == pytest.approx(3.0)
        assert report.mean_occupancy == pytest.approx(3.0)
        # Σ occupancy = 12 split over 4 buckets; pairs depends on split but
        # is minimized at 3+3+3+3 (12 pairs) and maximized at 12+0+0+0 (66).
        assert 12 <= report.collision_pairs <= 66

    def test_no_contention_when_buckets_dominate(self):
        sketch = FagmsSketch(buckets=4096, rows=1, seed=4)
        report = contention_report(sketch, np.arange(20))
        assert report.max_occupancy <= 2
        assert report.collision_pairs <= 2
        assert report.load_factor < 0.01

    def test_collision_pairs_grow_with_load(self):
        keys = np.arange(2_000)
        small = contention_report(FagmsSketch(64, rows=1, seed=5), keys)
        large = contention_report(FagmsSketch(4_096, rows=1, seed=5), keys)
        assert small.collision_pairs > 20 * large.collision_pairs


class TestRowSpread:
    def test_requires_two_rows(self):
        with pytest.raises(ConfigurationError):
            row_spread(FagmsSketch(buckets=8, rows=1, seed=6))

    def test_zero_for_empty_sketch(self):
        assert row_spread(FagmsSketch(buckets=8, rows=3, seed=7)) == 0.0

    def test_spread_shrinks_with_buckets(self):
        relation = zipf_relation(30_000, 3_000, 1.0, seed=8)
        spreads = {}
        for buckets in (16, 2_048):
            sketch = FagmsSketch(buckets=buckets, rows=5, seed=9)
            sketch.update(relation.keys)
            spreads[buckets] = row_spread(sketch)
        assert spreads[2_048] < spreads[16]
