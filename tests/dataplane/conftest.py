"""Shared fixtures for the dataplane suite.

``REPRO_CHAOS_SEEDS`` widens the seeded-chaos pipeline matrix exactly as
it does for the resilience suite (CI sets 3; 2 keeps local runs quick).
"""

from __future__ import annotations

import os

import numpy as np
import pytest


def pytest_generate_tests(metafunc):
    """Parametrize ``chaos_seed`` over the configured seed matrix."""
    if "chaos_seed" in metafunc.fixturenames:
        count = int(os.environ.get("REPRO_CHAOS_SEEDS", "2"))
        metafunc.parametrize("chaos_seed", range(count))


@pytest.fixture
def stream_chunks() -> list:
    """A deterministic 20-chunk stream of skewed keys."""
    rng = np.random.default_rng(0xDA7A)
    return [
        rng.zipf(1.3, size=300).clip(0, 999).astype(np.int64) for _ in range(20)
    ]
