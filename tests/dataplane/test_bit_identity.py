"""Bit-identity: a file-backed pipeline equals the lockstep scan.

The acceptance bar from the ISSUE: ``Pipeline(file -> sketch)`` must be
**bit-identical** to the equivalent :func:`run_lockstep_scan` — across
every kernel backend, for every sketch type, with and without a shed
stage.  Integer counter deltas add exactly, so chunking must not matter.
"""

import numpy as np
import pytest

from repro.core.load_shedding import LoadShedder
from repro.dataplane import (
    CheckpointSink,
    CollectSink,
    EngineOperator,
    FileSource,
    Pipeline,
    RegistrySink,
    ShedOperator,
    SketchUpdateOperator,
)
from repro.engine import OnlineStatisticsEngine, run_lockstep_scan
from repro.kernels import native_available, use_backend
from repro.resilience import CheckpointManager
from repro.serving import SketchRegistry
from repro.sketches import AgmsSketch, CountMinSketch, FagmsSketch
from repro.streams import Relation
from repro.streams.io import write_stream

FAST_BACKENDS = ["numpy"] + (["native"] if native_available() else [])
ALL_BACKENDS = ["reference"] + FAST_BACKENDS

N = 1000
DOMAIN = 128


@pytest.fixture
def keys():
    return np.asarray(np.random.default_rng(101).integers(0, DOMAIN, N))


@pytest.fixture
def stream_file(tmp_path, keys):
    path = tmp_path / "stream.bin"
    write_stream(path, [keys], DOMAIN)
    return path


def _sketch_factories():
    return {
        "agms": lambda: AgmsSketch(64, seed=111),
        "fagms": lambda: FagmsSketch(256, 5, seed=112),
        "countmin": lambda: CountMinSketch(256, 3, seed=113),
    }


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("kind", ["agms", "fagms", "countmin"])
def test_pipeline_sketch_counters_match_direct_update(
    backend, kind, stream_file, keys
):
    make = _sketch_factories()[kind]
    with use_backend(backend):
        direct = make()
        direct.update(keys)
        piped = make()
        Pipeline(
            FileSource(stream_file, 64),
            ShedOperator(1.0, seed=114),  # p = 1: present but inert
            SketchUpdateOperator(piped),
            queue_depth=0,
        ).run()
    assert np.array_equal(piped.counters, direct.counters)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_pipeline_engine_scan_matches_run_lockstep_scan(
    backend, tmp_path, stream_file, keys
):
    relation = Relation(keys, DOMAIN, name="flows")
    with use_backend(backend):
        reference = OnlineStatisticsEngine(buckets=512, seed=121)
        snapshots = list(
            run_lockstep_scan(
                reference, {"flows": relation}, checkpoints=(0.25, 1.0)
            )
        )
        assert len(snapshots) == 2

        piped = OnlineStatisticsEngine(buckets=512, seed=121)
        piped.register("flows", N)
        registry = SketchRegistry(buckets=256, seed=122)
        registry.register_stream("flows", N)
        pipeline = Pipeline(
            FileSource(stream_file, 96),
            ShedOperator(1.0, seed=123),
            EngineOperator(piped, "flows"),
            sinks=[
                CheckpointSink(
                    tmp_path / "ckpt", piped.checkpoint_state, every=4
                ),
                RegistrySink(registry, "flows"),
            ],
            queue_depth=0,
        )
        pipeline.run()

    ref_state, ref_arrays = reference.checkpoint_state()
    piped_state, piped_arrays = piped.checkpoint_state()
    assert set(ref_arrays) == set(piped_arrays)
    for name in ref_arrays:
        assert np.array_equal(ref_arrays[name], piped_arrays[name]), name
    assert (
        piped.snapshot().self_join_size("flows")
        == reference.snapshot().self_join_size("flows")
    )
    # The ride-along sinks saw the same stream: the durable checkpoint
    # holds the engine's exact counters, and the registry's rotated
    # snapshot serves the exact same estimate.
    latest = CheckpointManager(tmp_path / "ckpt").latest()
    restored = OnlineStatisticsEngine.from_checkpoint_state(
        latest.state, latest.arrays
    )
    assert (
        restored.snapshot().self_join_size("flows")
        == reference.snapshot().self_join_size("flows")
    )


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_backends_agree_with_reference_through_the_pipeline(
    backend, stream_file
):
    def counters(name):
        with use_backend(name):
            sketch = FagmsSketch(128, 7, seed=131)
            Pipeline(
                FileSource(stream_file, 100),
                SketchUpdateOperator(sketch),
                queue_depth=0,
            ).run()
            return sketch.counters

    assert np.array_equal(counters(backend), counters("reference"))


def test_shed_operator_matches_manual_chunked_shedding(stream_file, keys):
    # At a given chunk size, the pipeline's shed stage is bit-identical
    # to hand-feeding a LoadShedder the same chunks with the same seed:
    # the skip-ahead state carries across envelope boundaries.
    for chunk_size in (37, 250, N):
        shedder = LoadShedder(0.4, seed=141)
        survivors = np.concatenate(
            [
                shedder.filter(keys[i : i + chunk_size])
                for i in range(0, N, chunk_size)
            ]
        )
        shed = CollectSink()
        Pipeline(
            FileSource(stream_file, chunk_size),
            ShedOperator(0.4, seed=141),
            sinks=[shed],
            queue_depth=0,
        ).run()
        assert np.array_equal(shed.keys(), survivors), chunk_size


def test_threaded_pipeline_is_bit_identical_to_sync(stream_file):
    def counters(queue_depth):
        sketch = FagmsSketch(128, 5, seed=151)
        Pipeline(
            FileSource(stream_file, 64),
            ShedOperator(0.7, seed=152),
            SketchUpdateOperator(sketch),
            queue_depth=queue_depth,
        ).run()
        return sketch.counters

    assert np.array_equal(counters(0), counters(4))
