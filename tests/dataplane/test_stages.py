"""Operators and sinks: per-stage contracts (reseal, cursor, flush)."""

import json

import numpy as np
import pytest

from repro.core.load_shedding import LoadShedder, SheddingSketcher
from repro.dataplane import (
    Branch,
    CallbackSink,
    CheckpointSink,
    CollectSink,
    EngineOperator,
    FilterOperator,
    KeyPartitionOperator,
    MapOperator,
    ObserverExportSink,
    RegistrySink,
    ShedOperator,
    SketchUpdateOperator,
    SketcherSink,
    TeeOperator,
)
from repro.engine import OnlineStatisticsEngine
from repro.errors import ConfigurationError, StreamIntegrityError
from repro.observability import Observer
from repro.parallel.partition import shard_ids
from repro.resilience import (
    AdaptiveSheddingSketcher,
    CheckpointManager,
    make_envelope,
    verify_payload,
)
from repro.serving import SketchRegistry
from repro.sketches import FagmsSketch


def _envelope(sequence=0, n=32, seed=0):
    return make_envelope(
        sequence, np.asarray(np.random.default_rng(seed).integers(0, 100, n))
    )


class TestOperators:
    def test_filter_reseals_survivors_under_same_sequence(self):
        envelope = _envelope(sequence=3)
        (out,) = FilterOperator(lambda keys: keys % 2 == 0).process(envelope)
        assert out.sequence == 3
        survivors = verify_payload(out)
        assert np.array_equal(
            survivors, np.asarray(envelope.keys)[np.asarray(envelope.keys) % 2 == 0]
        )

    def test_filter_rejects_misshapen_mask(self):
        with pytest.raises(ConfigurationError):
            list(FilterOperator(lambda keys: keys[:2] > 0).process(_envelope()))

    def test_map_rewrites_and_reseals(self):
        envelope = _envelope(sequence=1)
        (out,) = MapOperator(lambda keys: keys * 2).process(envelope)
        assert out.sequence == 1
        assert np.array_equal(verify_payload(out), np.asarray(envelope.keys) * 2)

    def test_shed_at_full_rate_passes_through_without_rng(self):
        envelope = _envelope()
        shed = ShedOperator(1.0, seed=11)
        (out,) = shed.process(envelope)
        assert out is envelope  # untouched, not resealed
        assert shed.last_kept == envelope.count
        # The RNG was not consumed: after dropping to p < 1, survivors
        # match a fresh shedder that never saw the p = 1 prefix.
        shed.set_rate(0.5)
        baseline = LoadShedder(0.5, seed=11)
        batch = np.asarray(_envelope(seed=5, n=64).keys)
        assert np.array_equal(
            np.asarray(next(iter(shed.process(make_envelope(1, batch)))).keys),
            baseline.filter(batch),
        )

    def test_shed_below_full_rate_matches_load_shedder(self):
        batch = np.asarray(_envelope(seed=6, n=128).keys)
        shed = ShedOperator(0.3, seed=21)
        (out,) = shed.process(make_envelope(0, batch))
        assert np.array_equal(
            verify_payload(out), LoadShedder(0.3, seed=21).filter(batch)
        )
        assert shed.seen == 128
        assert shed.kept == out.count

    def test_sketch_update_feeds_sketch_and_forwards(self):
        sketch = FagmsSketch(64, 3, seed=31)
        mirror = FagmsSketch(64, 3, seed=31)
        operator = SketchUpdateOperator(sketch)
        envelope = _envelope()
        (out,) = operator.process(envelope)
        assert out is envelope
        mirror.update(np.asarray(envelope.keys))
        assert np.array_equal(sketch.counters, mirror.counters)
        assert operator.tuples == envelope.count

    def test_engine_operator_consumes_one_relation(self):
        engine = OnlineStatisticsEngine(buckets=128, seed=41)
        engine.register("flows", 32)
        operator = EngineOperator(engine, "flows")
        envelope = _envelope()
        (out,) = operator.process(envelope)
        assert out is envelope
        assert engine.scanned_tuples("flows") == envelope.count

    def test_tee_copies_to_targets_and_forwards(self):
        side = CollectSink()
        tee = TeeOperator(side)
        envelope = _envelope()
        (out,) = tee.process(envelope)
        assert out is envelope
        assert np.array_equal(side.keys(), np.asarray(envelope.keys))
        assert list(tee.flush()) == []

    def test_tee_requires_a_target(self):
        with pytest.raises(ConfigurationError):
            TeeOperator()

    def test_partition_matches_shard_ids_and_keeps_cursors_contiguous(self):
        branches = [CollectSink(), CollectSink(), CollectSink()]
        operator = KeyPartitionOperator(branches)
        envelopes = [_envelope(sequence=i, seed=i, n=50) for i in range(4)]
        for envelope in envelopes:
            (out,) = operator.process(envelope)
            assert out is envelope
        operator.flush()
        for shard, branch in enumerate(branches):
            # Every sequence reached every branch (possibly empty) ...
            assert branch.position == len(envelopes)
            # ... carrying exactly the splitmix64-assigned keys.
            expected = np.concatenate(
                [
                    np.asarray(e.keys)[
                        shard_ids(np.asarray(e.keys), len(branches)) == shard
                    ]
                    for e in envelopes
                ]
            )
            assert np.array_equal(branch.keys(), expected)
        total = sum(int(branch.tuples) for branch in branches)
        assert total == sum(e.count for e in envelopes)


class TestSinkCursor:
    def test_duplicates_are_skipped(self):
        sink = CollectSink()
        envelope = _envelope()
        assert sink.accept(envelope) == envelope.count
        assert sink.accept(envelope) == 0
        assert sink.duplicates == 1
        assert len(sink.chunks) == 1

    def test_gaps_raise(self):
        sink = CollectSink()
        with pytest.raises(StreamIntegrityError):
            sink.accept(_envelope(sequence=2))

    def test_start_offset_resumes_mid_stream(self):
        sink = CollectSink(start=2)
        assert sink.accept(_envelope(sequence=1)) == 0  # replayed prefix
        assert sink.accept(_envelope(sequence=2)) > 0


class TestSinks:
    def test_callback_sink_invokes_fn_and_flush(self):
        seen, flushed = [], []
        sink = CallbackSink(seen.append, on_flush=lambda: flushed.append(True))
        envelope = _envelope()
        sink.accept(envelope)
        sink.flush()
        assert seen == [envelope]
        assert flushed == [True]

    def test_sketcher_sink_terminates_in_a_shedding_sketcher(self):
        sketcher = SheddingSketcher(FagmsSketch(64, 3, seed=51), 0.5, seed=52)
        sink = SketcherSink(sketcher)
        envelope = _envelope(n=100)
        sink.accept(envelope)
        assert 0 < sink.kept <= 100
        assert sink.last_kept == sink.kept
        # A plain SheddingSketcher has no rate accessors: the sink must
        # not claim retunability it cannot deliver.
        assert not hasattr(sink, "rate")

    def test_sketcher_sink_exposes_adaptive_rate_controls(self):
        sink = SketcherSink(
            AdaptiveSheddingSketcher(FagmsSketch(64, 3, seed=53), 0.8, seed=54)
        )
        assert sink.rate == 0.8
        sink.set_rate(0.25)
        assert sink.rate == 0.25

    def test_checkpoint_sink_cadence_and_final_flush(self, tmp_path):
        sketch = FagmsSketch(32, 2, seed=61)
        sink = CheckpointSink(
            tmp_path, lambda: ({"note": "t"}, {"counters": sketch.counters}), every=2
        )
        for sequence in range(5):
            sink.accept(_envelope(sequence=sequence, seed=sequence))
        assert sink.written == 2  # after envelopes 2 and 4
        sink.flush()
        assert sink.written == 3  # the tail envelope
        sink.flush()
        assert sink.written == 3  # nothing new: no extra snapshot
        latest = CheckpointManager(tmp_path).latest()
        assert latest.position == 5
        assert np.array_equal(latest.arrays["counters"], sketch.counters)

    def test_checkpoint_sink_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointSink(tmp_path, lambda: ({}, {}), every=0)

    def test_registry_sink_rotates_on_flush(self):
        registry = SketchRegistry(buckets=256, seed=71)
        registry.register_stream("flows", 200)
        sink = RegistrySink(registry, "flows")
        keys = np.asarray(np.random.default_rng(72).integers(0, 50, 200))
        sink.accept(make_envelope(0, keys))
        sink.flush()
        assert sink.rotations >= 1
        assert registry.self_join_query("flows").estimate > 0

    def test_observer_export_sink_writes_metrics_jsonl(self, tmp_path):
        observer = Observer()
        observer.counter("dataplane.chunks.accepted").inc(3)
        path = tmp_path / "metrics.jsonl"
        sink = ObserverExportSink(observer, path)
        sink.accept(_envelope())
        sink.flush()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(
            record["name"].endswith("dataplane.chunks.accepted")
            for record in records
        )
        sink.flush()  # second export appends instead of clobbering
        assert len(path.read_text().splitlines()) == 2 * len(records)


class TestBranch:
    def test_branch_chains_operators_into_sinks(self):
        collect = CollectSink()
        branch = Branch(FilterOperator(lambda keys: keys > 10), sinks=[collect])
        envelope = _envelope(n=64)
        branch.accept(envelope)
        branch.flush()
        keys = np.asarray(envelope.keys)
        assert np.array_equal(collect.keys(), keys[keys > 10])

    def test_branch_needs_a_stage(self):
        with pytest.raises(ConfigurationError):
            Branch()
