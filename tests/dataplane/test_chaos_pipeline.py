"""Seeded chaos through a pipeline: replay converges bit-identically.

The injector's faults are transient (each sequence draws its fault once);
re-running the SAME :class:`Pipeline` object replays the source, the head
cursor skips the already-applied prefix as duplicates, and the re-delivered
chunk arrives clean.  The surviving sketch must match a fault-free run
bit for bit — including through a shed stage, whose RNG must never see a
replayed chunk twice.
"""

import numpy as np
import pytest

from repro.dataplane import (
    IterableSource,
    Pipeline,
    ShedOperator,
    SketchUpdateOperator,
)
from repro.errors import StreamIntegrityError
from repro.resilience.chaos import ChaosInjector, SimulatedCrash
from repro.sketches import FagmsSketch

MAX_ATTEMPTS = 100


def _clean_counters(stream_chunks, *, p):
    sketch = FagmsSketch(buckets=64, rows=3, seed=161)
    Pipeline(
        IterableSource(stream_chunks),
        ShedOperator(p, seed=162),
        SketchUpdateOperator(sketch),
        queue_depth=0,
    ).run()
    return sketch.counters


def _run_until_complete(pipeline, expected_chunks):
    attempts = 0
    while True:
        attempts += 1
        assert attempts <= MAX_ATTEMPTS, "chaos replay did not converge"
        try:
            pipeline.run()
        except (StreamIntegrityError, SimulatedCrash):
            continue
        if pipeline.position >= expected_chunks:
            return attempts


@pytest.mark.parametrize("p", [1.0, 0.4])
@pytest.mark.parametrize("queue_depth", [0, 4])
def test_chaos_pipeline_matches_fault_free_run(
    chaos_seed, p, queue_depth, stream_chunks
):
    expected = _clean_counters(stream_chunks, p=p)
    injector = ChaosInjector(
        2000 + chaos_seed,
        crash_rate=0.08,
        truncate_rate=0.08,
        duplicate_rate=0.10,
        max_faults=25,
    )
    sketch = FagmsSketch(buckets=64, rows=3, seed=161)
    pipeline = Pipeline(
        IterableSource(stream_chunks),
        ShedOperator(p, seed=162),
        SketchUpdateOperator(sketch),
        chaos=injector,
        queue_depth=queue_depth,
    )
    attempts = _run_until_complete(pipeline, len(stream_chunks))
    assert pipeline.position == len(stream_chunks)
    assert np.array_equal(sketch.counters, expected)
    if queue_depth == 0:
        # Synchronously, faults manifest in consumption order: each crash
        # or torn chunk forces exactly one replay, while benign duplicate
        # faults are absorbed in-stream by the head cursor.  (Threaded,
        # the producer's read-ahead can decide faults on envelopes a
        # teardown then drops, so only convergence is exact.)
        disruptive = injector.faults["crash"] + injector.faults["truncate"]
        assert attempts == disruptive + 1
        if injector.faults["duplicate"]:
            assert pipeline.duplicates >= injector.faults["duplicate"]


def test_duplicate_faults_never_touch_the_shedder(stream_chunks):
    # A duplicate-only schedule completes in one run() and still matches
    # the fault-free counters: replayed chunks are skipped at the head,
    # upstream of the shed stage's RNG.
    expected = _clean_counters(stream_chunks, p=0.5)
    injector = ChaosInjector(7, duplicate_rate=0.5)
    sketch = FagmsSketch(buckets=64, rows=3, seed=161)
    result = Pipeline(
        IterableSource(stream_chunks),
        ShedOperator(0.5, seed=162),
        SketchUpdateOperator(sketch),
        chaos=injector,
        queue_depth=0,
    ).run()
    assert injector.faults["duplicate"] > 0
    assert result.duplicates == injector.faults["duplicate"]
    assert np.array_equal(sketch.counters, expected)
