"""BoundedQueue: the backpressure primitive in isolation."""

import threading

import pytest

from repro.dataplane import BoundedQueue, CLOSED, QueueAborted
from repro.errors import ConfigurationError
from repro.resilience import ManualClock


def test_rejects_nonpositive_capacity():
    with pytest.raises(ConfigurationError):
        BoundedQueue(0)
    with pytest.raises(ConfigurationError):
        BoundedQueue(-3)


def test_fifo_order():
    queue = BoundedQueue(8)
    for value in range(5):
        queue.put(value)
    assert [queue.get() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_get_returns_closed_after_drain():
    queue = BoundedQueue(4)
    queue.put("only")
    queue.close()
    assert queue.get() == "only"
    assert queue.get() is CLOSED
    assert queue.get() is CLOSED  # stays closed


def test_put_on_closed_queue_is_a_programming_error():
    queue = BoundedQueue(4)
    queue.close()
    with pytest.raises(ConfigurationError):
        queue.put(1)


def test_put_blocks_at_capacity_until_consumer_drains():
    queue = BoundedQueue(2)
    queue.put(0)
    queue.put(1)
    entered = threading.Event()

    def overfill():
        entered.set()
        queue.put(2)  # blocks until a get() frees a slot

    producer = threading.Thread(target=overfill, daemon=True)
    producer.start()
    assert entered.wait(timeout=5.0)
    # The producer is parked on the full queue; depth never exceeds
    # capacity from the consumer's point of view.
    assert queue.depth == 2
    assert queue.get() == 0
    producer.join(timeout=5.0)
    assert not producer.is_alive()
    assert [queue.get(), queue.get()] == [1, 2]
    assert queue.high_watermark == 2


def test_abort_wakes_blocked_producer():
    queue = BoundedQueue(1)
    queue.put("stuck")
    outcome = []

    def overfill():
        try:
            queue.put("never")
        except QueueAborted:
            outcome.append("aborted")

    producer = threading.Thread(target=overfill, daemon=True)
    producer.start()
    queue.abort()
    producer.join(timeout=5.0)
    assert outcome == ["aborted"]
    # Buffered items are dropped; the consumer sees immediate CLOSED.
    assert queue.get() is CLOSED


def test_high_watermark_is_bounded_by_capacity():
    queue = BoundedQueue(3)
    for value in range(3):
        queue.put(value)
    for _ in range(3):
        queue.get()
    for value in range(2):
        queue.put(value)
    assert queue.high_watermark == 3
    assert queue.high_watermark <= queue.capacity


def test_wait_ewmas_track_the_injected_clock():
    clock = ManualClock()
    queue = BoundedQueue(4, clock=clock)
    queue.put("a")
    queue.get()
    # Nothing blocked and the manual clock never advanced: both waits
    # observed exactly zero seconds.
    assert queue.put_wait.value == 0.0
    assert queue.get_wait.value == 0.0
