"""Pipeline semantics: cursor, governor wiring, threading, observability."""

import numpy as np
import pytest

from repro.dataplane import (
    CollectSink,
    FileSource,
    IterableSource,
    Pipeline,
    RuntimeSink,
    ShedOperator,
    SketchUpdateOperator,
    SketcherSink,
)
from repro.core.load_shedding import SheddingSketcher
from repro.errors import ConfigurationError, StreamIntegrityError
from repro.observability import Observer
from repro.resilience import (
    AdaptiveSheddingSketcher,
    ChunkEnvelope,
    LoadGovernor,
    ManualClock,
    StreamRuntime,
    make_envelope,
)
from repro.sketches import FagmsSketch
from repro.streams.io import write_stream


def _chunks(seed, count=6, size=50):
    rng = np.random.default_rng(seed)
    return [np.asarray(rng.integers(0, 200, size)) for _ in range(count)]


def test_sync_run_delivers_the_whole_stream_in_order(tmp_path):
    chunks = _chunks(1)
    path = tmp_path / "stream.bin"
    write_stream(path, chunks, 1000)
    collect = CollectSink()
    result = Pipeline(FileSource(path, 50), sinks=[collect], queue_depth=0).run()
    assert result.envelopes == len(chunks)
    assert result.tuples_in == result.tuples_out == 300
    assert result.duplicates == 0
    assert result.max_queue_depth == 0  # synchronous: no queue at all
    assert np.array_equal(collect.keys(), np.concatenate(chunks))


def test_threaded_run_matches_sync_run(tmp_path):
    chunks = _chunks(2, count=12)
    path = tmp_path / "stream.bin"
    write_stream(path, chunks, 1000)
    sync, threaded = CollectSink(), CollectSink()
    Pipeline(FileSource(path, 50), sinks=[sync], queue_depth=0).run()
    result = Pipeline(FileSource(path, 50), sinks=[threaded], queue_depth=3).run()
    assert np.array_equal(threaded.keys(), sync.keys())
    assert result.max_queue_depth <= 3


def test_duplicates_are_skipped_before_operators():
    chunks = _chunks(3, count=4)
    sealed = [make_envelope(i, chunk) for i, chunk in enumerate(chunks)]
    replayed = [sealed[0], sealed[1], sealed[0], sealed[1], sealed[2], sealed[3]]

    def shed_pipeline(envelopes):
        sketch = FagmsSketch(128, 3, seed=33)
        pipeline = Pipeline(
            IterableSource(envelopes),
            ShedOperator(0.5, seed=34),
            SketchUpdateOperator(sketch),
            queue_depth=0,
        )
        return pipeline.run(), sketch

    clean_result, clean_sketch = shed_pipeline(sealed)
    replay_result, replay_sketch = shed_pipeline(replayed)
    assert replay_result.duplicates == 2
    assert replay_result.envelopes == clean_result.envelopes
    # Replays never reach the shedder, so its RNG stream — and the
    # resulting counters — are bit-identical to the clean run.
    assert np.array_equal(replay_sketch.counters, clean_sketch.counters)


def test_head_cursor_survives_across_runs():
    chunks = _chunks(4)
    collect = CollectSink()
    pipeline = Pipeline(IterableSource(chunks), sinks=[collect], queue_depth=0)
    first = pipeline.run()
    second = pipeline.run()  # same source replayed end to end
    assert first.envelopes == len(chunks)
    assert second.envelopes == 0
    assert second.duplicates == len(chunks)
    assert np.array_equal(collect.keys(), np.concatenate(chunks))


def test_gap_raises():
    envelopes = [make_envelope(0, np.arange(4)), make_envelope(2, np.arange(4))]
    pipeline = Pipeline(
        IterableSource(envelopes), sinks=[CollectSink()], queue_depth=0
    )
    with pytest.raises(StreamIntegrityError):
        pipeline.run()


def test_payload_verification_at_the_head():
    good = make_envelope(0, np.arange(8))
    truncated = ChunkEnvelope(
        sequence=1, keys=np.arange(3), count=8, crc32=good.crc32
    )
    pipeline = Pipeline(
        IterableSource([good, truncated]), sinks=[CollectSink()], queue_depth=0
    )
    with pytest.raises(StreamIntegrityError):
        pipeline.run()


def test_producer_failure_propagates_in_threaded_mode():
    def broken():
        yield make_envelope(0, np.arange(4))
        raise OSError("source died")

    pipeline = Pipeline(
        IterableSource(broken()), sinks=[CollectSink()], queue_depth=2
    )
    with pytest.raises(OSError, match="source died"):
        pipeline.run()


def test_governor_retunes_the_shed_stage():
    clock = ManualClock()
    shed = ShedOperator(1.0, seed=44)
    collect = CollectSink()
    governor = LoadGovernor(0.001, smoothing=1.0)

    def slow(envelope):
        clock.advance(1.0)  # every chunk costs 1s against a 1ms budget

    from repro.dataplane import CallbackSink

    pipeline = Pipeline(
        IterableSource(_chunks(5)),
        shed,
        sinks=[CallbackSink(slow), collect],
        governor=governor,
        clock=clock,
        queue_depth=0,
    )
    result = pipeline.run()
    assert pipeline.retune is shed
    assert result.retunes >= 1
    assert shed.rate < 1.0  # the governor pulled the keep-rate down


def test_governor_finds_a_retunable_sink():
    sink = SketcherSink(
        AdaptiveSheddingSketcher(FagmsSketch(64, 2, seed=45), 1.0, seed=46)
    )
    pipeline = Pipeline(
        IterableSource(_chunks(6)),
        sinks=[sink],
        governor=LoadGovernor(1.0),
        queue_depth=0,
    )
    assert pipeline.retune is sink


def test_governor_without_retunable_stage_is_rejected():
    with pytest.raises(ConfigurationError):
        Pipeline(
            IterableSource([]),
            sinks=[CollectSink()],
            governor=LoadGovernor(1.0),
        )


def test_explicit_retune_stage_must_honour_the_contract():
    with pytest.raises(ConfigurationError):
        Pipeline(IterableSource([]), sinks=[CollectSink()], retune=object())


def test_plain_shedding_sketcher_is_not_retunable():
    # SheddingSketcher has no rate accessors; the pipeline must neither
    # auto-discover it nor let a governor drive it.
    sink = SketcherSink(SheddingSketcher(FagmsSketch(64, 2, seed=47), 0.5, seed=48))
    with pytest.raises(ConfigurationError):
        Pipeline(
            IterableSource([]),
            sinks=[sink],
            governor=LoadGovernor(1.0),
        )


def test_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        Pipeline(IterableSource([]), queue_depth=-1)
    with pytest.raises(ConfigurationError):
        Pipeline(IterableSource([]), start=-1)


def test_observer_receives_dataplane_metrics():
    observer = Observer()
    chunks = _chunks(7, count=3)
    Pipeline(
        IterableSource(chunks),
        ShedOperator(1.0, seed=49),
        sinks=[CollectSink()],
        observer=observer,
        queue_depth=0,
    ).run()
    assert observer.counter("dataplane.chunks.accepted").value == 3
    assert observer.counter("dataplane.tuples.seen").value == 150
    assert observer.counter("dataplane.tuples.delivered").value == 150
    assert observer.counter("dataplane.stage.envelopes", stage="shed").value == 3
    assert observer.counter("dataplane.stage.envelopes", stage="collect").value == 3
    spans = [record["name"] for record in observer.tracer.export_spans()]
    assert "dataplane.run" in spans


def test_stream_runtime_run_rides_the_dataplane(tmp_path):
    chunks = _chunks(8)
    runtime = StreamRuntime(
        FagmsSketch(128, 3, seed=55),
        p=1.0,
        seed=56,
        checkpoint_dir=tmp_path,
        checkpoint_every=2,
    )
    kept = runtime.run(chunks)
    assert kept == 300
    assert runtime.position == len(chunks)
    # The delegate path leaves verification to the runtime's own cursor:
    # replaying sealed envelopes through StreamRuntime.run is still safe.
    sealed = [make_envelope(i, chunk) for i, chunk in enumerate(chunks)]
    assert runtime.run(sealed[:3]) == 0  # pure replay, all duplicates
    assert runtime.duplicates == 3


def test_runtime_sink_counts_kept_tuples():
    runtime = StreamRuntime(FagmsSketch(64, 2, seed=57), p=1.0, seed=58)
    sink = RuntimeSink(runtime)
    envelope = make_envelope(0, np.arange(20))
    sink.accept(envelope)
    assert sink.kept == 20
    assert sink.tuples == 20
