"""Backpressure: a slow sink bounds the queue and stalls the source.

The ISSUE-level contract: with a bounded hand-off queue, a consumer that
falls behind must (a) cap buffered memory at the configured depth,
(b) deterministically park the producer on the full queue, and (c) never
drop or reorder envelopes while doing so.
"""

import threading
import time

import numpy as np

from repro.dataplane import CollectSink, IterableSource, Pipeline

CAPACITY = 3
ENVELOPES = 24


class GatedSink(CollectSink):
    """A sink that blocks on a semaphore: one permit, one envelope."""

    name = "gated"

    def __init__(self) -> None:
        super().__init__()
        self.permits = threading.Semaphore(0)

    def write(self, keys, envelope):
        self.permits.acquire()
        super().write(keys, envelope)


def _spin_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


def test_slow_sink_bounds_queue_depth_and_stalls_the_source():
    chunks = [np.full(8, value) for value in range(ENVELOPES)]
    sink = GatedSink()
    pipeline = Pipeline(
        IterableSource(chunks), sinks=[sink], queue_depth=CAPACITY
    )
    runner = threading.Thread(target=pipeline.run, daemon=True)
    runner.start()
    # With the sink gated shut the producer must fill the queue to its
    # capacity and then park — deterministically, regardless of timing.
    assert _spin_until(
        lambda: pipeline.last_queue is not None
        and pipeline.last_queue.depth == CAPACITY
    )
    queue = pipeline.last_queue
    # The bound holds while the producer is stalled: nothing beyond
    # capacity is ever buffered (no unbounded memory growth).
    assert queue.depth == CAPACITY
    assert queue.high_watermark <= CAPACITY
    assert len(sink.chunks) <= 1  # at most the in-flight envelope
    # Release the sink one envelope at a time; the stream drains fully.
    for _ in range(ENVELOPES):
        sink.permits.release()
    runner.join(timeout=10.0)
    assert not runner.is_alive()
    # (c) nothing dropped, nothing reordered.
    assert sink.position == ENVELOPES
    assert sink.duplicates == 0
    assert np.array_equal(sink.keys(), np.concatenate(chunks))
    assert queue.high_watermark <= CAPACITY
    # The producer measurably waited on backpressure.
    assert queue.put_wait.value is not None and queue.put_wait.value > 0.0


def test_threaded_stream_is_never_dropped_or_reordered():
    rng = np.random.default_rng(91)
    chunks = [np.asarray(rng.integers(0, 1000, 17)) for _ in range(100)]
    sink = CollectSink()
    result = Pipeline(IterableSource(chunks), sinks=[sink], queue_depth=2).run()
    assert result.envelopes == 100
    assert result.duplicates == 0
    assert result.max_queue_depth <= 2
    assert np.array_equal(sink.keys(), np.concatenate(chunks))


def test_run_summary_reports_queue_wait_ewmas():
    chunks = [np.arange(4)] * 10
    result = Pipeline(
        IterableSource(chunks), sinks=[CollectSink()], queue_depth=2
    ).run()
    # Both sides of the hand-off recorded wait observations.
    assert result.queue_put_wait is not None
    assert result.queue_get_wait is not None
    assert result.max_queue_depth >= 1
