"""Sources: every head of a pipeline seals the same envelope contract."""

import socket
import threading

import numpy as np
import pytest

from repro.dataplane import (
    FileSource,
    IterableSource,
    MicroBatchSource,
    SocketSource,
    UnionSource,
    send_frames,
)
from repro.errors import ConfigurationError, StreamIntegrityError
from repro.resilience import make_envelope, verify_payload
from repro.streams.io import write_stream


def _keys(seed, n):
    return np.asarray(np.random.default_rng(seed).integers(0, 1000, n))


def _collect(source):
    envelopes = list(source.envelopes())
    for envelope in envelopes:
        verify_payload(envelope)  # every source seals valid envelopes
    return envelopes


class TestIterableSource:
    def test_seals_raw_chunks_sequentially(self):
        chunks = [_keys(1, 10), _keys(2, 4), _keys(3, 7)]
        envelopes = _collect(IterableSource(chunks))
        assert [e.sequence for e in envelopes] == [0, 1, 2]
        for chunk, envelope in zip(chunks, envelopes):
            assert np.array_equal(envelope.keys, chunk)

    def test_presealed_envelopes_pass_through_and_renumber_the_tail(self):
        sealed = make_envelope(5, _keys(4, 3))
        envelopes = _collect(IterableSource([sealed, _keys(5, 2)]))
        assert envelopes[0] is sealed
        # A raw chunk after a sealed envelope continues its numbering.
        assert envelopes[1].sequence == 6

    def test_start_offsets_the_numbering(self):
        envelopes = _collect(IterableSource([_keys(6, 2)], start=9))
        assert envelopes[0].sequence == 9

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            IterableSource([], start=-1)


class TestFileSource:
    def test_round_trips_a_stream_file(self, tmp_path):
        keys = _keys(7, 100)
        path = tmp_path / "stream.bin"
        write_stream(path, [keys], 1000)
        envelopes = _collect(FileSource(path, 32))
        assert [e.sequence for e in envelopes] == [0, 1, 2, 3]
        assert np.array_equal(
            np.concatenate([np.asarray(e.keys) for e in envelopes]), keys
        )

    def test_window_and_sequence_start_support_resume(self, tmp_path):
        keys = _keys(8, 60)
        path = tmp_path / "stream.bin"
        write_stream(path, [keys], 1000)
        envelopes = _collect(
            FileSource(path, 10, start=20, limit=25, sequence_start=2)
        )
        assert [e.sequence for e in envelopes] == [2, 3, 4]
        assert np.array_equal(
            np.concatenate([np.asarray(e.keys) for e in envelopes]),
            keys[20:45],
        )

    def test_is_reiterable(self, tmp_path):
        path = tmp_path / "stream.bin"
        write_stream(path, [_keys(9, 16)], 1000)
        source = FileSource(path, 8)
        first = [np.asarray(e.keys) for e in source.envelopes()]
        second = [np.asarray(e.keys) for e in source.envelopes()]
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_rejects_negative_sequence_start(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FileSource(tmp_path / "x.bin", 8, sequence_start=-1)

    def test_bad_chunk_size_raises_on_iteration(self, tmp_path):
        path = tmp_path / "stream.bin"
        write_stream(path, [_keys(10, 4)], 1000)
        source = FileSource(path, 0)
        with pytest.raises(ConfigurationError):
            next(source.envelopes())


class TestMicroBatchSource:
    def test_coalesces_mixed_items_into_fixed_batches(self):
        items = [7, [8, 9], np.asarray([10, 11, 12]), 13, np.asarray([14])]
        envelopes = _collect(MicroBatchSource(items, 3))
        assert [e.count for e in envelopes] == [3, 3, 2]
        assert [e.sequence for e in envelopes] == [0, 1, 2]
        assert np.array_equal(
            np.concatenate([np.asarray(e.keys) for e in envelopes]),
            np.arange(7, 15),
        )

    def test_large_array_is_split(self):
        envelopes = _collect(MicroBatchSource([np.arange(10)], 4))
        assert [e.count for e in envelopes] == [4, 4, 2]

    def test_exact_multiple_leaves_no_tail(self):
        envelopes = _collect(MicroBatchSource([np.arange(8)], 4))
        assert [e.count for e in envelopes] == [4, 4]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            MicroBatchSource([], 0)


class TestSocketSource:
    def test_frames_round_trip(self):
        left, right = socket.socketpair()
        chunks = [_keys(11, 5), _keys(12, 3), np.empty(0, dtype=np.int64)]

        def write():
            with left:
                send_frames(left, chunks)

        writer = threading.Thread(target=write, daemon=True)
        writer.start()
        with right:
            envelopes = _collect(SocketSource(right))
        writer.join(timeout=5.0)
        assert [e.sequence for e in envelopes] == [0, 1, 2]
        assert [e.count for e in envelopes] == [5, 3, 0]
        for chunk, envelope in zip(chunks, envelopes):
            assert np.array_equal(np.asarray(envelope.keys), chunk)

    def test_send_frames_reports_tuples_sent(self):
        left, right = socket.socketpair()
        with left, right:
            sent = send_frames(left, [np.arange(4), np.arange(2)])
        assert sent == 6

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        with left:
            # A header promising 100 keys, then only one: the writer dies
            # mid-frame.
            left.sendall((100).to_bytes(8, "little") + (7).to_bytes(8, "little"))
        with right:
            with pytest.raises(StreamIntegrityError):
                list(SocketSource(right).envelopes())


class TestUnionSource:
    def test_round_robin_reseals_sequences(self):
        a = IterableSource([np.asarray([1]), np.asarray([2])])
        b = IterableSource([np.asarray([10])])
        envelopes = _collect(UnionSource(a, b))
        assert [e.sequence for e in envelopes] == [0, 1, 2]
        # One envelope per live member per round, constructor order.
        assert [int(np.asarray(e.keys)[0]) for e in envelopes] == [1, 10, 2]

    def test_rejects_empty_union(self):
        with pytest.raises(ConfigurationError):
            UnionSource()
