"""The sketch-over-sample workflow: paths, corrections, intervals."""

import numpy as np
import pytest

from repro.core import (
    estimate_join_size,
    estimate_self_join_size,
    join_interval,
    self_join_interval,
    sketch_over_sample,
)
from repro.errors import ConfigurationError
from repro.frequency import FrequencyVector
from repro.sampling import (
    BernoulliSampler,
    WithReplacementSampler,
    WithoutReplacementSampler,
)
from repro.sketches import FagmsSketch
from repro.streams import Relation, zipf_relation


@pytest.fixture
def relation():
    return zipf_relation(30_000, 2_000, skew=1.0, seed=5)


class TestSketchOverSample:
    def test_items_path_returns_info(self, relation):
        sketch = FagmsSketch(512, seed=1)
        info = sketch_over_sample(relation, BernoulliSampler(0.2), sketch, seed=2)
        assert info.scheme == "bernoulli"
        assert info.population_size == len(relation)
        assert 0 < info.sample_size < len(relation)
        assert np.abs(sketch.counters).sum() > 0

    def test_frequency_path_on_relation(self, relation):
        sketch = FagmsSketch(512, seed=1)
        info = sketch_over_sample(
            relation, WithoutReplacementSampler(fraction=0.1), sketch,
            seed=2, path="frequency",
        )
        assert info.sample_size == pytest.approx(0.1 * len(relation), rel=0.01)

    def test_frequency_vector_source(self, relation):
        fv = relation.frequency_vector()
        sketch = FagmsSketch(512, seed=1)
        info = sketch_over_sample(fv, WithReplacementSampler(size=500), sketch, seed=3)
        assert info.sample_size == 500

    def test_items_path_rejected_for_frequency_vector(self, relation):
        fv = relation.frequency_vector()
        sketch = FagmsSketch(512, seed=1)
        with pytest.raises(ConfigurationError):
            sketch_over_sample(fv, BernoulliSampler(0.5), sketch, path="items")

    def test_unknown_path_and_source(self, relation):
        sketch = FagmsSketch(512, seed=1)
        with pytest.raises(ConfigurationError):
            sketch_over_sample(relation, BernoulliSampler(0.5), sketch, path="magic")
        with pytest.raises(ConfigurationError):
            sketch_over_sample([1, 2, 3], BernoulliSampler(0.5), sketch)

    def test_both_paths_give_comparable_estimates(self, relation):
        truth = relation.self_join_size()
        for path in ("items", "frequency"):
            sketch = FagmsSketch(1024, seed=7)
            info = sketch_over_sample(
                relation, BernoulliSampler(0.3), sketch, seed=11, path=path
            )
            estimate = estimate_self_join_size(sketch, info)
            assert estimate.value == pytest.approx(truth, rel=0.4)


class TestEstimates:
    def test_join_estimate_fields(self):
        # Aligned Zipf pair: large, stably-estimable join.
        f = zipf_relation(30_000, 2_000, 1.0, seed=5, shuffle_values=False)
        g = zipf_relation(30_000, 2_000, 1.0, seed=6, shuffle_values=False)
        sketch_f = FagmsSketch(1024, seed=4)
        sketch_g = sketch_f.copy_empty()
        info_f = sketch_over_sample(f, BernoulliSampler(0.5), sketch_f, seed=1)
        info_g = sketch_over_sample(g, BernoulliSampler(0.25), sketch_g, seed=2)
        estimate = estimate_join_size(sketch_f, info_f, sketch_g, info_g)
        assert estimate.scale == pytest.approx(1 / (0.5 * 0.25))
        assert estimate.value == pytest.approx(
            estimate.scale * estimate.raw_sketch_estimate
        )
        truth = f.join_size(g)
        assert estimate.value == pytest.approx(truth, rel=0.5)

    def test_self_join_estimate_all_schemes(self, relation):
        truth = relation.self_join_size()
        samplers = [
            BernoulliSampler(0.2),
            WithReplacementSampler(fraction=0.2),
            WithoutReplacementSampler(fraction=0.2),
        ]
        for sampler in samplers:
            sketch = FagmsSketch(1024, seed=13)
            info = sketch_over_sample(relation, sampler, sketch, seed=17)
            estimate = estimate_self_join_size(sketch, info)
            assert estimate.value == pytest.approx(truth, rel=0.4), sampler

    def test_full_sample_equals_plain_sketch(self, relation):
        """p=1 Bernoulli: the combined estimator IS the plain sketch."""
        sampled = FagmsSketch(512, seed=3)
        info = sketch_over_sample(relation, BernoulliSampler(1.0), sampled, seed=1)
        plain = FagmsSketch(512, seed=3)
        plain.update(relation.keys)
        estimate = estimate_self_join_size(sampled, info)
        assert estimate.value == pytest.approx(plain.second_moment())


class TestIntervals:
    def test_join_interval_contains_truth_typically(self, relation):
        other = zipf_relation(30_000, 2_000, skew=1.0, seed=6)
        truth = relation.join_size(other)
        hits = 0
        for seed in range(10):
            sketch_f = FagmsSketch(512, seed=100 + seed)
            sketch_g = sketch_f.copy_empty()
            info_f = sketch_over_sample(
                relation, BernoulliSampler(0.3), sketch_f, seed=seed
            )
            info_g = sketch_over_sample(
                other, BernoulliSampler(0.3), sketch_g, seed=1000 + seed
            )
            estimate = estimate_join_size(sketch_f, info_f, sketch_g, info_g)
            interval = join_interval(
                estimate,
                relation.frequency_vector(),
                other.frequency_vector(),
                info_f,
                info_g,
                n=512,
                confidence=0.95,
            )
            hits += interval.contains(truth)
        assert hits >= 8  # 95% nominal; allow slack for 10 draws

    def test_self_join_interval_contains_truth_typically(self, relation):
        truth = relation.self_join_size()
        fv = relation.frequency_vector()
        hits = 0
        for seed in range(10):
            sketch = FagmsSketch(512, seed=200 + seed)
            info = sketch_over_sample(
                relation, WithoutReplacementSampler(fraction=0.2), sketch, seed=seed
            )
            estimate = estimate_self_join_size(sketch, info)
            interval = self_join_interval(estimate, fv, info, n=512)
            hits += interval.contains(truth)
        assert hits >= 8

    def test_interval_accepts_float_estimate(self, relation):
        fv = relation.frequency_vector()
        sketch = FagmsSketch(512, seed=5)
        info = sketch_over_sample(relation, BernoulliSampler(0.5), sketch, seed=5)
        interval = self_join_interval(123.0, fv, info, n=512)
        assert interval.estimate == 123.0

    def test_interval_method_validation(self, relation):
        fv = relation.frequency_vector()
        sketch = FagmsSketch(512, seed=5)
        info = sketch_over_sample(relation, BernoulliSampler(0.5), sketch, seed=5)
        with pytest.raises(ConfigurationError):
            self_join_interval(1.0, fv, info, n=512, method="bootstrap")
        chebyshev = self_join_interval(1.0, fv, info, n=512, method="chebyshev")
        clt = self_join_interval(1.0, fv, info, n=512, method="clt")
        assert chebyshev.half_width > clt.half_width


def test_empty_relation_handling():
    empty = Relation([], domain_size=16)
    sketch = FagmsSketch(64, seed=1)
    info = sketch_over_sample(empty, BernoulliSampler(0.5), sketch, seed=1)
    assert info.sample_size == 0
    estimate = estimate_self_join_size(sketch, info)
    assert estimate.value == 0.0


def test_frequency_vector_zero_counts():
    fv = FrequencyVector.zeros(16)
    sketch = FagmsSketch(64, seed=1)
    info = sketch_over_sample(fv, BernoulliSampler(0.5), sketch, seed=1)
    assert estimate_self_join_size(sketch, info).value == 0.0
