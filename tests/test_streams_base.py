"""Relation: construction, views, ground truth, scans."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DomainError
from repro.frequency import FrequencyVector
from repro.streams import Relation, iter_chunks


class TestConstruction:
    def test_infers_domain(self):
        relation = Relation([3, 1, 3])
        assert relation.domain_size == 4
        assert len(relation) == 3

    def test_explicit_domain_validated(self):
        with pytest.raises(DomainError):
            Relation([5], domain_size=5)

    def test_rejects_negative_keys(self):
        with pytest.raises(DomainError):
            Relation([-1])

    def test_rejects_float_keys(self):
        with pytest.raises(DomainError):
            Relation(np.array([1.5]))

    def test_rejects_2d(self):
        with pytest.raises(DomainError):
            Relation(np.ones((2, 2), dtype=np.int64))

    def test_empty_relation(self):
        relation = Relation([], domain_size=10)
        assert len(relation) == 0
        assert relation.frequency_vector().total == 0

    def test_keys_read_only(self):
        relation = Relation([1, 2])
        with pytest.raises(ValueError):
            relation.keys[0] = 0

    def test_from_frequency_vector_round_trip(self):
        fv = FrequencyVector([2, 0, 3])
        relation = Relation.from_frequency_vector(fv)
        assert relation.frequency_vector() == fv
        assert list(relation.keys) == [0, 0, 2, 2, 2]

    def test_from_frequency_vector_shuffled(self):
        fv = FrequencyVector([5, 5, 5])
        relation = Relation.from_frequency_vector(fv, shuffle=True, seed=1)
        assert relation.frequency_vector() == fv
        assert sorted(relation.keys.tolist()) == sorted(fv.to_items().tolist())


class TestGroundTruth:
    def test_self_join_size(self):
        relation = Relation([0, 0, 1, 2, 2, 2])
        assert relation.self_join_size() == 4 + 1 + 9

    def test_join_size(self):
        f = Relation([0, 0, 1], domain_size=3)
        g = Relation([0, 2, 2], domain_size=3)
        assert f.join_size(g) == 2  # value 0: 2*1

    def test_join_size_domain_mismatch(self):
        with pytest.raises(DomainError):
            Relation([0], domain_size=2).join_size(Relation([0], domain_size=3))

    def test_frequency_vector_cached(self):
        relation = Relation([1, 1, 0])
        assert relation.frequency_vector() is relation.frequency_vector()


class TestScans:
    def test_shuffled_preserves_multiset(self):
        relation = Relation(np.arange(100) % 7)
        shuffled = relation.shuffled(seed=3)
        assert sorted(shuffled.keys.tolist()) == sorted(relation.keys.tolist())
        assert shuffled.domain_size == relation.domain_size
        assert not np.array_equal(shuffled.keys, relation.keys)

    def test_shuffled_deterministic(self):
        relation = Relation(np.arange(50))
        a = relation.shuffled(seed=9).keys
        b = relation.shuffled(seed=9).keys
        assert np.array_equal(a, b)

    def test_prefix(self):
        relation = Relation([4, 2, 0, 1])
        prefix = relation.prefix(2)
        assert list(prefix.keys) == [4, 2]
        assert prefix.domain_size == relation.domain_size
        with pytest.raises(ConfigurationError):
            relation.prefix(5)
        with pytest.raises(ConfigurationError):
            relation.prefix(-1)

    def test_chunks_cover_stream(self):
        relation = Relation(np.arange(10))
        chunks = list(relation.chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert np.array_equal(np.concatenate(chunks), relation.keys)

    def test_iter_chunks_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            list(iter_chunks(np.arange(5), 0))
