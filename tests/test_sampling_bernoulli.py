"""Bernoulli sampler: both paths, skip-lengths, statistical behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.frequency import FrequencyVector
from repro.sampling import BernoulliSampler, bernoulli_skip_lengths


def test_rejects_bad_probability():
    for p in (0.0, -0.1, 1.5):
        with pytest.raises(ConfigurationError):
            BernoulliSampler(p)


def test_p_one_keeps_everything():
    sampler = BernoulliSampler(1.0)
    keys = np.arange(100)
    sampled, info = sampler.sample_items(keys, seed=1)
    assert np.array_equal(sampled, keys)
    assert info.sample_size == 100
    fv = FrequencyVector([3, 1, 2])
    sample, info = sampler.sample_frequencies(fv, seed=1)
    assert sample == fv


def test_info_fields(rng):
    sampler = BernoulliSampler(0.25)
    sampled, info = sampler.sample_items(np.arange(1000), rng)
    assert info.scheme == "bernoulli"
    assert info.population_size == 1000
    assert info.sample_size == sampled.size
    assert info.probability == 0.25


def test_sample_items_subset_preserving_order(rng):
    keys = np.arange(1000) * 3
    sampled, _ = BernoulliSampler(0.3).sample_items(keys, rng)
    assert np.all(np.diff(sampled) > 0)  # order preserved
    assert np.all(sampled % 3 == 0)


def test_sample_frequencies_bounded_by_base(rng):
    fv = FrequencyVector(rng.integers(0, 20, size=50))
    sample, _ = BernoulliSampler(0.4).sample_frequencies(fv, rng)
    assert np.all(sample.counts <= fv.counts)


@pytest.mark.statistical
def test_sample_size_concentration():
    sampler = BernoulliSampler(0.2)
    sizes = [
        sampler.sample_items(np.arange(5000), seed=s)[1].sample_size
        for s in range(50)
    ]
    # Binomial(5000, 0.2): mean 1000, sd ~28; mean of 50 draws within 5 SE.
    assert abs(np.mean(sizes) - 1000) < 5 * 28 / np.sqrt(50)


@pytest.mark.statistical
def test_frequency_path_matches_item_path_distribution():
    """Both sampling paths give the same (binomial) per-value distribution."""
    fv = FrequencyVector([200, 100, 50])
    relation_keys = fv.to_items()
    sampler = BernoulliSampler(0.3)
    trials = 400
    items_means = np.zeros(3)
    freq_means = np.zeros(3)
    for s in range(trials):
        sampled, _ = sampler.sample_items(relation_keys, seed=1000 + s)
        items_means += np.bincount(sampled, minlength=3)
        sample, _ = sampler.sample_frequencies(fv, seed=2000 + s)
        freq_means += sample.counts
    items_means /= trials
    freq_means /= trials
    expected = 0.3 * fv.counts
    assert np.allclose(items_means, expected, rtol=0.1)
    assert np.allclose(freq_means, expected, rtol=0.1)


class TestSkipLengths:
    def test_p_one_gives_zero_gaps(self):
        assert np.all(bernoulli_skip_lengths(1.0, 10, seed=1) == 0)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            bernoulli_skip_lengths(0.0, 5)
        with pytest.raises(ConfigurationError):
            bernoulli_skip_lengths(0.5, -1)

    def test_gap_support(self):
        gaps = bernoulli_skip_lengths(0.5, 1000, seed=2)
        assert gaps.min() >= 0

    @pytest.mark.statistical
    def test_gap_distribution_geometric(self):
        p = 0.25
        gaps = bernoulli_skip_lengths(p, 100_000, seed=3)
        # E[gap] = (1-p)/p = 3
        assert np.mean(gaps) == pytest.approx((1 - p) / p, rel=0.05)
        # P(gap = 0) = p
        assert np.mean(gaps == 0) == pytest.approx(p, abs=0.01)
