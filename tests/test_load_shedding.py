"""Load shedding: skip-ahead filter correctness and corrected estimates."""

import numpy as np
import pytest

from repro.core import LoadShedder, SheddingSketcher
from repro.errors import ConfigurationError, InsufficientDataError
from repro.sketches import FagmsSketch
from repro.streams import zipf_relation


class TestLoadShedder:
    def test_rejects_bad_probability(self):
        for p in (0.0, -1.0, 1.5):
            with pytest.raises(ConfigurationError):
                LoadShedder(p)

    def test_p_one_keeps_all(self):
        shedder = LoadShedder(1.0, seed=1)
        keys = np.arange(100)
        kept = shedder.filter(keys)
        assert np.array_equal(kept, keys)
        assert shedder.kept == shedder.seen == 100

    def test_counts_track_across_chunks(self):
        shedder = LoadShedder(0.3, seed=2)
        total_kept = 0
        for _ in range(10):
            total_kept += shedder.filter(np.arange(1000)).size
        assert shedder.seen == 10_000
        assert shedder.kept == total_kept

    def test_kept_are_subsequence(self):
        shedder = LoadShedder(0.4, seed=3)
        keys = np.arange(5000)
        kept = shedder.filter(keys)
        assert np.all(np.diff(kept) > 0)

    def test_info_requires_data(self):
        shedder = LoadShedder(0.5, seed=4)
        with pytest.raises(InsufficientDataError):
            shedder.info()
        shedder.filter(np.arange(10))
        info = shedder.info()
        assert info.scheme == "bernoulli"
        assert info.probability == 0.5

    def test_rejects_2d_chunks(self):
        with pytest.raises(ConfigurationError):
            LoadShedder(0.5).filter(np.ones((2, 2), dtype=np.int64))

    def test_empty_chunk(self):
        shedder = LoadShedder(0.5, seed=5)
        assert shedder.filter(np.array([], dtype=np.int64)).size == 0

    @pytest.mark.statistical
    def test_keep_rate_matches_p(self):
        p = 0.2
        shedder = LoadShedder(p, seed=6)
        n = 200_000
        shedder.filter(np.arange(n))
        standard_error = np.sqrt(p * (1 - p) / n)
        assert shedder.kept / n == pytest.approx(p, abs=5 * standard_error)

    @pytest.mark.statistical
    def test_positions_are_bernoulli_uniform(self):
        """Each stream position is kept with probability p, independent of
        position — including across chunk boundaries."""
        p = 0.3
        n, trials = 200, 2000
        keep_counts = np.zeros(n)
        for seed in range(trials):
            shedder = LoadShedder(p, seed=seed)
            kept = np.concatenate(
                [shedder.filter(np.arange(0, 77)), shedder.filter(np.arange(77, n))]
            )
            keep_counts[kept] += 1
        rates = keep_counts / trials
        standard_error = np.sqrt(p * (1 - p) / trials)
        assert np.all(np.abs(rates - p) < 6 * standard_error)

    @pytest.mark.statistical
    def test_keep_rate_invariant_to_chunking(self):
        """Chunk boundaries do not bias the keep rate (state carries over)."""
        p = 0.1
        keys = np.arange(100_000)
        whole = LoadShedder(p, seed=42).filter(keys).size
        chunked_shedder = LoadShedder(p, seed=43)
        chunked = sum(
            chunked_shedder.filter(chunk).size
            for chunk in np.array_split(keys, 997)
        )
        standard_error = np.sqrt(p * (1 - p) * keys.size)
        assert abs(whole - chunked) < 8 * standard_error


class TestSheddingSketcher:
    def test_estimates_close_to_truth(self):
        relation = zipf_relation(50_000, 2_000, 1.0, seed=7)
        sketcher = SheddingSketcher(FagmsSketch(1024, seed=8), p=0.1, seed=9)
        for chunk in relation.chunks(4096):
            sketcher.process(chunk)
        truth = relation.self_join_size()
        assert sketcher.self_join_size() == pytest.approx(truth, rel=0.35)

    def test_join_estimate(self):
        f = zipf_relation(40_000, 2_000, 0.8, seed=10)
        g = zipf_relation(40_000, 2_000, 0.8, seed=11)
        sketch = FagmsSketch(1024, seed=12)
        sketcher_f = SheddingSketcher(sketch, p=0.2, seed=13)
        sketcher_g = SheddingSketcher(sketch.copy_empty(), p=0.5, seed=14)
        for chunk in f.chunks(8192):
            sketcher_f.process(chunk)
        for chunk in g.chunks(8192):
            sketcher_g.process(chunk)
        truth = f.join_size(g)
        assert sketcher_f.join_size(sketcher_g) == pytest.approx(truth, rel=0.5)

    def test_process_returns_kept_count(self):
        sketcher = SheddingSketcher(FagmsSketch(64, seed=1), p=0.5, seed=2)
        kept = sketcher.process(np.arange(1000) % 64)
        assert kept == sketcher.shedder.kept
        assert 300 < kept < 700

    def test_p_exposed(self):
        sketcher = SheddingSketcher(FagmsSketch(64, seed=1), p=0.25, seed=2)
        assert sketcher.p == 0.25


@pytest.mark.statistical
def test_shedding_estimator_unbiased():
    """Mean of shedded F2 estimates converges to the truth."""
    relation = zipf_relation(5_000, 500, 1.0, seed=20)
    truth = relation.self_join_size()
    estimates = []
    for seed in range(60):
        sketcher = SheddingSketcher(
            FagmsSketch(512, seed=3000 + seed), p=0.3, seed=seed
        )
        sketcher.process(relation.keys)
        estimates.append(sketcher.self_join_size())
    mean = np.mean(estimates)
    standard_error = np.std(estimates) / np.sqrt(len(estimates))
    assert abs(mean - truth) < 5 * standard_error


class TestLoadShedderRetuning:
    """set_p / state / restore: the resilience hooks on the shedder."""

    def test_set_p_changes_rate_without_corrupting_counts(self):
        shedder = LoadShedder(0.9, seed=7)
        first = shedder.filter(np.arange(1000))
        shedder.set_p(0.1)
        second = shedder.filter(np.arange(1000))
        assert shedder.seen == 2000
        assert shedder.kept == first.size + second.size
        assert 800 < first.size <= 1000
        assert second.size < 300

    def test_set_p_rejects_bad_rate_without_mutating(self):
        shedder = LoadShedder(0.5, seed=7)
        shedder.filter(np.arange(100))
        before = shedder.state()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                shedder.set_p(bad)
        assert shedder.state() == before

    def test_state_restore_round_trip_is_bit_identical(self):
        shedder = LoadShedder(0.3, seed=11)
        shedder.filter(np.arange(777))
        clone = LoadShedder.restore(shedder.state())
        for _ in range(5):
            chunk = np.arange(500)
            assert np.array_equal(shedder.filter(chunk), clone.filter(chunk))
        assert shedder.seen == clone.seen
        assert shedder.kept == clone.kept

    def test_restore_survives_rate_changes(self):
        shedder = LoadShedder(0.8, seed=13)
        shedder.filter(np.arange(300))
        shedder.set_p(0.2)
        shedder.filter(np.arange(300))
        clone = LoadShedder.restore(shedder.state())
        chunk = np.arange(2000)
        assert np.array_equal(shedder.filter(chunk), clone.filter(chunk))
