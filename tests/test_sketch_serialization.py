"""Sketch save/load: exact state round-trip and family compatibility."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sketches import (
    AgmsSketch,
    CountMinSketch,
    FagmsSketch,
    load_sketch,
    save_sketch,
)

FACTORIES = [
    lambda seed: AgmsSketch(rows=6, seed=seed, combine="median-of-means", groups=3),
    lambda seed: AgmsSketch(rows=4, seed=seed, sign_family="eh3"),
    lambda seed: FagmsSketch(buckets=32, rows=2, seed=seed),
    lambda seed: CountMinSketch(buckets=16, rows=3, seed=seed),
]


@pytest.mark.parametrize("factory", FACTORIES)
def test_round_trip_preserves_state_and_estimates(factory, tmp_path, rng):
    sketch = factory(123)
    sketch.update(rng.integers(0, 100, size=500))
    path = tmp_path / "sketch.npz"
    save_sketch(sketch, path)
    loaded = load_sketch(path)
    assert type(loaded) is type(sketch)
    assert np.array_equal(loaded._state(), sketch._state())
    assert loaded.seed_id == sketch.seed_id


@pytest.mark.parametrize("factory", FACTORIES)
def test_loaded_sketch_has_same_families(factory, tmp_path, rng):
    """Updating original and loaded sketch with new data stays identical —
    proving the hash/ξ families were reconstructed, not just the state."""
    sketch = factory(7)
    path = tmp_path / "sketch.npz"
    save_sketch(sketch, path)
    loaded = load_sketch(path)
    fresh_keys = rng.integers(0, 100, size=300)
    sketch.update(fresh_keys)
    loaded.update(fresh_keys)
    assert np.array_equal(loaded._state(), sketch._state())


def test_distributed_merge_through_files(tmp_path, rng):
    """Two sites sketch partitions, a coordinator merges the files."""
    site_a = FagmsSketch(buckets=64, rows=2, seed=99)
    site_b = site_a.copy_empty()
    part_a = rng.integers(0, 200, size=1000)
    part_b = rng.integers(0, 200, size=1000)
    site_a.update(part_a)
    site_b.update(part_b)
    save_sketch(site_a, tmp_path / "a.npz")
    save_sketch(site_b, tmp_path / "b.npz")

    merged = load_sketch(tmp_path / "a.npz")
    merged.merge(load_sketch(tmp_path / "b.npz"))
    reference = FagmsSketch(buckets=64, rows=2, seed=99)
    reference.update(np.concatenate([part_a, part_b]))
    assert np.allclose(merged._state(), reference._state())


def test_spawned_seed_round_trip(tmp_path):
    """Sketches seeded with spawned SeedSequences reload correctly too."""
    child = np.random.SeedSequence(5).spawn(3)[2]
    sketch = FagmsSketch(buckets=16, rows=1, seed=child)
    sketch.update(np.arange(50))
    save_sketch(sketch, tmp_path / "s.npz")
    loaded = load_sketch(tmp_path / "s.npz")
    loaded2 = FagmsSketch(
        buckets=16, rows=1, seed=np.random.SeedSequence(5).spawn(3)[2]
    )
    loaded2.update(np.arange(50))
    assert np.array_equal(loaded._state(), sketch._state())
    assert np.array_equal(loaded2._state(), sketch._state())
    assert loaded.seed_id == sketch.seed_id


def test_load_rejects_corrupt_header(tmp_path):
    sketch = AgmsSketch(rows=2, seed=1)
    path = tmp_path / "s.npz"
    save_sketch(sketch, path)
    import json

    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        counters = data["counters"]
    header["type"] = "MysterySketch"
    np.savez(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        counters=counters,
    )
    with pytest.raises(ConfigurationError):
        load_sketch(path)

    header["type"] = "AgmsSketch"
    header["version"] = 999
    np.savez(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        counters=counters,
    )
    with pytest.raises(ConfigurationError):
        load_sketch(path)


def test_load_raises_serialization_error_on_garbage_file(tmp_path):
    from repro.errors import SerializationError

    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not an npz archive")
    with pytest.raises(SerializationError):
        load_sketch(path)


def test_load_raises_serialization_error_on_truncated_file(tmp_path):
    from repro.errors import SerializationError

    sketch = FagmsSketch(buckets=16, seed=3)
    path = tmp_path / "s.npz"
    save_sketch(sketch, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 3])
    with pytest.raises(SerializationError):
        load_sketch(path)


def test_load_rejects_counter_shape_mismatch(tmp_path):
    import json

    from repro.errors import SerializationError

    sketch = FagmsSketch(buckets=16, rows=2, seed=3)
    path = tmp_path / "s.npz"
    save_sketch(sketch, path)
    with np.load(path) as data:
        header = bytes(data["header"])
        counters = data["counters"]
    np.savez(path, header=np.frombuffer(header, dtype=np.uint8),
             counters=counters[:, :8])
    with pytest.raises(SerializationError, match="shape"):
        load_sketch(path)
    json.loads(header.decode())  # header itself is still well-formed


def test_load_rejects_missing_header_fields(tmp_path):
    import json

    from repro.errors import SerializationError

    sketch = FagmsSketch(buckets=16, seed=3)
    path = tmp_path / "s.npz"
    save_sketch(sketch, path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        counters = data["counters"]
    del header["rows"]
    np.savez(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        counters=counters,
    )
    with pytest.raises(SerializationError, match="rows"):
        load_sketch(path)


def test_load_rejects_complex_counters(tmp_path):
    import json

    from repro.errors import SerializationError

    sketch = FagmsSketch(buckets=16, seed=3)
    path = tmp_path / "s.npz"
    save_sketch(sketch, path)
    with np.load(path) as data:
        header = bytes(data["header"])
        counters = data["counters"]
    np.savez(
        path,
        header=np.frombuffer(header, dtype=np.uint8),
        counters=counters.astype(np.complex128),
    )
    with pytest.raises(SerializationError, match="dtype"):
        load_sketch(path)


def test_serialization_error_is_a_configuration_error():
    from repro.errors import SerializationError

    assert issubclass(SerializationError, ConfigurationError)
