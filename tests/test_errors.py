"""The exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    DomainError,
    EstimationError,
    IncompatibleSketchError,
    InsufficientDataError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for exc in (
        ConfigurationError,
        DomainError,
        EstimationError,
        InsufficientDataError,
        IncompatibleSketchError,
    ):
        assert issubclass(exc, ReproError)


def test_value_errors_are_also_value_errors():
    # Callers that catch ValueError for bad parameters keep working.
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(DomainError, ValueError)
    assert issubclass(IncompatibleSketchError, ValueError)


def test_insufficient_data_is_estimation_error():
    assert issubclass(InsufficientDataError, EstimationError)
    assert issubclass(EstimationError, RuntimeError)


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise InsufficientDataError("not enough tuples")
