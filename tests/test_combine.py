"""Estimate-combining strategies (mean / median / median-of-means)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sketches._combine import combine_estimates, validate_combine


def test_mean():
    assert combine_estimates(np.array([1.0, 2.0, 6.0]), "mean") == pytest.approx(3.0)


def test_median_odd_and_even():
    assert combine_estimates(np.array([5.0, 1.0, 3.0]), "median") == 3.0
    assert combine_estimates(np.array([1.0, 3.0]), "median") == 2.0


def test_median_of_means():
    values = np.array([1.0, 3.0, 10.0, 20.0, 100.0, 200.0])
    # groups of 2 -> means [2, 15, 150] -> median 15
    assert combine_estimates(values, "median-of-means", groups=3) == 15.0


def test_median_of_means_robust_to_one_bad_group():
    values = np.array([10.0, 10.0, 10.0, 10.0, 1e9, 1e9])
    assert combine_estimates(values, "median-of-means", groups=3) == 10.0


def test_validate_rejects_unknown_method():
    with pytest.raises(ConfigurationError):
        validate_combine("harmonic", 4, 1)


def test_validate_rejects_indivisible_groups():
    with pytest.raises(ConfigurationError):
        validate_combine("median-of-means", 10, 3)


def test_validate_rejects_groups_without_mom():
    with pytest.raises(ConfigurationError):
        validate_combine("median", 10, 2)


def test_validate_rejects_nonpositive_groups():
    with pytest.raises(ConfigurationError):
        validate_combine("mean", 10, 0)


def test_combine_rejects_empty_or_2d():
    with pytest.raises(ConfigurationError):
        combine_estimates(np.array([]), "mean")
    with pytest.raises(ConfigurationError):
        combine_estimates(np.ones((2, 2)), "mean")
