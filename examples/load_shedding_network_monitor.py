"""Load shedding for a network monitor (Section VI-A's application).

Scenario: a router exports a flow stream too fast to sketch exhaustively.
We shed load with skip-ahead Bernoulli sampling in front of an F-AGMS
sketch and track the second frequency moment of the source-address column
— the classic DDoS indicator (F₂ spikes when traffic concentrates on few
sources).

The demo processes the same synthetic flow stream at several shedding
rates and reports, per rate: tuples actually sketched, wall-clock cost,
and the accuracy of the full-stream F₂ estimate.  Expected outcome (the
paper's Figs 3–4 story): down to a 1% rate, accuracy barely moves while
the work drops by orders of magnitude.

Run:  python examples/load_shedding_network_monitor.py
"""

import time

import numpy as np

from repro import FagmsSketch, SheddingSketcher, zipf_relation

SEED = 7
STREAM_TUPLES = 1_000_000
SOURCE_ADDRESSES = 60_000  # distinct source IPs
CHUNK = 65_536
RATES = (1.0, 0.1, 0.01, 0.001)


def make_flow_stream():
    """Flow arrivals: Zipf-distributed source addresses (heavy talkers)."""
    return zipf_relation(
        STREAM_TUPLES, SOURCE_ADDRESSES, skew=1.1, seed=SEED, name="flows"
    )


def main() -> None:
    stream = make_flow_stream()
    truth = stream.self_join_size()
    print(f"flow stream: {STREAM_TUPLES:,} tuples, "
          f"{SOURCE_ADDRESSES:,} sources, true F2 = {truth:,}\n")
    print(f"{'keep rate':>9}  {'sketched':>10}  {'seconds':>8}  "
          f"{'estimate':>14}  {'rel.error':>9}")

    for rate in RATES:
        sketcher = SheddingSketcher(
            FagmsSketch(4_096, seed=SEED + 1), p=rate, seed=SEED + 2
        )
        start = time.perf_counter()
        for chunk in stream.chunks(CHUNK):
            sketcher.process(chunk)
        elapsed = time.perf_counter() - start
        estimate = sketcher.self_join_size()
        error = abs(estimate - truth) / truth
        print(f"{rate:>9.3f}  {sketcher.shedder.kept:>10,}  {elapsed:>8.3f}  "
              f"{estimate:>14,.0f}  {error:>9.2%}")

    # Bonus: detect an attack — replay the stream with a hot source added
    # and watch the shedded F2 estimate jump.
    rng = np.random.default_rng(SEED + 3)
    attack_keys = np.where(
        rng.random(STREAM_TUPLES) < 0.2,  # 20% of traffic from one source
        np.int64(0),
        stream.keys,
    )
    attacked = SheddingSketcher(FagmsSketch(4_096, seed=SEED + 4), p=0.01, seed=SEED)
    for start_index in range(0, STREAM_TUPLES, CHUNK):
        attacked.process(attack_keys[start_index : start_index + CHUNK])
    baseline = SheddingSketcher(FagmsSketch(4_096, seed=SEED + 4), p=0.01, seed=SEED)
    for chunk in stream.chunks(CHUNK):
        baseline.process(chunk)
    ratio = attacked.self_join_size() / baseline.self_join_size()
    print(f"\nDDoS check at 1% shedding: F2(attacked)/F2(normal) = {ratio:.1f}x"
          f"  ->  {'ALERT' if ratio > 2 else 'ok'}")


if __name__ == "__main__":
    main()
