"""Adaptive load shedding for a network monitor (Section VI-A, hardened).

Scenario: a router exports a flow stream too fast to sketch exhaustively.
A :class:`~repro.resilience.governor.LoadGovernor` watches the measured
per-chunk cost against a processing budget and retunes the Bernoulli
keep-probability of an
:class:`~repro.resilience.adaptive.AdaptiveSheddingSketcher` on the fly;
the piecewise-rate correction keeps the second-frequency-moment estimate
(the classic DDoS indicator) unbiased across every rate change, and the
confidence interval widens honestly while shedding is aggressive.

Part 1 replays the paper's fixed-rate story (down to a 1% rate, accuracy
barely moves while work drops by orders of magnitude).  Part 2 simulates
a load burst — per-tuple processing cost spikes to several times the
budget mid-stream — and prints, chunk window by chunk window, how the
governor sheds into the burst, how the 95% interval widens, and how both
recover afterwards.

Every scan here runs on the composable dataplane
(:mod:`repro.dataplane`): sketchers terminate pipelines as sinks, the
governor is wired into the pipeline, and the burst's simulated cost is
driven through the shared injectable clock.

Run:  python examples/load_shedding_network_monitor.py
"""

import time

import numpy as np

from repro import (
    AdaptiveSheddingSketcher,
    FagmsSketch,
    LoadGovernor,
    SheddingSketcher,
    zipf_relation,
)
from repro.dataplane import (
    CallbackSink,
    IterableSource,
    MicroBatchSource,
    Pipeline,
    SketcherSink,
)
from repro.resilience import ManualClock

SEED = 7
STREAM_TUPLES = 1_000_000
SOURCE_ADDRESSES = 60_000  # distinct source IPs
CHUNK = 65_536
RATES = (1.0, 0.1, 0.01, 0.001)

# Part-2 control loop: a smaller chunk so the governor gets feedback often.
BURST_CHUNK = 16_384
BUDGET_PER_TUPLE = 30e-9  # seconds of processing we can afford per arrival


def make_flow_stream():
    """Flow arrivals: Zipf-distributed source addresses (heavy talkers)."""
    return zipf_relation(
        STREAM_TUPLES, SOURCE_ADDRESSES, skew=1.1, seed=SEED, name="flows"
    )


def fixed_rate_sweep(stream, truth) -> None:
    """The paper's Figs 3–4 story: fixed rates, near-constant accuracy."""
    print(f"{'keep rate':>9}  {'sketched':>10}  {'seconds':>8}  "
          f"{'estimate':>14}  {'rel.error':>9}")
    for rate in RATES:
        sketcher = SheddingSketcher(
            FagmsSketch(4_096, seed=SEED + 1), p=rate, seed=SEED + 2
        )
        pipeline = Pipeline(
            IterableSource(stream.chunks(CHUNK)),
            sinks=[SketcherSink(sketcher)],
            queue_depth=0,
        )
        start = time.perf_counter()
        pipeline.run()
        elapsed = time.perf_counter() - start
        estimate = sketcher.self_join_size()
        error = abs(estimate - truth) / truth
        print(f"{rate:>9.3f}  {sketcher.shedder.kept:>10,}  {elapsed:>8.3f}  "
              f"{estimate:>14,.0f}  {error:>9.2%}")


def adaptive_burst_demo(stream, truth) -> None:
    """Drive the governor through a simulated 6x processing-cost burst.

    The control loop is a governed dataplane pipeline: the sketcher is
    the sink the governor retunes, and the burst's synthetic per-tuple
    cost is injected by advancing a :class:`ManualClock` from a trailing
    callback sink — the pipeline then "measures" exactly that cost.
    """
    sketcher = AdaptiveSheddingSketcher(
        FagmsSketch(4_096, seed=SEED + 5), 1.0, seed=SEED + 6
    )
    governor = LoadGovernor(
        BUDGET_PER_TUPLE, p_min=0.005, headroom=0.7, smoothing=0.7, deadband=0.05
    )
    chunks = list(stream.chunks(BURST_CHUNK))
    burst = range(len(chunks) // 3, 2 * len(chunks) // 3)
    print(f"\nadaptive governor, budget = {BUDGET_PER_TUPLE * 1e9:.0f} ns/tuple, "
          f"cost spikes 6x during chunks {burst.start}-{burst.stop - 1}:")
    print(f"{'chunk':>6}  {'phase':>6}  {'rate':>7}  {'kept':>7}  "
          f"{'estimate':>14}  {'95% interval half-width':>24}")
    report_every = max(1, len(chunks) // 12)
    clock = ManualClock()
    sketch_sink = SketcherSink(sketcher)

    def tick(envelope) -> None:
        # Simulated per-kept-tuple cost: the "burst" models a colocated
        # job stealing cycles, so sketching the same tuple costs 6x.
        index = envelope.sequence
        cost_per_kept = 6 * BUDGET_PER_TUPLE if index in burst else (
            BUDGET_PER_TUPLE / 3
        )
        kept = sketch_sink.last_kept
        clock.advance(kept * cost_per_kept)
        if index % report_every == 0 or index == len(chunks) - 1:
            interval = sketcher.self_join_interval(0.95)
            phase = "BURST" if index in burst else "calm"
            print(f"{index:>6}  {phase:>6}  {sketcher.rate:>7.3f}  {kept:>7,}  "
                  f"{sketcher.self_join_size():>14,.0f}  "
                  f"{interval.half_width:>24,.0f}")

    Pipeline(
        IterableSource(chunks),
        sinks=[sketch_sink, CallbackSink(tick)],
        governor=governor,
        clock=clock,
        queue_depth=0,
    ).run()
    final = sketcher.self_join_interval(0.95)
    error = abs(sketcher.self_join_size() - truth) / truth
    print(f"final estimate after burst: rel.error {error:.2%}, "
          f"interval covers truth: {final.contains(truth)}")
    print(f"tuples sketched: {sketcher.kept:,} of {sketcher.seen:,} "
          f"({sketcher.kept / sketcher.seen:.1%})")


def ddos_check(stream) -> None:
    """Replay the stream with a hot source added; the estimate must jump."""
    rng = np.random.default_rng(SEED + 3)
    attack_keys = np.where(
        rng.random(STREAM_TUPLES) < 0.2,  # 20% of traffic from one source
        np.int64(0),
        stream.keys,
    )
    attacked = SheddingSketcher(FagmsSketch(4_096, seed=SEED + 4), p=0.01, seed=SEED)
    Pipeline(
        MicroBatchSource([attack_keys], CHUNK),
        sinks=[SketcherSink(attacked)],
        queue_depth=0,
    ).run()
    baseline = SheddingSketcher(FagmsSketch(4_096, seed=SEED + 4), p=0.01, seed=SEED)
    Pipeline(
        IterableSource(stream.chunks(CHUNK)),
        sinks=[SketcherSink(baseline)],
        queue_depth=0,
    ).run()
    ratio = attacked.self_join_size() / baseline.self_join_size()
    print(f"\nDDoS check at 1% shedding: F2(attacked)/F2(normal) = {ratio:.1f}x"
          f"  ->  {'ALERT' if ratio > 2 else 'ok'}")


def main() -> None:
    stream = make_flow_stream()
    truth = stream.self_join_size()
    print(f"flow stream: {STREAM_TUPLES:,} tuples, "
          f"{SOURCE_ADDRESSES:,} sources, true F2 = {truth:,}\n")
    fixed_rate_sweep(stream, truth)
    adaptive_burst_demo(stream, truth)
    ddos_check(stream)


if __name__ == "__main__":
    main()
