"""Quickstart: sketch a 10% sample, estimate aggregates of the full stream.

This is the paper's headline workflow in ~30 lines:

1. generate a Zipf data stream,
2. keep only 10% of it (Bernoulli sampling) and sketch the survivors,
3. unbias the sketch estimates for the *full* stream,
4. attach a theory-backed confidence interval.

Run:  python examples/quickstart.py
"""

from repro import (
    BernoulliSampler,
    FagmsSketch,
    estimate_join_size,
    estimate_self_join_size,
    join_interval,
    self_join_interval,
    sketch_over_sample,
    zipf_relation,
)

SEED = 2009


def main() -> None:
    # Two streams drawn independently from the same Zipf distribution
    # (shuffle_values=False keeps their heavy hitters on the same values,
    # giving a substantial join to estimate).
    f = zipf_relation(
        200_000, 10_000, skew=1.0, seed=SEED, name="F", shuffle_values=False
    )
    g = zipf_relation(
        200_000, 10_000, skew=1.0, seed=SEED + 1, name="G", shuffle_values=False
    )

    sampler = BernoulliSampler(0.1)  # keep 1 tuple in 10
    buckets = 2_000

    # --- Self-join size (second frequency moment) of F -----------------
    sketch = FagmsSketch(buckets, seed=SEED)
    info = sketch_over_sample(f, sampler, sketch, seed=SEED + 2)
    estimate = estimate_self_join_size(sketch, info)
    interval = self_join_interval(
        estimate, f.frequency_vector(), info, n=buckets
    )
    truth = f.self_join_size()
    print("Self-join size of F")
    print(f"  sampled {info.sample_size} of {info.population_size} tuples")
    print(f"  estimate {estimate.value:,.0f}   true {truth:,}")
    print(f"  relative error {abs(estimate.value - truth) / truth:.2%}")
    print(f"  95% CI [{interval.low:,.0f}, {interval.high:,.0f}]"
          f"  (covers truth: {interval.contains(truth)})")

    # --- Size of join F ⋈ G --------------------------------------------
    sketch_f = FagmsSketch(buckets, seed=SEED + 3)
    sketch_g = sketch_f.copy_empty()  # shared hash families!
    info_f = sketch_over_sample(f, sampler, sketch_f, seed=SEED + 4)
    info_g = sketch_over_sample(g, sampler, sketch_g, seed=SEED + 5)
    join_estimate = estimate_join_size(sketch_f, info_f, sketch_g, info_g)
    join_ci = join_interval(
        join_estimate,
        f.frequency_vector(),
        g.frequency_vector(),
        info_f,
        info_g,
        n=buckets,
    )
    join_truth = f.join_size(g)
    print("\nSize of join F ⋈ G")
    print(f"  estimate {join_estimate.value:,.0f}   true {join_truth:,}")
    print(f"  relative error "
          f"{abs(join_estimate.value - join_truth) / join_truth:.2%}")
    print(f"  95% CI [{join_ci.low:,.0f}, {join_ci.high:,.0f}]"
          f"  (covers truth: {join_ci.contains(join_truth)})")


if __name__ == "__main__":
    main()
