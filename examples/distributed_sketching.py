"""Distributed sketching: sites sketch partitions, a coordinator merges.

Sketch linearity (``sketch(A ∪ B) = sketch(A) + sketch(B)`` under shared
hash families) is what makes sketches deployable in distributed stream
processing: each site summarizes only its own partition and ships a few
kilobytes to the coordinator.  Combined with per-site Bernoulli load
shedding, each site also touches only a fraction of its tuples.

The demo:

1. partitions a stream across three sites,
2. each site sheds 90% of its partition and sketches the rest, then
   persists the sketch to disk (``save_sketch``),
3. the coordinator loads and merges the site sketches and produces a
   global F₂ estimate with the combined-estimator correction.

Run:  python examples/distributed_sketching.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    FagmsSketch,
    SampleInfo,
    load_sketch,
    save_sketch,
    zipf_relation,
)
from repro.sampling.unbiasing import self_join_correction
from repro.core import LoadShedder

SEED = 63
SITES = 3
KEEP_PROBABILITY = 0.1
BUCKETS = 4_096


def site_process(site_id, partition, directory) -> dict:
    """One site: shed, sketch, persist; returns its shipping manifest."""
    shedder = LoadShedder(KEEP_PROBABILITY, seed=1_000 + site_id)
    # All sites construct their sketch from the SAME seed: shared families.
    sketch = FagmsSketch(BUCKETS, seed=SEED)
    for chunk in np.array_split(partition, 4):
        sketch.update(shedder.filter(chunk))
    path = directory / f"site{site_id}.npz"
    save_sketch(sketch, path)
    return {
        "path": path,
        "seen": shedder.seen,
        "kept": shedder.kept,
        "bytes": path.stat().st_size,
    }


def main() -> None:
    stream = zipf_relation(600_000, 50_000, skew=1.0, seed=SEED)
    partitions = np.array_split(stream.keys, SITES)
    truth = stream.self_join_size()
    print(f"global stream: {len(stream):,} tuples across {SITES} sites; "
          f"true F2 = {truth:,}\n")

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        manifests = [
            site_process(site_id, partition, directory)
            for site_id, partition in enumerate(partitions)
        ]
        for site_id, manifest in enumerate(manifests):
            print(f"site {site_id}: saw {manifest['seen']:>7,}  "
                  f"sketched {manifest['kept']:>6,}  "
                  f"shipped {manifest['bytes'] / 1024:.1f} KiB")

        # Coordinator: merge the site sketches (linearity).
        merged = load_sketch(manifests[0]["path"])
        for manifest in manifests[1:]:
            merged.merge(load_sketch(manifest["path"]))

        total_seen = sum(m["seen"] for m in manifests)
        total_kept = sum(m["kept"] for m in manifests)
        info = SampleInfo(
            scheme="bernoulli",
            population_size=total_seen,
            sample_size=total_kept,
            probability=KEEP_PROBABILITY,
        )
        correction = self_join_correction(info)
        estimate = correction.apply(merged.second_moment(), total_kept)

    error = abs(estimate - truth) / truth
    print(f"\ncoordinator estimate: {estimate:,.0f}")
    print(f"true value:           {truth:,}")
    print(f"relative error:       {error:.2%}")
    print(f"data reduction:       {total_seen / total_kept:.0f}x fewer tuples "
          f"sketched, {len(stream) * 8 / (SITES * manifests[0]['bytes']):.0f}x "
          f"less data shipped than the raw stream")


if __name__ == "__main__":
    main()
