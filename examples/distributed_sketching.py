"""Distributed sketching on the real parallel engine (:mod:`repro.parallel`).

Sketch linearity (``sketch(A ∪ B) = sketch(A) + sketch(B)`` under shared
hash families) is what makes sketches deployable in distributed stream
processing: each site summarizes only its own partition and ships a few
kilobytes to the coordinator.  Combined with per-site Bernoulli load
shedding, each site also touches only a fraction of its tuples.

The demo drives :func:`repro.parallel.run_sharded_sketch` end to end:

1. the stream is hash-partitioned across three "sites" (shards) and
   sketched by a real multiprocess :class:`~repro.parallel.WorkerPool`,
   each site shedding 90% of its partition with an independently spawned
   seed substream,
2. each site's sketch is persisted to disk (``save_sketch``) and listed
   in a shipping manifest, exactly as sites would ship summaries to a
   coordinator,
3. the coordinator loads the site files back, reduces them with the
   deterministic :func:`~repro.parallel.merge_tree`, and corrects the
   merged second moment with the aggregated per-site sample ledger,
4. as a determinism check, an unshedded (``p = 1``) sharded scan is
   verified bit-identical to a plain sequential scan.

Run:  python examples/distributed_sketching.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    FagmsSketch,
    WorkerPool,
    load_sketch,
    merge_tree,
    run_sharded_sketch,
    save_sketch,
    zipf_relation,
)
from repro.parallel import available_cpus

SEED = 63
SHED_SEED = 1_000
SITES = 3
KEEP_PROBABILITY = 0.1
BUCKETS = 4_096


def main() -> None:
    stream = zipf_relation(600_000, 50_000, skew=1.0, seed=SEED)
    truth = stream.self_join_size()
    print(f"global stream: {len(stream):,} tuples across {SITES} sites; "
          f"true F2 = {truth:,}\n")

    # All sites build their sketch from the SAME template header: shared
    # hash families, so the coordinator can merge what they ship.
    template = FagmsSketch(BUCKETS, seed=SEED)

    with WorkerPool(min(SITES, available_cpus())) as pool:
        result = run_sharded_sketch(
            stream.keys,
            template,
            shards=SITES,
            mode="hash",
            p=KEEP_PROBABILITY,
            seed=SHED_SEED,
            pool=pool,
        )

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        # Each site persists its own sketch — the shipping manifest.
        manifests = []
        for site_id, shard in enumerate(result.shard_results):
            path = directory / f"site{site_id}.npz"
            save_sketch(result.shard_sketch(site_id), path)
            manifests.append(
                {
                    "path": path,
                    "seen": shard.seen,
                    "kept": shard.kept,
                    "bytes": path.stat().st_size,
                }
            )
            print(f"site {site_id}: saw {shard.seen:>7,}  "
                  f"sketched {shard.kept:>6,}  "
                  f"shipped {manifests[-1]['bytes'] / 1024:.1f} KiB")

        # Coordinator: load the shipped files and reduce them in the same
        # fixed order the engine uses.
        merged = merge_tree([load_sketch(m["path"]) for m in manifests])

    # Kept tuples were inserted Horvitz–Thompson-weighted (1/p), so the
    # merged counters estimate the full stream directly; subtract the
    # additive correction A = N(1-p)/p from the aggregated site ledgers.
    info = result.info()
    correction = info.population_size * (1.0 - info.probability) / info.probability
    estimate = merged.second_moment() - correction

    total_seen = info.population_size
    total_kept = info.sample_size
    error = abs(estimate - truth) / truth
    print(f"\ncoordinator estimate: {estimate:,.0f}")
    print(f"true value:           {truth:,}")
    print(f"relative error:       {error:.2%}")
    print(f"data reduction:       {total_seen / total_kept:.0f}x fewer tuples "
          f"sketched, {len(stream) * 8 / (SITES * manifests[0]['bytes']):.0f}x "
          f"less data shipped than the raw stream")

    # Determinism check: without shedding, the sharded multiprocess scan
    # reproduces the sequential scan bit for bit (hash mode).
    sequential = template.copy_empty()
    sequential.update(stream.keys)
    unshedded = run_sharded_sketch(stream.keys, template, shards=SITES, mode="hash")
    identical = np.array_equal(sequential.counters, unshedded.sketch.counters)
    print(f"\np=1 sharded scan bit-identical to sequential: {identical}")


if __name__ == "__main__":
    main()
