"""Characterizing a generative model from i.i.d. samples (Section VI-B).

Scenario (online data mining): a stream of i.i.d. samples arrives from an
unknown finite population — say, user sessions drawn from a catalogue of
items.  The stream is too long to store, so we sketch it and, with the WR
corrections, estimate properties of the *population*:

* its second frequency moment ``F₂``, and
* its normalized form ``Σρᵢ²`` — the collision probability (Simpson
  index), a standard concentration/diversity statistic.

The demo consumes a growing number of samples and shows the estimate
converging; per the paper's Figs 5–6, accuracy stabilizes once the sample
is around 10% of the population size.

Run:  python examples/iid_generative_model.py
"""

import numpy as np

from repro import FagmsSketch, GenerativeModelEstimator, zipf_relation

SEED = 99
POPULATION_TUPLES = 500_000
CATALOGUE = 20_000


def main() -> None:
    # The hidden population the generative model draws from.
    population = zipf_relation(
        POPULATION_TUPLES, CATALOGUE, skew=1.0, seed=SEED, name="catalogue"
    )
    probabilities = population.frequency_vector().probabilities()
    true_f2 = population.self_join_size()
    true_collision = float((probabilities**2).sum())
    print(f"hidden population: {POPULATION_TUPLES:,} tuples over "
          f"{CATALOGUE:,} items")
    print(f"true F2 = {true_f2:,}   "
          f"true collision probability = {true_collision:.3e}\n")

    rng = np.random.default_rng(SEED + 1)
    estimator = GenerativeModelEstimator(
        POPULATION_TUPLES, FagmsSketch(4_096, seed=SEED + 2)
    )

    print(f"{'samples':>10}  {'fraction':>8}  {'F2 estimate':>14}  "
          f"{'collision est.':>14}  {'rel.err':>8}")
    consumed = 0
    for target in (1_000, 5_000, 20_000, 50_000, 200_000, 500_000):
        draw = rng.choice(population.keys, size=target - consumed, replace=True)
        estimator.consume(draw)
        consumed = target
        estimate = estimator.self_join_size()
        collision = estimator.second_moment_density()
        error = abs(estimate - true_f2) / true_f2
        print(f"{consumed:>10,}  {consumed / POPULATION_TUPLES:>8.1%}  "
              f"{estimate:>14,.0f}  {collision:>14.3e}  {error:>8.2%}")

    print("\nNote how the error stops improving once the sample reaches "
          "~10% of the population — the paper's Figs 5-6 observation.")


if __name__ == "__main__":
    main()
