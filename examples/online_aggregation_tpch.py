"""Online aggregation over TPC-H (Section VI-C's application).

Scenario: a data-warehouse engine scans ``lineitem`` and ``orders`` in
random order and wants join-size and frequency-moment statistics *while*
the scan runs — e.g. to size hash tables or pick a join strategy early.
Sketching the scanned prefix costs one counter update per tuple; the WOR
corrections turn the sketch into an unbiased full-relation estimate at any
point of the scan.

The demo prints the progressive estimates with confidence intervals; the
paper's observation to look for: the estimates are stable from roughly the
10% mark onward.

Run:  python examples/online_aggregation_tpch.py
"""

from repro import (
    FagmsSketch,
    OnlineJoinAggregator,
    OnlineSelfJoinAggregator,
    generate_tpch,
)

SEED = 42
CHECKPOINTS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


def main() -> None:
    tables = generate_tpch(scale_factor=0.02, seed=SEED)  # ~30k orders
    print(f"TPC-H dbgen-lite: {tables.n_orders:,} orders, "
          f"{tables.n_lineitems:,} lineitems\n")

    # --- F2 of lineitem.l_orderkey (Fig 8's statistic) ------------------
    truth_f2 = tables.exact_lineitem_f2()
    aggregator = OnlineSelfJoinAggregator(
        tables.lineitem,
        FagmsSketch(4_096, seed=SEED + 1),
        checkpoints=CHECKPOINTS,
        true_frequencies=tables.lineitem.frequency_vector(),
    )
    print(f"F2(l_orderkey), true value {truth_f2:,}")
    print(f"{'scanned':>8}  {'estimate':>12}  {'95% CI half-width':>18}  {'rel.err':>8}")
    for point in aggregator.run():
        error = abs(point.estimate - truth_f2) / truth_f2
        print(f"{point.fraction:>8.0%}  {point.estimate:>12,.0f}  "
              f"{point.interval.half_width:>18,.0f}  {error:>8.2%}")

    # --- |lineitem ⋈ orders| (Fig 7's statistic) -------------------------
    truth_join = tables.exact_join_size()
    sketch = FagmsSketch(4_096, seed=SEED + 2)
    join_aggregator = OnlineJoinAggregator(
        tables.lineitem,
        tables.orders,
        sketch,
        sketch.copy_empty(),
        checkpoints=CHECKPOINTS,
        true_frequencies=(
            tables.lineitem.frequency_vector(),
            tables.orders.frequency_vector(),
        ),
    )
    print(f"\n|lineitem ⋈ orders|, true value {truth_join:,}")
    print(f"{'scanned':>8}  {'estimate':>12}  {'95% CI half-width':>18}  {'rel.err':>8}")
    for point in join_aggregator.run():
        error = abs(point.estimate - truth_join) / truth_join
        print(f"{point.fraction:>8.0%}  {point.estimate:>12,.0f}  "
              f"{point.interval.half_width:>18,.0f}  {error:>8.2%}")


if __name__ == "__main__":
    main()
