"""Planning how aggressive load shedding can be (the paper's motivation).

The introduction of the paper: "The formulas resulting from such an
analysis could be used to determine how aggressive the load shedding can
be without a significant loss in the accuracy."  This example does exactly
that end to end:

1. profile a representative window of the stream (its frequency vector),
2. ask the planner for the smallest keep-probability meeting an accuracy
   target (exact Props 13-14 variance + CLT bound),
3. deploy a shedding sketcher at the planned rate and verify the target
   holds on fresh data.

Run:  python examples/shedding_planner.py
"""

import numpy as np

from repro import (
    FagmsSketch,
    SheddingSketcher,
    plan_shedding_rate,
    predict_relative_error,
    zipf_relation,
)

SEED = 31
BUCKETS = 4_096
TARGET_ERROR = 0.05  # ±5% at 95% confidence


def main() -> None:
    # Step 1: profile window (historical data with the production profile).
    profile = zipf_relation(300_000, 30_000, skew=1.0, seed=SEED)
    workload = profile.frequency_vector()
    print(f"profiled window: {len(profile):,} tuples, "
          f"{workload.support_size:,} distinct values")

    # Step 2: plan.
    print(f"\npredicted F2 error without shedding: "
          f"{predict_relative_error(workload, 1.0, BUCKETS):.2%}")
    plan = plan_shedding_rate(workload, TARGET_ERROR, BUCKETS, confidence=0.95)
    print(f"target ±{TARGET_ERROR:.0%} @ 95%  ->  keep p = "
          f"{plan.keep_probability:.4f}  "
          f"(shed {1 - plan.keep_probability:.1%} of the stream, "
          f"{plan.speedup:.0f}x fewer sketch updates)")
    print(f"predicted error at planned rate: {plan.predicted_error:.2%}")

    # Step 3: deploy on fresh traffic with the same profile and verify.
    print("\nvalidation on fresh streams:")
    violations = 0
    runs = 20
    for run in range(runs):
        fresh = zipf_relation(300_000, 30_000, skew=1.0, seed=1_000 + run)
        truth = fresh.self_join_size()
        sketcher = SheddingSketcher(
            FagmsSketch(BUCKETS, seed=2_000 + run),
            p=plan.keep_probability,
            seed=3_000 + run,
        )
        for chunk in fresh.chunks(65_536):
            sketcher.process(chunk)
        error = abs(sketcher.self_join_size() - truth) / truth
        flag = "OK " if error <= TARGET_ERROR else "MISS"
        violations += error > TARGET_ERROR
        if run < 5 or error > TARGET_ERROR:
            print(f"  run {run:>2}: error {error:.2%}  {flag}")
    print(f"\n{runs - violations}/{runs} runs within target "
          f"(95% confidence predicts ~{int(0.95 * runs)})")


if __name__ == "__main__":
    main()
