"""Serving sketch estimates while the scan is still running.

Two TPC-H-flavoured streams (``lineitem`` and ``orders``) ingest on
background threads while an HTTP query service answers point-frequency,
self-join, and set-expression queries from atomically rotated snapshots —
every answer carrying a variance-derived confidence interval and the
snapshot generation it was computed from.  A per-tenant admission
controller sheds an over-quota tenant with a ``Retry-After`` hint while
a well-behaved tenant keeps getting answers.

This is the paper's online-aggregation story (estimates of provable
quality at any point of the scan) lifted into a multi-tenant service:
ingestion never blocks on queries, queries never see a torn update.

Ingestion runs as dataplane pipelines — a paced
:class:`~repro.dataplane.IterableSource` feeding a
:class:`~repro.dataplane.RegistrySink` over a bounded queue, with a
final snapshot rotation on flush — instead of hand-rolled scan threads.

Run:  python examples/serving_demo.py
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from repro.dataplane import IterableSource, Pipeline, RegistrySink
from repro.serving import (
    AdmissionController,
    RotationPolicy,
    SketchRegistry,
    TenantPolicy,
    serve_in_thread,
)

SEED = 42
LINEITEM_TUPLES = 120_000
ORDERS_TUPLES = 30_000
ORDER_KEYS = 6_000
CHUNKS = 60


def ask(url: str, tenant: str) -> dict:
    request = urllib.request.Request(url, headers={"X-Tenant": tenant})
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def show(label: str, answer: dict) -> None:
    interval = answer["interval"]
    meta = next(iter(answer["streams"].values()))
    print(f"  {label:<22} {answer['estimate']:>14,.0f}   "
          f"95% CI [{interval['low']:>13,.0f}, {interval['high']:>13,.0f}]   "
          f"gen {meta['generation']:>3}  scanned {meta['fraction']:.0%}")


def main() -> None:
    rng = np.random.default_rng(SEED)
    lineitem = rng.zipf(1.2, size=LINEITEM_TUPLES) % ORDER_KEYS
    orders = rng.permutation(ORDER_KEYS).repeat(ORDERS_TUPLES // ORDER_KEYS)

    registry = SketchRegistry(
        buckets=4_096,
        rows=5,
        seed=SEED,
        policy=RotationPolicy(every_chunks=1),
    )
    registry.register_stream("lineitem", LINEITEM_TUPLES)
    registry.register_stream("orders", ORDERS_TUPLES)

    admission = AdmissionController(
        {
            "analyst": TenantPolicy(qps=200.0, burst=50.0),
            "scraper": TenantPolicy(qps=1.0, burst=2.0),
        }
    )

    def paced(chunks):
        for chunk in chunks:
            time.sleep(0.005)  # slow the scan so mid-flight queries land
            yield chunk

    def ingest_pipeline(name, chunks) -> threading.Thread:
        pipeline = Pipeline(
            IterableSource(paced(chunks)),
            sinks=[RegistrySink(registry, name)],
            queue_depth=4,
        )
        thread = threading.Thread(
            target=pipeline.run, name=f"ingest-{name}", daemon=True
        )
        thread.start()
        return thread

    with serve_in_thread(registry, admission=admission) as handle:
        print(f"query service on {handle.url}, scanning "
              f"{LINEITEM_TUPLES:,} lineitem + {ORDERS_TUPLES:,} orders tuples")
        scans = [
            ingest_pipeline("lineitem", np.array_split(lineitem, CHUNKS)),
            ingest_pipeline("orders", np.array_split(orders, CHUNKS)),
        ]

        print("\nestimates while the scan is in flight:")
        for _ in range(3):
            time.sleep(0.08)
            answer = ask(
                f"{handle.url}/v1/query/self_join?stream=lineitem", "analyst"
            )
            show("self-join(lineitem)", answer)

        for scan in scans:
            scan.join()
        print("\nestimates at the end of the scan:")
        show(
            "self-join(lineitem)",
            ask(f"{handle.url}/v1/query/self_join?stream=lineitem", "analyst"),
        )
        show(
            "point freq(key=17)",
            ask(
                f"{handle.url}/v1/query/point?stream=lineitem&key=17",
                "analyst",
            ),
        )
        body = json.dumps(
            {"op": "union", "streams": ["lineitem", "orders"]}
        ).encode()
        request = urllib.request.Request(
            f"{handle.url}/v1/query/expression",
            data=body,
            headers={"X-Tenant": "analyst", "Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            union = json.loads(response.read())
        print(f"  union F2(lineitem ⊎ orders) = {union['estimate']:,.0f}   "
              f"95% CI half-width {(union['interval']['high'] - union['interval']['low']) / 2:,.0f}")

        print("\ntenant quotas (scraper is limited to 1 qps, burst 2):")
        served = shed = 0
        retry_after = 0.0
        for _ in range(6):
            try:
                ask(f"{handle.url}/v1/query/self_join?stream=orders", "scraper")
                served += 1
            except urllib.error.HTTPError as error:
                if error.code != 429:
                    raise
                shed += 1
                retry_after = float(error.headers["Retry-After"])
        print(f"  scraper: {served} served, {shed} shed with 429 "
              f"(Retry-After {retry_after:.2f}s)")
        answer = ask(f"{handle.url}/v1/query/self_join?stream=orders", "analyst")
        print(f"  analyst: still served (gen "
              f"{answer['streams']['orders']['generation']})")


if __name__ == "__main__":
    main()
