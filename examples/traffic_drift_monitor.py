"""Tumbling-window traffic monitoring with cross-window similarity.

Builds on the paper's load-shedding machinery (Section VI-A): a monitor
rotates shedding F-AGMS sketches over fixed-size windows of a key stream,
tracks the per-window second frequency moment, and computes a cosine-style
*similarity* between consecutive windows from the sketch inner products —
all unbiased for the full (pre-shedding) traffic via the combined-estimator
corrections.

The scenario: stable traffic for several windows, then a key-distribution
shift (e.g. a cache-busting deployment or a scanning attack).  The drift
metric drops sharply at the shifted window while staying near 1 elsewhere.

The scan runs on the composable dataplane: a
:class:`~repro.dataplane.MicroBatchSource` re-chunks the raw traffic
array into fixed micro-batches (the window sketcher's results are
chunking-invariant — the shedder's skip-ahead state carries across
batch boundaries) and a callback sink feeds the window monitor.

Run:  python examples/traffic_drift_monitor.py
"""

import numpy as np

from repro import zipf_relation
from repro.core.windows import TumblingWindowSketcher, window_join_size
from repro.dataplane import CallbackSink, MicroBatchSource, Pipeline

SEED = 71
WINDOW = 50_000
KEYS = 20_000
SHED_P = 0.2


def build_traffic() -> np.ndarray:
    """Six windows of traffic; window 4 has a shifted key distribution."""
    normal = zipf_relation(
        4 * WINDOW, KEYS, skew=1.1, seed=SEED, shuffle_values=False
    ).keys
    # The shift: the same shape over a *different* part of the key space.
    shifted = (
        zipf_relation(WINDOW, KEYS, skew=1.1, seed=SEED + 1, shuffle_values=False).keys
        + KEYS // 2
    ) % KEYS
    tail = zipf_relation(
        WINDOW, KEYS, skew=1.1, seed=SEED + 2, shuffle_values=False
    ).keys
    return np.concatenate([normal, shifted, tail])


def main() -> None:
    traffic = build_traffic()
    monitor = TumblingWindowSketcher(
        WINDOW, buckets=4_096, p=SHED_P, seed=SEED + 3
    )
    print(f"monitoring {traffic.size:,} tuples in windows of {WINDOW:,} "
          f"(sketching only {SHED_P:.0%} of each)\n")
    print(f"{'window':>6}  {'F2 estimate':>14}  {'similarity to prev':>18}")

    windows: list = []  # closed windows so far; [-1] is the previous one

    def watch(envelope) -> None:
        for summary in monitor.process(np.asarray(envelope.keys)):
            f2 = summary.self_join_size()
            if not windows:
                similarity_text = "-"
            else:
                previous = windows[-1]
                similarity = window_join_size(previous, summary) / np.sqrt(
                    max(previous.self_join_size(), 1.0) * max(f2, 1.0)
                )
                flag = "  << DRIFT" if similarity < 0.5 else ""
                similarity_text = f"{similarity:.3f}{flag}"
            print(f"{summary.index:>6}  {f2:>14,.0f}  {similarity_text:>18}")
            windows.append(summary)

    Pipeline(
        MicroBatchSource([traffic], WINDOW // 8),
        sinks=[CallbackSink(watch)],
        queue_depth=4,
    ).run()

    print("\nWindow 4 is the injected key-space shift: its similarity to "
          "window 3 collapses, and window 5's similarity to window 4 is "
          "low again as traffic returns to normal.")


if __name__ == "__main__":
    main()
